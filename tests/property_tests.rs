//! Property-based tests over the core data structures and invariants.

use actor_st::embed::math::{cosine, mean_of, sum_of};
use actor_st::eval::{mean_reciprocal_rank, reciprocal_rank};
use actor_st::hotspot::space::{Circular1D, Space};
use actor_st::mobility::rng::Categorical;
use actor_st::stgraph::adjacency::{Csr, Edge};
use actor_st::stgraph::{AliasTable, NodeId};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    /// The alias sampler's empirical distribution tracks the weights.
    #[test]
    fn alias_matches_weights(weights in prop::collection::vec(0.0f64..10.0, 2..20), seed in 0u64..1000) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 0.1);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let got = counts[i] as f64 / n as f64;
            prop_assert!((got - expected).abs() < 0.05,
                "outcome {i}: got {got}, expected {expected}");
        }
    }

    /// CSR round-trips the edge list: every edge appears in both rows
    /// with its weight, and total degree is 2|E|.
    #[test]
    fn csr_round_trip(raw in prop::collection::vec((0u32..30, 0u32..30, 0.1f64..5.0), 0..60)) {
        // Dedup pairs to keep expectations simple.
        let mut seen = std::collections::HashSet::new();
        let edges: Vec<Edge> = raw.into_iter()
            .filter(|&(a, b, _)| a != b && seen.insert((a.min(b), a.max(b))))
            .map(|(a, b, w)| Edge { a: NodeId(a), b: NodeId(b), weight: w })
            .collect();
        let csr = Csr::build(30, &edges);
        let mut total_degree = 0usize;
        for i in 0..30 {
            total_degree += csr.degree(NodeId(i));
        }
        prop_assert_eq!(total_degree, 2 * edges.len());
        for e in &edges {
            let (na, wa) = csr.row(e.a);
            let pos = na.iter().position(|&n| n == e.b).expect("neighbor present");
            prop_assert_eq!(wa[pos], e.weight);
            let (nb, wb) = csr.row(e.b);
            let pos = nb.iter().position(|&n| n == e.a).expect("reverse neighbor present");
            prop_assert_eq!(wb[pos], e.weight);
        }
    }

    /// Circular distance is a metric on the circle (symmetry, bounds,
    /// triangle inequality).
    #[test]
    fn circular_distance_is_a_metric(a in 0.0f64..86400.0, b in 0.0f64..86400.0, c in 0.0f64..86400.0) {
        let circle = Circular1D::new(86400.0);
        let dab = circle.dist(a, b);
        let dba = circle.dist(b, a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!((0.0..=43200.0 + 1e-9).contains(&dab));
        prop_assert!(circle.dist(a, a) < 1e-9);
        let dac = circle.dist(a, c);
        let dcb = circle.dist(c, b);
        prop_assert!(dab <= dac + dcb + 1e-9);
    }

    /// Reciprocal rank is in (0, 1] and 1 iff the truth strictly wins.
    #[test]
    fn reciprocal_rank_bounds(scores in prop::collection::vec(-1.0f64..1.0, 1..12), gt in 0usize..12) {
        prop_assume!(gt < scores.len());
        let rr = reciprocal_rank(&scores, gt);
        prop_assert!(rr > 0.0 && rr <= 1.0);
        let strictly_best = scores.iter().enumerate()
            .all(|(i, &s)| i == gt || s < scores[gt]);
        prop_assert_eq!(rr == 1.0, strictly_best);
        let mrr = mean_reciprocal_rank(&[rr]);
        prop_assert_eq!(mrr, rr);
    }

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounds(a in prop::collection::vec(-10.0f32..10.0, 8), b in prop::collection::vec(-10.0f32..10.0, 8)) {
        let c1 = cosine(&a, &b);
        let c2 = cosine(&b, &a);
        prop_assert!((c1 - c2).abs() < 1e-9);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c1));
    }

    /// mean_of is sum_of scaled by 1/n.
    #[test]
    fn mean_is_scaled_sum(vectors in prop::collection::vec(prop::collection::vec(-5.0f32..5.0, 4), 1..6)) {
        let refs: Vec<&[f32]> = vectors.iter().map(|v| v.as_slice()).collect();
        let sum = sum_of(&refs, 4);
        let mean = mean_of(&refs, 4);
        for i in 0..4 {
            prop_assert!((mean[i] - sum[i] / vectors.len() as f32).abs() < 1e-5);
        }
    }

    /// Categorical sampling never returns zero-weight outcomes.
    #[test]
    fn categorical_never_draws_zero_weight(
        positives in prop::collection::vec(0.1f64..5.0, 1..8),
        zero_at in 0usize..8,
        seed in 0u64..100,
    ) {
        let mut weights = positives.clone();
        let idx = zero_at % weights.len();
        // Add one explicit zero-weight outcome.
        weights.insert(idx, 0.0);
        let cat = Categorical::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..500 {
            prop_assert_ne!(cat.sample(&mut rng), idx);
        }
    }
}

/// Mean-shift modes are stable: re-seeking from a detected spatial
/// hotspot center stays at that center.
#[test]
fn meanshift_modes_are_fixed_points() {
    use actor_st::hotspot::{MeanShiftParams, SpatialHotspots};
    use actor_st::mobility::rng::normal;
    use actor_st::prelude::GeoPoint;

    let mut rng = StdRng::seed_from_u64(5);
    let mut pts = Vec::new();
    for c in [(0.0, 0.0), (1.0, 1.0)] {
        for _ in 0..300 {
            pts.push(GeoPoint::new(
                normal(&mut rng, c.0, 0.02),
                normal(&mut rng, c.1, 0.02),
            ));
        }
    }
    let hs = SpatialHotspots::detect(&pts, MeanShiftParams::with_bandwidth(0.1), 5);
    for (i, &center) in hs.centers().iter().enumerate() {
        // The assignment of a center is itself.
        assert_eq!(hs.assign(center).idx(), i);
    }
}
