//! Integration tests for the streaming (online) extension.

use actor_st::core::{OnlineActor, OnlineParams};
use actor_st::prelude::*;

fn fitted(seed: u64) -> (Corpus, CorpusSplit, actor_st::core::TrainedModel) {
    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(seed)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    let (model, _) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
    (corpus, split, model)
}

#[test]
fn streaming_the_validation_split_does_not_destroy_the_model() {
    let (corpus, split, model) = fitted(500);
    let params = EvalParams::default();
    let before = evaluate_mrr(
        &model,
        &corpus,
        &split.test,
        PredictionTask::Location,
        &params,
    );

    let mut online = OnlineActor::new(model, OnlineParams::default());
    for &rid in &split.valid {
        online.observe(corpus.record(rid));
    }
    let model = online.into_model();
    let after = evaluate_mrr(
        &model,
        &corpus,
        &split.test,
        PredictionTask::Location,
        &params,
    );
    // In-distribution streaming must not collapse accuracy; allow modest
    // drift in either direction.
    assert!(
        after > before - 0.08,
        "online updates destroyed the model: {before:.4} -> {after:.4}"
    );
    // And the embeddings stay finite.
    for i in (0..model.space().len()).step_by(97) {
        assert!(model.store().centers.row(i).iter().all(|x| x.is_finite()));
    }
}

#[test]
fn online_then_save_then_load_round_trips() {
    let (corpus, split, model) = fitted(501);
    let mut online = OnlineActor::new(model, OnlineParams::default());
    for &rid in split.valid.iter().take(50) {
        online.observe(corpus.record(rid));
    }
    let model = online.into_model();
    let buf = model.save_bincode_like();
    let loaded = actor_st::core::TrainedModel::load_bincode_like(buf).unwrap();
    let r = corpus.record(split.test[0]);
    assert_eq!(
        model.score_location(r.timestamp, &r.keywords, r.location),
        loaded.score_location(r.timestamp, &r.keywords, r.location)
    );
}

#[test]
fn observe_is_deterministic_per_seed() {
    let (corpus, split, model) = fitted(502);
    let run = |model: actor_st::core::TrainedModel| {
        let mut online = OnlineActor::new(model, OnlineParams::default());
        for &rid in split.valid.iter().take(30) {
            online.observe(corpus.record(rid));
        }
        let m = online.into_model();
        m.store().centers.row(0).to_vec()
    };
    // Re-fit to get two identical starting models (fit is deterministic
    // single-threaded).
    let (_, _, model2) = fitted(502);
    assert_eq!(run(model), run(model2));
}
