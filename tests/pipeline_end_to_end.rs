//! End-to-end integration: data → hotspots → graphs → ACTOR → evaluation.

use actor_st::prelude::*;

fn setup(seed: u64) -> (Corpus, CorpusSplit) {
    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(seed)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    (corpus, split)
}

#[test]
fn actor_beats_the_random_baseline_on_all_tasks() {
    let (corpus, split) = setup(100);
    let mut config = ActorConfig::fast();
    config.max_epochs = 40;
    let (model, _) = fit(&corpus, &split.train, &config).unwrap();
    // Random ranking over 11 candidates gives MRR ≈ 0.2745; a trained
    // model must clear it decisively on text/location and beat it on time.
    let params = EvalParams::default();
    let text = evaluate_mrr(&model, &corpus, &split.test, PredictionTask::Text, &params);
    let loc = evaluate_mrr(&model, &corpus, &split.test, PredictionTask::Location, &params);
    let time = evaluate_mrr(&model, &corpus, &split.test, PredictionTask::Time, &params);
    // Thresholds sit well above the floor but below full-budget scores —
    // this is a 3k-record corpus trained with the fast config.
    assert!(text > 0.4, "text MRR {text}");
    assert!(loc > 0.32, "location MRR {loc}");
    assert!(time > 0.28, "time MRR {time}");
}

#[test]
fn fit_report_is_consistent_with_model() {
    let (corpus, split) = setup(101);
    let (model, report) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
    assert_eq!(model.spatial_hotspots().len(), report.n_spatial);
    assert_eq!(model.temporal_hotspots().len(), report.n_temporal);
    assert_eq!(model.space().len(), report.n_nodes);
    assert!(report.train_seconds > 0.0);
    assert!(report.total_seconds >= report.train_seconds);
}

#[test]
fn single_thread_fit_is_deterministic() {
    let (corpus, split) = setup(102);
    let mut config = ActorConfig::fast();
    config.threads = 1;
    config.max_epochs = 5;
    let (a, _) = fit(&corpus, &split.train, &config).unwrap();
    let (b, _) = fit(&corpus, &split.train, &config).unwrap();
    let params = EvalParams::default();
    let ma = evaluate_mrr(&a, &corpus, &split.test, PredictionTask::Text, &params);
    let mb = evaluate_mrr(&b, &corpus, &split.test, PredictionTask::Text, &params);
    assert_eq!(ma, mb);
    // Identical vectors, not just identical metrics.
    let n = a.space().len();
    for i in (0..n).step_by(97) {
        assert_eq!(a.store().centers.row(i), b.store().centers.row(i));
    }
}

#[test]
fn different_seeds_give_different_models() {
    let (corpus, split) = setup(103);
    let mut c1 = ActorConfig::fast();
    c1.max_epochs = 5;
    let mut c2 = c1.clone();
    c2.seed ^= 0xFFFF;
    let (a, _) = fit(&corpus, &split.train, &c1).unwrap();
    let (b, _) = fit(&corpus, &split.train, &c2).unwrap();
    assert_ne!(a.store().centers.row(0), b.store().centers.row(0));
}

#[test]
fn evaluation_never_sees_training_candidates() {
    // Queries draw noise exclusively from the test split.
    let (corpus, split) = setup(104);
    let queries =
        actor_st::eval::tasks::build_queries(&split.test, &EvalParams::default());
    let test_set: std::collections::HashSet<_> = split.test.iter().copied().collect();
    for q in &queries {
        assert!(test_set.contains(&q.record));
        for nid in &q.noise {
            assert!(test_set.contains(nid));
        }
    }
    let _ = corpus;
}
