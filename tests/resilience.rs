//! End-to-end resilience acceptance tests (ISSUE: resilience layer).
//!
//! Everything here drives the *public* facade: a seeded [`FaultPlan`]
//! injects the failure, and the test proves the pipeline recovers to the
//! same quality as a clean run — interrupted training resumes from the
//! last sealed checkpoint, a torn checkpoint write falls back to the
//! previous snapshot, and corrupt TSV ingest skips exactly the lines the
//! injection manifest says it corrupted.

use std::path::PathBuf;

use actor_st::mobility::io::{parse_tsv_lenient, LenientPolicy, SkipReason};
use actor_st::mobility::IngestError;
use actor_st::prelude::*;
use actor_st::resilience::{CheckpointStore, InjectedFaultKind};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "actor-resilience-e2e-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small single-threaded setup: the resumed-vs-uninterrupted comparison
/// relies on `threads = 1` making segment replay bit-deterministic.
fn setup(seed: u64) -> (Corpus, CorpusSplit, ActorConfig) {
    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(seed)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    let mut config = ActorConfig::fast();
    config.seed = seed;
    config.threads = 1;
    config.max_epochs = 6;
    (corpus, split, config)
}

fn samples_per_epoch(config: &ActorConfig) -> u64 {
    // One round is 7 weighted batches (one per meta-graph edge type).
    7 * config.batch_size as u64 * config.batches_per_type as u64
}

#[test]
fn killed_run_resumes_and_matches_uninterrupted_quality() {
    let (corpus, split, config) = setup(71);
    let dir = tmp_dir("kill-resume");
    let mut opts = ResilienceOptions::new(&dir);
    opts.policy = CheckpointPolicy::every_epochs(2);
    let spe = samples_per_epoch(&config);

    // Kill the worker once 3 epochs of samples have passed: the driver
    // notices at the next checkpoint boundary (epoch 4), *after* sealing
    // that snapshot.
    opts.fault = Some(FaultPlan::new(9).with_worker_failure_after(3 * spe));
    let err = fit_checkpointed(&corpus, &split.train, &config, &opts).err();
    assert!(
        matches!(
            err,
            Some(actor_st::core::FitError::Interrupted { epoch: 4, .. })
        ),
        "expected an epoch-4 boundary interruption, got {err:?}"
    );

    // Resume from the sealed checkpoint and finish the run.
    let mut resume_opts = opts.clone();
    resume_opts.fault = None;
    let (resumed, _, res) = fit_resume(&corpus, &split.train, &config, &resume_opts).unwrap();
    assert_eq!(res.resumed_from.unwrap().epoch, 4);

    // Reference: the same run, never interrupted.
    let dir2 = tmp_dir("kill-resume-ref");
    let mut ref_opts = resume_opts.clone();
    ref_opts.dir = dir2.clone();
    let (clean, _, _) = fit_checkpointed(&corpus, &split.train, &config, &ref_opts).unwrap();

    let params = EvalParams::default();
    let task = PredictionTask::Location;
    let mrr_resumed = evaluate_mrr(&resumed, &corpus, &split.test, task, &params);
    let mrr_clean = evaluate_mrr(&clean, &corpus, &split.test, task, &params);
    assert!(mrr_resumed > 0.0 && mrr_clean > 0.0);
    // Acceptance bound: resumed quality within 5% of the clean run. With
    // one thread the replayed segments are bit-identical, so in practice
    // the two MRRs are *equal*; the bound guards the contract.
    assert!(
        (mrr_resumed - mrr_clean).abs() <= 0.05 * mrr_clean,
        "resumed MRR {mrr_resumed} departs from clean MRR {mrr_clean}"
    );
    assert!((mrr_resumed - mrr_clean).abs() < 1e-12);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn truncated_newest_checkpoint_falls_back_to_the_previous_one() {
    let (corpus, split, config) = setup(72);
    let dir = tmp_dir("torn-write");
    let mut opts = ResilienceOptions::new(&dir);
    opts.policy = CheckpointPolicy::every_epochs(2);
    let spe = samples_per_epoch(&config);
    opts.fault = Some(FaultPlan::new(5).with_worker_failure_after(3 * spe));
    assert!(fit_checkpointed(&corpus, &split.train, &config, &opts).is_err());

    // Simulate a torn write: truncate the newest snapshot (epoch 4) so
    // its CRC no longer verifies.
    let ckpts = CheckpointStore::new(&dir, opts.policy.keep);
    let files = ckpts.list();
    let (newest_epoch, newest_path) = files.last().unwrap();
    assert_eq!(*newest_epoch, 4);
    FaultPlan::new(5).truncate_file(newest_path, 0.5).unwrap();

    // Resume walks past the corrupt file to the epoch-2 snapshot and
    // still completes the run.
    let mut resume_opts = opts.clone();
    resume_opts.fault = None;
    let (model, _, res) = fit_resume(&corpus, &split.train, &config, &resume_opts).unwrap();
    assert_eq!(res.resumed_from.unwrap().epoch, 2);

    let r = corpus.record(split.test[0]);
    assert!(model
        .score_location(r.timestamp, &r.keywords, r.location)
        .is_finite());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A clean, fully parseable `user \t ts \t lat \t lon \t text` corpus.
fn clean_tsv(lines: usize) -> String {
    let words = [
        "espresso", "harbor", "sunset", "museum", "ramen", "kayak", "festival", "library",
        "garden", "market",
    ];
    let mut out = String::from("# synthetic resilience corpus\n");
    for i in 0..lines {
        let w1 = words[i % words.len()];
        let w2 = words[(i / words.len() + 3) % words.len()];
        out.push_str(&format!(
            "user{}\t{}\t{:.4}\t{:.4}\t{} {} downtown\n",
            i % 37,
            1_400_000_000u64 + i as u64 * 3600,
            33.0 + (i % 200) as f64 * 0.01,
            -118.5 + (i % 300) as f64 * 0.01,
            w1,
            w2,
        ));
    }
    out
}

fn reason_for(kind: InjectedFaultKind) -> SkipReason {
    match kind {
        InjectedFaultKind::MissingField => SkipReason::MissingField,
        InjectedFaultKind::BadTimestamp => SkipReason::BadTimestamp,
        InjectedFaultKind::NonFiniteCoordinate => SkipReason::NonFiniteCoordinate,
        InjectedFaultKind::OutOfRangeCoordinate => SkipReason::OutOfRangeCoordinate,
        InjectedFaultKind::EmptyText => SkipReason::NoKeywords,
    }
}

#[test]
fn lenient_ingest_skip_counts_match_the_injection_manifest() {
    const LINES: usize = 4000;
    let clean = clean_tsv(LINES);
    let (dirty, manifest) = FaultPlan::new(17).corrupt_tsv(&clean, 0.005);
    assert!(
        manifest.len() >= 5,
        "seed 17 injected only {} faults",
        manifest.len()
    );

    let policy = LenientPolicy {
        max_bad_fraction: 0.01,
        grace_lines: 1000,
        quarantine_cap: 64,
    };
    let (corpus, report) = parse_tsv_lenient("dirty", &dirty, &policy).unwrap();

    // Exactly the injected lines were skipped — nothing more, nothing
    // less — and each landed under the reason its fault kind predicts.
    assert_eq!(report.skipped(), manifest.len());
    assert_eq!(report.parsed, LINES - manifest.len());
    assert_eq!(corpus.len(), LINES - manifest.len());
    for kind in InjectedFaultKind::ALL {
        let expected = manifest.iter().filter(|f| f.kind == kind).count();
        assert_eq!(
            report.count(reason_for(kind)),
            expected,
            "count mismatch for {kind:?}"
        );
    }
    assert_eq!(report.count(SkipReason::BadCoordinate), 0);
}

#[test]
fn lenient_ingest_rejects_systematically_broken_input() {
    let clean = clean_tsv(4000);
    let (dirty, manifest) = FaultPlan::new(17).corrupt_tsv(&clean, 0.05);
    assert!(manifest.len() > 100);

    // 5% corruption against a 1% budget: fail loudly, don't decimate.
    let err = parse_tsv_lenient("dirty", &dirty, &LenientPolicy::default());
    assert!(matches!(
        err,
        Err(IngestError::BudgetExceeded { bad, seen, .. }) if bad > 0 && seen >= bad
    ));
}
