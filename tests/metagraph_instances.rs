//! Meta-graph instance counting over a real substrate (Fig. 3b).

use actor_st::baselines::Substrate;
use actor_st::prelude::*;
use actor_st::stgraph::MetaGraph;

fn substrate(seed: u64) -> (Corpus, Substrate) {
    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(seed)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    let s = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
    (corpus, s)
}

#[test]
fn inter_meta_graphs_have_instances_on_mention_data() {
    let (_, s) = substrate(400);
    for m in MetaGraph::INTER {
        let count = m.count_instances(&s.graph_user, &s.user_graph);
        assert!(count > 0.0, "{} has no instances", m.label());
    }
    // M0 counts record-level T-L-W triangles ≈ number of training records.
    let m0 = MetaGraph::M0.count_instances(&s.graph_user, &s.user_graph);
    assert!(m0 > 0.0);
}

#[test]
fn pair_meta_graphs_dominate_singletons() {
    // An M4 (T+L) instance requires choosing a T and an L unit per user,
    // so its count is the product of the M1 and M2 per-edge counts — far
    // larger in aggregate.
    let (_, s) = substrate(401);
    let m1 = MetaGraph::M1.count_instances(&s.graph_user, &s.user_graph);
    let m4 = MetaGraph::M4.count_instances(&s.graph_user, &s.user_graph);
    assert!(m4 >= m1, "M4 {m4} should dominate M1 {m1}");
}

#[test]
fn mention_free_data_has_no_inter_instances() {
    let (corpus, _) = generate(DatasetPreset::Tweet.small_config(402)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    let s = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
    assert!(s.user_graph.is_empty());
    for m in MetaGraph::INTER {
        assert_eq!(m.count_instances(&s.graph_user, &s.user_graph), 0.0);
    }
}

#[test]
fn instances_vanish_without_user_vertices() {
    let (_, s) = substrate(403);
    for m in MetaGraph::INTER {
        assert_eq!(
            m.count_instances(&s.graph_plain, &s.user_graph),
            0.0,
            "{} should have no instances on the user-free graph",
            m.label()
        );
    }
}
