//! Every Table 2 method satisfies the evaluation contract.

use actor_st::baselines::{
    train_crossmap, train_lgta, train_line, train_metapath2vec, train_mgtm, BaselineParams,
    CrossMapVariant, LgtaParams, LineVariant, MetapathParams, MgtmParams, Substrate,
};
use actor_st::prelude::*;

fn zoo(seed: u64) -> (Corpus, CorpusSplit, Vec<Box<dyn CrossModalModel>>) {
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(seed)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    let cfg = ActorConfig::fast();
    let substrate = Substrate::build(&corpus, &split.train, &cfg);
    let params = BaselineParams::fast();

    let mut models: Vec<Box<dyn CrossModalModel>> = Vec::with_capacity(8);
    models.push(Box::new(train_lgta(
        &corpus,
        &split.train,
        &cfg,
        &LgtaParams {
            n_topics: 10,
            iterations: 6,
            seed,
            ..Default::default()
        },
    )));
    models.push(Box::new(train_mgtm(
        &corpus,
        &split.train,
        &cfg,
        &MgtmParams {
            n_topics: 10,
            iterations: 6,
            ..Default::default()
        },
    )));
    models.push(Box::new(train_metapath2vec(
        &corpus,
        &substrate,
        &MetapathParams::default(),
        &params,
    )));
    models.push(Box::new(train_line(
        &corpus,
        &substrate,
        LineVariant::Plain,
        &params,
    )));
    models.push(Box::new(train_line(
        &corpus,
        &substrate,
        LineVariant::WithUsers,
        &params,
    )));
    models.push(Box::new(train_crossmap(
        &corpus,
        &substrate,
        CrossMapVariant::Plain,
        &params,
    )));
    models.push(Box::new(train_crossmap(
        &corpus,
        &substrate,
        CrossMapVariant::WithUsers,
        &params,
    )));
    let (actor, _) = fit(&corpus, &split.train, &cfg).unwrap();
    models.push(Box::new(actor));
    (corpus, split, models)
}

#[test]
fn all_methods_produce_finite_scores_on_every_task() {
    let (corpus, split, models) = zoo(200);
    let r = corpus.record(split.test[0]).clone();
    for m in &models {
        let sl = m.score_location(r.timestamp, &r.keywords, r.location);
        let st = m.score_time(r.location, &r.keywords, r.timestamp);
        let sx = m.score_text(r.timestamp, r.location, &r.keywords);
        for (task, s) in [("location", sl), ("time", st), ("text", sx)] {
            assert!(s.is_finite(), "{} {task} score not finite: {s}", m.name());
        }
    }
}

#[test]
fn topic_models_report_no_time_support() {
    let (_, _, models) = zoo(201);
    let names_no_time: Vec<&str> = models
        .iter()
        .filter(|m| !m.supports_time())
        .map(|m| m.name())
        .collect();
    assert_eq!(names_no_time, vec!["LGTA", "MGTM"]);
}

#[test]
fn embedding_methods_clear_the_random_floor_on_location() {
    let (corpus, split, models) = zoo(202);
    let params = EvalParams {
        max_queries: 60,
        ..EvalParams::default()
    };
    for m in &models {
        let mrr = evaluate_mrr(
            m.as_ref(),
            &corpus,
            &split.test,
            PredictionTask::Location,
            &params,
        );
        // Random ≈ 0.2745 on 11 candidates; even the weakest method must
        // beat a constant scorer's 1/11 and approach the random floor.
        assert!(mrr > 0.2, "{} location MRR {mrr}", m.name());
    }
}

#[test]
fn method_names_match_table2_rows() {
    let (_, _, models) = zoo(203);
    let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    assert_eq!(
        names,
        vec![
            "LGTA",
            "MGTM",
            "metapath2vec",
            "LINE",
            "LINE(U)",
            "CrossMap",
            "CrossMap(U)",
            "ACTOR"
        ]
    );
}
