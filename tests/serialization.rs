//! Persistence round-trips: embedding stores to bytes and corpora through
//! serde JSON (the `serde` feature every type derives).

use actor_st::embed::EmbeddingStore;
use actor_st::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn embedding_store_bytes_round_trip_preserves_training() {
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(300)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    let (model, _) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();

    let bytes = model.store().to_bytes();
    let restored = EmbeddingStore::from_bytes(bytes).unwrap();
    assert_eq!(restored.n_nodes(), model.store().n_nodes());
    assert_eq!(restored.dim(), model.store().dim());
    for i in (0..restored.n_nodes()).step_by(53) {
        assert_eq!(restored.centers.row(i), model.store().centers.row(i));
        assert_eq!(restored.contexts.row(i), model.store().contexts.row(i));
    }
}

#[test]
fn store_bytes_reject_truncation() {
    let mut rng = StdRng::seed_from_u64(1);
    let store = EmbeddingStore::init(10, 8, &mut rng);
    let bytes = store.to_bytes();
    for cut in [0, 4, 7, bytes.len() - 1] {
        assert!(
            EmbeddingStore::from_bytes(bytes.slice(0..cut)).is_err(),
            "cut at {cut} should fail"
        );
    }
}

#[test]
fn corpus_serde_round_trip() {
    let (corpus, _) = generate(DatasetPreset::Tweet.small_config(301)).unwrap();
    let json = serde_json::to_string(&corpus).unwrap();
    let restored: Corpus = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.len(), corpus.len());
    assert_eq!(restored.vocab().len(), corpus.vocab().len());
    assert_eq!(restored.records()[42], corpus.records()[42]);
    assert_eq!(restored.stats(), corpus.stats());
}
