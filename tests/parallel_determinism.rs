//! Determinism suite for the parallel preprocessing front-end.
//!
//! The contract (docs/PERFORMANCE.md): for any thread count, the parallel
//! hotspot detectors, activity/user graphs, alias tables, and meta-graph
//! instance counts are **bit-identical** to a single-threaded run —
//! merges are order-canonical, never first-writer-wins. This suite builds
//! the full preprocessing state at 1, 2, and 8 threads (plus a repeated
//! 8-thread run) and compares every output bit for bit: floats are
//! compared through `to_bits`, structures through their serialized bytes.

use actor_st::hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use actor_st::prelude::*;
use actor_st::stgraph::{
    ActivityGraphBuilder, BuildOptions, EdgeSampler, EdgeType, MetaGraph, NegativeTable,
    UserGraph,
};
use mobility::RecordId;

/// Everything the preprocessing front-end produces, flattened to
/// exactly-comparable form.
///
/// Alias tables compare as `(node ids, prob bits, alias column)`.
type AliasPrint = (Vec<u32>, Vec<u64>, Vec<u32>);
/// Edge samplers compare as `(edge list, prob bits, alias column)`.
type SamplerPrint = (Vec<(u32, u32)>, Vec<u64>, Vec<u32>);

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    spatial_centers: Vec<(u64, u64)>,
    spatial_counts: Vec<usize>,
    temporal_centers: Vec<u64>,
    temporal_counts: Vec<usize>,
    /// Serialized `ActivityGraph`: edge lists and CSR layout, byte for byte.
    graph_bytes: String,
    units_bytes: String,
    user_graph_bytes: String,
    /// Per edge type: sampler edge list + alias table columns.
    samplers: Vec<Option<SamplerPrint>>,
    /// Per edge type and side: negative table nodes + alias columns.
    neg_tables: Vec<Vec<AliasPrint>>,
    metagraph_counts: Vec<u64>,
}

fn fingerprint(corpus: &Corpus, train_ids: &[RecordId], n_threads: usize) -> Fingerprint {
    let _guard = par::override_threads(n_threads);

    let points: Vec<GeoPoint> = train_ids.iter().map(|&id| corpus.record(id).location).collect();
    let seconds: Vec<f64> = train_ids
        .iter()
        .map(|&id| corpus.record(id).second_of_day())
        .collect();
    let spatial = SpatialHotspots::detect(&points, MeanShiftParams::with_bandwidth(0.01), 3);
    let temporal = TemporalHotspots::detect(&seconds, MeanShiftParams::with_bandwidth(1800.0), 3);

    let builder = ActivityGraphBuilder::new(corpus, &spatial, &temporal, BuildOptions::default());
    let (graph, units) = builder.build(train_ids);
    let user_graph = UserGraph::build(corpus, train_ids);

    let samplers = EdgeType::ALL
        .iter()
        .map(|&ty| {
            EdgeSampler::new(&graph, ty).map(|s| {
                (
                    s.edges().iter().map(|&(a, b)| (a.0, b.0)).collect(),
                    s.alias().probs().iter().map(|p| p.to_bits()).collect(),
                    s.alias().aliases().to_vec(),
                )
            })
        })
        .collect();
    let neg_tables = EdgeType::ALL
        .iter()
        .map(|&ty| {
            let (a, b) = ty.endpoints();
            [a, b]
                .into_iter()
                .filter_map(|side| NegativeTable::new(&graph, ty, side))
                .map(|t| {
                    (
                        t.nodes().iter().map(|n| n.0).collect(),
                        t.alias().probs().iter().map(|p| p.to_bits()).collect(),
                        t.alias().aliases().to_vec(),
                    )
                })
                .collect()
        })
        .collect();
    let metagraph_counts = MetaGraph::ALL
        .iter()
        .map(|m| m.count_instances(&graph, &user_graph).to_bits())
        .collect();

    Fingerprint {
        spatial_centers: spatial
            .centers()
            .iter()
            .map(|p| (p.lat.to_bits(), p.lon.to_bits()))
            .collect(),
        spatial_counts: spatial.counts().to_vec(),
        temporal_centers: temporal.centers().iter().map(|c| c.to_bits()).collect(),
        temporal_counts: temporal.counts().to_vec(),
        graph_bytes: serde_json::to_string(&graph).unwrap(),
        units_bytes: serde_json::to_string(&units).unwrap(),
        user_graph_bytes: serde_json::to_string(&user_graph).unwrap(),
        samplers,
        neg_tables,
        metagraph_counts,
    }
}

fn corpus_and_split() -> (Corpus, Vec<RecordId>) {
    // Utgeo2011 has mentions, so the user graph, UT/UL/UW types, and all
    // six inter meta-graph schemes are exercised.
    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(20140801)).unwrap();
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
    (corpus, split.train)
}

#[test]
fn preprocessing_is_bit_identical_across_thread_counts() {
    let (corpus, train) = corpus_and_split();
    let serial = fingerprint(&corpus, &train, 1);
    assert!(!serial.spatial_centers.is_empty());
    assert!(!serial.temporal_centers.is_empty());
    assert!(serial.samplers.iter().flatten().count() >= 4);

    for n in [2usize, 8] {
        let parallel = fingerprint(&corpus, &train, n);
        assert_eq!(
            serial.spatial_centers, parallel.spatial_centers,
            "spatial centers diverge at {n} threads"
        );
        assert_eq!(serial.spatial_counts, parallel.spatial_counts);
        assert_eq!(serial.temporal_centers, parallel.temporal_centers);
        assert_eq!(serial.temporal_counts, parallel.temporal_counts);
        assert_eq!(
            serial.graph_bytes, parallel.graph_bytes,
            "activity graph (CSR bytes) diverges at {n} threads"
        );
        assert_eq!(serial.units_bytes, parallel.units_bytes);
        assert_eq!(serial.user_graph_bytes, parallel.user_graph_bytes);
        assert_eq!(
            serial.samplers, parallel.samplers,
            "alias tables diverge at {n} threads"
        );
        assert_eq!(serial.neg_tables, parallel.neg_tables);
        assert_eq!(
            serial.metagraph_counts, parallel.metagraph_counts,
            "meta-graph instance counts diverge at {n} threads"
        );
    }
}

#[test]
fn repeated_runs_at_eight_threads_are_identical() {
    let (corpus, train) = corpus_and_split();
    let a = fingerprint(&corpus, &train, 8);
    let b = fingerprint(&corpus, &train, 8);
    assert_eq!(a, b);
}

#[test]
fn full_fit_is_unchanged_by_preprocessing_threads() {
    // End-to-end guard: the trained model (which consumes hotspots, graph,
    // and alias tables, and already fixes its own SGD thread count via
    // `ActorConfig::threads`) must not observe the preprocessing thread
    // count at all.
    let (corpus, train) = corpus_and_split();
    let mut config = ActorConfig::fast();
    config.threads = 1; // single-threaded SGD is bit-deterministic
    let centers = |n: usize| {
        let _guard = par::override_threads(n);
        let (model, _) = fit(&corpus, &train, &config).unwrap();
        model
            .store()
            .centers
            .row(0)
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u32>>()
    };
    assert_eq!(centers(1), centers(8));
}
