//! # actor-st
//!
//! A from-scratch Rust reproduction of **"Spatiotemporal Activity Modeling
//! via Hierarchical Cross-Modal Embedding"** (Liu et al., TKDE 2020 /
//! ICDE 2023 extended abstract): the ACTOR hierarchical cross-modal
//! embedding framework plus every substrate it depends on — synthetic
//! mobile-data generation, mean-shift hotspot detection, heterogeneous
//! activity graphs, a Hogwild negative-sampling embedding engine, all
//! seven Table 2 baselines, and the full evaluation harness.
//!
//! ## Quickstart
//!
//! ```
//! use actor_st::prelude::*;
//!
//! // 1. Data: a synthetic geo-tagged corpus (stands in for the paper's
//! //    Twitter/Foursquare datasets; see DESIGN.md §3).
//! let (corpus, _truth) = generate(DatasetPreset::Foursquare.small_config(7)).unwrap();
//! let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
//!
//! // 2. Fit ACTOR (Algorithm 1) with a fast test configuration.
//! let (model, report) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
//! assert!(report.n_spatial > 0);
//!
//! // 3. Cross-modal prediction: score how well a record's own location
//! //    matches its time and text.
//! let r = corpus.record(split.test[0]);
//! let score = model.score_location(r.timestamp, &r.keywords, r.location);
//! assert!(score.is_finite());
//! ```
//!
//! The crates are re-exported under their subsystem names:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`mobility`] | records, corpora, vocabulary, the synthetic generator |
//! | [`hotspot`] | KDE + mean-shift spatial/temporal hotspot detection |
//! | [`stgraph`] | activity graph, user graph, alias sampling, meta-graphs |
//! | [`embed`] | negative-sampling SGD, Hogwild, LINE |
//! | [`core`] | the ACTOR pipeline, model, and ablation variants |
//! | [`baselines`] | LGTA, MGTM, metapath2vec, LINE(U), CrossMap(U) |
//! | [`eval`] | MRR, prediction tasks, neighbor search, case studies |
//! | [`resilience`] | checkpoint envelopes, retry/divergence policies, fault injection |
//! | [`serve`] | online query engine: ANN index, query cache, snapshot hot-swap |
//! | [`par`] | deterministic scoped-thread data parallelism for preprocessing |

pub use actor_core as core;
pub use baselines;
pub use embed;
pub use evalkit as eval;
pub use hotspot;
pub use mobility;
pub use par;
pub use resilience;
pub use serve;
pub use stgraph;

/// The most commonly used items in one import.
pub mod prelude {
    pub use actor_core::{
        fit, fit_checkpointed, fit_resume, ActorConfig, ResilienceOptions, ResilienceReport,
        TrainedModel, Variant,
    };
    pub use evalkit::{
        evaluate_mrr, CrossModalModel, EvalParams, PredictionTask,
    };
    pub use mobility::synth::{generate, DatasetPreset};
    pub use mobility::{Corpus, CorpusSplit, GeoPoint, Record, SplitSpec};
    pub use resilience::{CheckpointPolicy, FaultPlan, RetryPolicy};
    pub use serve::{EngineParams, QueryEngine, QueryRequest, QueryResponse};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = ActorConfig::fast();
        assert!(cfg.validate().is_ok());
        assert_eq!(PredictionTask::ALL.len(), 3);
        let _ = DatasetPreset::ALL;
    }
}
