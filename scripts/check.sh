#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== resilience acceptance suite =="
cargo test -q --test resilience

echo "== serving conformance + load smoke =="
cargo test -q -p actor-serve --test conformance
cargo run -q -p actor-bench --release --bin serve_load -- --smoke

echo "== publish latency smoke (full rebuild vs delta apply) =="
cargo run -q -p actor-bench --release --bin publish_latency -- --smoke

echo "== parallel preprocessing: determinism suite + scaling smoke =="
cargo test -q --test parallel_determinism
cargo run -q -p actor-bench --release --bin preprocess_scaling -- --smoke

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "all checks passed"
