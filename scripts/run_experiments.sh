#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the extension
# ablations, writing one log per experiment under results/.
#
# Usage: scripts/run_experiments.sh [--fast] [--threads N] [--runs N]
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
mkdir -p results

cargo build --release -p actor-bench --bins

run() {
    local name="$1"
    echo "== $name =="
    cargo run --release -q -p actor-bench --bin "$name" -- "${ARGS[@]}" \
        | tee "results/$name.txt"
}

run table1
run table2
run table4
run case_studies
run fig9_11_neighbors
run fig12_scalability
run design_ablations
run inter_diagnostics
run wsd_analysis
run significance
run export_embeddings

echo "== criterion microbenches =="
cargo bench -p actor-bench | tee results/microbench.txt

echo "All experiment outputs are under results/."
