//! Offline shim of the `parking_lot` API surface used by this workspace.
//!
//! `Mutex` and `RwLock` wrap their `std::sync` counterparts; like the real
//! parking_lot, `lock()`/`read()`/`write()` return guards directly (no
//! `Result`) and ignore poisoning — a panic while holding the lock does not
//! wedge later acquisitions.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual exclusion primitive (poison-free facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock (poison-free facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5i32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
