//! Offline shim of the `rand` 0.9 API surface used by this workspace.
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64
//! — deterministic per seed, statistically solid for the simulation and
//! SGD workloads here, and *not* a cryptographic generator (the real
//! `StdRng` is ChaCha-based; nothing in this workspace relies on that).
//!
//! Provided: `Rng::{random, random_range}`, `SeedableRng::{from_seed,
//! seed_from_u64}`, `seq::{IndexedRandom, SliceRandom}`.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` by expanding it with SplitMix64 (the same
    /// convention the real rand crate documents for `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from their "natural" domain via
/// `rng.random::<T>()`: full range for integers, `[0, 1)` for floats,
/// fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by Lemire's widening-multiply method.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected to remove modulo bias; redraw.
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`. Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.random_range(2..6);
            assert!((2..6).contains(&v));
            seen[v as usize] = true;
            let w = rng.random_range(1..=2u32);
            assert!((1..=2).contains(&w));
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
    }

    #[test]
    fn float_range_means_look_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(-1.0..3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-5i64..-1);
            assert!((-5..-1).contains(&v));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(3..3);
    }
}
