//! Named generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Seeded via [`SeedableRng::seed_from_u64`] (SplitMix64 expansion) or from
/// 32 raw bytes. Not cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // A xoshiro state of all zeros is a fixed point; perturb it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn streams_from_nearby_seeds_differ() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let collisions = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }
}
