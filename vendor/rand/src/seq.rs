//! Sequence-related random operations: uniform element choice and
//! Fisher–Yates shuffling.

use crate::{Rng, RngCore};

/// Uniform random access into indexable collections.
pub trait IndexedRandom<T> {
    /// A uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T>;
}

impl<T> IndexedRandom<T> for [T] {
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = xs.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements should not stay in order");
    }
}
