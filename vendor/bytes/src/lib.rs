//! Offline shim of the `bytes` API surface used by this workspace.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into shared immutable
//! storage; [`BytesMut`] is an append-only builder that freezes into
//! [`Bytes`]. The [`Buf`]/[`BufMut`] traits carry the little-endian
//! cursor-style accessors the persistence layer uses.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `range` (relative to this view) sharing the
    /// same storage. Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past
    /// them. Panics when `n > len`.
    pub fn split_to(&mut self, n: usize) -> Self {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Self {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-cursor over a byte source; getters consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes. Panics when `n > remaining`.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes({
            let mut b = [0u8; 4];
            self.copy_to_slice(&mut b);
            b
        })
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes({
            let mut b = [0u8; 8];
            self.copy_to_slice(&mut b);
            b
        })
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

/// Write-cursor; putters append at the back.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = BytesMut::with_capacity(24);
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 24);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_f64_le(), -2.25);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        let mid = b.slice(1..3);
        assert_eq!(&mid[..], &[3, 4]);
        b.advance(1);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.advance(3);
    }
}
