//! Offline shim of the `serde_json` API surface used by this workspace:
//! [`to_string`], [`from_str`], and the [`Value`] re-export, over the
//! vendored `serde` shim's data model.
//!
//! The writer emits canonical compact JSON; floats use Rust's shortest
//! round-trip formatting with a `.0` suffix forced onto integral values so
//! they re-parse as floats. The parser is a strict recursive-descent JSON
//! parser (no trailing commas or comments; `\uXXXX` escapes including
//! surrogate pairs).

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialization/deserialization error (re-exported serde shim error).
pub type Error = serde::Error;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Converts `value` into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::deserialize(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep the float-ness visible so the value re-parses as Float.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut s)?;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, s: &mut String) -> Result<(), Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error::custom("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{08}'),
            b'f' => s.push('\u{0C}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX low half.
                    if !(self.eat_keyword("\\u")) {
                        return Err(Error::custom("unpaired surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::custom("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                s.push(char::from_u32(code).ok_or_else(|| Error::custom("invalid codepoint"))?);
            }
            other => {
                return Err(Error::custom(format!(
                    "invalid escape `\\{}`",
                    other as char
                )))
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "-0.25"] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json, "{json}");
        }
    }

    #[test]
    fn floats_keep_their_floatness() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v, Value::Float(3.0));
    }

    #[test]
    fn float_precision_round_trips() {
        for &f in &[0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 1e-300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let ugly = "a\"b\\c\nd\te\u{08}\u{0C}\u{1}é日本";
        let s = to_string(&ugly.to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, ugly);
        // Surrogate-pair escapes parse too.
        let v: String = from_str(r#""😀""#).unwrap();
        assert_eq!(v, "😀");
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":"x"}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\"1}", "[1 2]", "tru", "1.2.3", "[] []"] {
            assert!(from_str::<Value>(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
