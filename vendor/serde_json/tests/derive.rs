//! Integration tests exercising the vendored `serde_derive` macros through
//! JSON round-trips — the exact shapes the workspace derives on.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NewtypeId(pub u32);

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pair(pub f64, pub f64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// First mode.
    Alpha,
    Beta,
    GammaRay,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nested {
    pub id: NewtypeId,
    pub point: Pair,
    pub mode: Mode,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outer {
    /// Doc comments on fields must not confuse the parser.
    pub name: String,
    count: u64,
    pub scale: f32,
    pub flags: Vec<bool>,
    pub lookup: HashMap<String, NewtypeId>,
    pub maybe: Option<Nested>,
    pub none: Option<u8>,
    pub edges: Vec<(NewtypeId, NewtypeId, f64)>,
}

fn sample() -> Outer {
    let mut lookup = HashMap::new();
    lookup.insert("beach".to_string(), NewtypeId(7));
    lookup.insert("surf".to_string(), NewtypeId(9));
    Outer {
        name: "corpus \"x\"\n".to_string(),
        count: 12345678901234,
        scale: 0.25,
        flags: vec![true, false, true],
        lookup,
        maybe: Some(Nested {
            id: NewtypeId(3),
            point: Pair(-118.4, 34.1),
            mode: Mode::GammaRay,
        }),
        none: None,
        edges: vec![(NewtypeId(1), NewtypeId(2), 0.5)],
    }
}

#[test]
fn derived_structs_round_trip_through_json() {
    let outer = sample();
    let json = serde_json::to_string(&outer).unwrap();
    let back: Outer = serde_json::from_str(&json).unwrap();
    assert_eq!(back, outer);
}

#[test]
fn newtype_is_transparent_and_enum_is_a_string() {
    assert_eq!(serde_json::to_string(&NewtypeId(5)).unwrap(), "5");
    assert_eq!(serde_json::to_string(&Mode::Alpha).unwrap(), "\"Alpha\"");
    let m: Mode = serde_json::from_str("\"GammaRay\"").unwrap();
    assert_eq!(m, Mode::GammaRay);
    assert!(serde_json::from_str::<Mode>("\"Delta\"").is_err());
}

#[test]
fn tuple_struct_is_a_sequence() {
    let json = serde_json::to_string(&Pair(1.0, -2.5)).unwrap();
    assert_eq!(json, "[1.0,-2.5]");
    let p: Pair = serde_json::from_str(&json).unwrap();
    assert_eq!(p, Pair(1.0, -2.5));
}

#[test]
fn missing_optional_fields_read_as_none() {
    let json = r#"{"name":"n","count":1,"scale":1.0,"flags":[],"lookup":{},"maybe":null,"none":null,"edges":[]}"#;
    let o: Outer = serde_json::from_str(json).unwrap();
    assert_eq!(o.maybe, None);
    assert_eq!(o.none, None);
}

#[test]
fn missing_required_fields_error() {
    let json = r#"{"name":"n"}"#;
    let err = serde_json::from_str::<Outer>(json).unwrap_err();
    assert!(err.to_string().contains("Outer"), "{err}");
}
