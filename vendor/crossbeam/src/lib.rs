//! Offline shim of the `crossbeam` API surface used by this workspace.
//!
//! Only `crossbeam::thread::scope` + `Scope::spawn` are provided, backed by
//! `std::thread::scope` (stable since Rust 1.63). Matching the real crate,
//! `scope` returns `Err` when any spawned thread panicked instead of
//! propagating the panic at the join point.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` carries the payload of the first panicking
    /// child thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to the scope closure; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its panic payload on
        /// panic instead of resuming the unwind.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// like crossbeam's (unlike `std`'s), so nested spawns keep working.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the enclosing
    /// stack frame can be spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn spawned_threads_run_and_join() {
            let counter = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }

        #[test]
        fn panicking_child_yields_err() {
            let r = scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn join_reports_individual_panics() {
            let r = scope(|s| {
                let ok = s.spawn(|_| 7).join();
                let bad = s.spawn(|_| -> i32 { panic!("child") }).join();
                (ok, bad)
            });
            // The outer scope itself must not panic: both children were
            // joined explicitly, consuming their results.
            let (ok, bad) = r.unwrap();
            assert_eq!(ok.unwrap(), 7);
            assert!(bad.is_err());
        }
    }
}
