//! Offline shim of `criterion`: a minimal wall-clock benchmark harness.
//!
//! Implements the API surface used by `crates/bench/benches/micro.rs` —
//! `Criterion`, `benchmark_group` (with `sample_size`), `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical analysis it times `sample_size` samples (each batched to a
//! minimum duration so sub-microsecond bodies are measurable) and prints
//! the median per-iteration time to stderr.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Minimum wall-clock time one sample should cover; iterations are batched
/// until a sample takes at least this long.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 20, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (No analysis to flush in the shim.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }

    /// An id with both a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time, filled in by `iter`.
    measured: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, batching calls so each sample lasts at least
    /// [`MIN_SAMPLE`], and records the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and find a batch size that makes one sample ≥ MIN_SAMPLE.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= MIN_SAMPLE || batch >= 1 << 20 {
                break;
            }
            // Aim directly for the target to keep total warm-up short.
            let scale = (MIN_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)) as u64;
            batch = (batch * scale.clamp(2, 100)).min(1 << 20);
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed() / batch as u32);
        }
        samples.sort_unstable();
        self.measured = Some(samples[samples.len() / 2]);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(t) => eprintln!("bench {id:<40} {:>12}/iter", format_duration(t)),
        None => eprintln!("bench {id:<40} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| "x".repeat(4)));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| 0));
    }

    #[test]
    fn group_macro_runs() {
        demo_group();
    }
}
