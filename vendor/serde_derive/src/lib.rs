//! Offline shim of `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! without syn/quote, by walking the raw token stream.
//!
//! Supported item shapes — exactly what this workspace derives on:
//!
//! * structs with named fields       → `Value::Map` keyed by field name
//! * newtype structs (`S(T)`)        → the inner value, transparently
//! * tuple structs (`S(A, B, ...)`)  → `Value::Seq`
//! * enums with unit variants only   → `Value::Str(variant_name)`
//!
//! Generics, `#[serde(...)]` attributes, and data-carrying enum variants
//! are rejected with a compile-time panic so misuse is loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with this many fields (1 = newtype).
    Tuple(usize),
    /// Enum whose variants are all unit variants.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    if kind != "struct" && kind != "enum" {
        panic!("vendored serde_derive supports only structs and enums, found `{kind}`");
    }
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
        }
        _ => panic!("vendored serde_derive could not parse the body of `{name}`"),
    };
    Item { name, shape }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // the [...] group
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            // pub(crate) / pub(super) / pub(in ...)
            if matches!(
                tokens.get(*i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                *i += 1;
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("vendored serde_derive expected an identifier, found {other:?}"),
    }
}

/// Skips one type expression: consumes tokens until a `,` at angle-bracket
/// depth zero (exclusive) or the end of the stream.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("vendored serde_derive expected `:` after a field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the ',' (or one past the end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_type(&tokens, &mut i);
        count += 1;
        i += 1; // the ','
    }
    count
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let v = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            None => {
                variants.push(v);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(v);
                i += 1;
            }
            _ => panic!(
                "vendored serde_derive supports only unit variants; \
                 `{enum_name}::{v}` carries data or a discriminant"
            ),
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{entries}])")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),")
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::map_field(v, \"{f}\", \"{name}\")?,"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))"
        ),
        Shape::Tuple(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::seq_field(v, {i}, \"{name}\")?,"))
                .collect();
            format!("::std::result::Result::Ok({name}({inits}))")
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match v.as_str() {{\n\
                     ::std::option::Option::Some(s) => match s {{\n\
                         {arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\n\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::std::option::Option::None => ::std::result::Result::Err(\n\
                         ::serde::Error::ty(\"string\", \"{name}\", v)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<{name}, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
