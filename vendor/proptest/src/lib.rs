//! Offline shim of `proptest`: randomized property testing without
//! shrinking.
//!
//! The real proptest generates inputs from composable [`Strategy`] values,
//! runs each property a configurable number of times, and shrinks failures
//! to minimal counterexamples. This shim keeps the first two behaviours —
//! strategies compose the same way and every property still runs against
//! `ProptestConfig::cases` random inputs — but reports failures with the
//! deterministic case index instead of shrinking. Re-running the test binary
//! reproduces the exact failing input because every test's RNG is seeded
//! from a hash of the test name.
//!
//! Surface implemented (everything this workspace uses):
//!
//! * `proptest! { #![proptest_config(...)] fn name(x in strategy, ...) {...} }`
//! * `Strategy` with `prop_map`, ranges (`0u64..500`, `0.1f64..5.0`),
//!   tuples up to arity 8, `prop::collection::vec`, `prop::option::of`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! * `ProptestConfig::with_cases`

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the heavier statistical
        // properties (30k-sample alias checks, full pipeline builds)
        // fast while still exercising a wide input range.
        Self { cases: 64 }
    }
}

/// A composable generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Inclusive-lo / exclusive-hi length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range {r:?}");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::*`).
pub mod option {
    use super::*;

    /// Strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Namespace mirroring `proptest::prop` from the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

/// Deterministic per-test RNG: FNV-1a of the test name seeds the shared
/// xoshiro generator, so every run of a given test sees the same inputs.
#[doc(hidden)]
pub fn __test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `body` against `ProptestConfig::cases`
/// random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__test_rng(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the formatted message, when given) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assert!` for equality; operands must implement `PartialEq + Debug`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// `prop_assert!` for inequality; operands must implement `PartialEq + Debug`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Discards the current case when the precondition does not hold. The shim
/// counts discarded cases as passes rather than redrawing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::__test_rng("ranges_respect_bounds");
        for _ in 0..500 {
            let x = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_and_option_compose() {
        let mut rng = crate::__test_rng("compose");
        let strat = prop::collection::vec(
            (0u8..6, prop::collection::vec(0u8..12, 1..6), prop::option::of(0u8..6)),
            1..40,
        );
        for _ in 0..200 {
            let rows = Strategy::generate(&strat, &mut rng);
            assert!(!rows.is_empty() && rows.len() < 40);
            for (a, ks, m) in rows {
                assert!(a < 6);
                assert!(!ks.is_empty() && ks.len() < 6);
                assert!(ks.iter().all(|&k| k < 12));
                assert!(m.is_none_or(|v| v < 6));
            }
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::__test_rng("prop_map");
        let strat = (0u32..10).prop_map(|x| x * 100);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert_eq!(v % 100, 0);
            assert!(v < 1000);
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::__test_rng("exact");
        let strat = prop::collection::vec(-10.0f32..10.0, 8);
        assert_eq!(Strategy::generate(&strat, &mut rng).len(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, assertions work, assume skips.
        #[test]
        fn macro_generates_cases(x in 0u64..100, ys in prop::collection::vec(0i32..5, 0..4)) {
            prop_assume!(x != 99);
            prop_assert!(x < 99, "x was {x}");
            prop_assert_eq!(ys.len() as i64, ys.iter().map(|_| 1i64).sum::<i64>());
            prop_assert_ne!(x + 1, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 200, "impossible");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("impossible"), "{msg}");
    }
}
