//! Offline shim of the `serde` API surface used by this workspace.
//!
//! Instead of serde's visitor-based data model, this shim routes every
//! type through one self-describing [`Value`] tree (the JSON data model).
//! `#[derive(Serialize, Deserialize)]` is provided by the companion
//! `serde_derive` shim (enabled through the `derive` feature, matching the
//! real crate's feature name) and maps structs to maps, newtype structs to
//! their inner value, tuple structs to sequences, and unit-only enums to
//! their variant name as a string — the same shapes `serde_json` produces
//! for attribute-free derives.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing tree every serializable type maps onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings (also unit enum variants).
    Str(String),
    /// Sequences (`Vec`, tuples, tuple structs).
    Seq(Vec<Value>),
    /// String-keyed maps (structs, `HashMap`/`BTreeMap`), in insertion
    /// order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map key; absent keys read as [`Value::Null`].
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(m) => m
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// A "wrong shape" error.
    pub fn ty(expected: &str, context: &str, got: &Value) -> Self {
        Self {
            msg: format!("expected {expected} for {context}, got {}", got.kind()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) => s.parse().map_err(|_| Error::ty("bool", "bool", v)),
            _ => Err(Error::ty("bool", "bool", v)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    // Map keys arrive as strings; accept the numeric form.
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::ty("unsigned integer", stringify!($t), v))?,
                    _ => return Err(Error::ty("unsigned integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} overflows i64")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| Error::ty("integer", stringify!($t), v))?,
                    _ => return Err(Error::ty("integer", stringify!($t), v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            Value::Str(s) => s.parse().map_err(|_| Error::ty("float", "f64", v)),
            _ => Err(Error::ty("float", "f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::ty("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::ty("single-character string", "char", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::deserialize(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::ty("sequence", "Vec", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::ty("sequence", "tuple", v))?;
                let arity = [$($n),+].len();
                if s.len() != arity {
                    return Err(Error::custom(format!(
                        "expected a {arity}-tuple, got {} elements", s.len())));
                }
                Ok(($($t::deserialize(&s[$n])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Renders a serialized map key as the string JSON requires.
fn key_string(key: Value) -> String {
    match key {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!(
            "map keys must serialize to strings, integers, or bools, got {}",
            other.kind()
        ),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.serialize()), v.serialize()))
            .collect();
        // HashMap iteration order is unstable; sort for reproducible output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::ty("map", "HashMap", v))?
            .iter()
            .map(|(k, val)| {
                Ok((
                    K::deserialize(&Value::Str(k.clone()))?,
                    V::deserialize(val)?,
                ))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::ty("map", "BTreeMap", v))?
            .iter()
            .map(|(k, val)| {
                Ok((
                    K::deserialize(&Value::Str(k.clone()))?,
                    V::deserialize(val)?,
                ))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Helpers the derive macros generate calls to
// ---------------------------------------------------------------------------

/// Reads struct field `key` from map `v`; absent keys read as `Null` so
/// `Option` fields tolerate omission.
pub fn map_field<T: Deserialize>(v: &Value, key: &str, strukt: &str) -> Result<T, Error> {
    if v.as_map().is_none() {
        return Err(Error::ty("map", strukt, v));
    }
    T::deserialize(v.get(key))
        .map_err(|e| Error::custom(format!("field `{strukt}.{key}`: {e}")))
}

/// Reads element `idx` of the sequence encoding of tuple struct `strukt`.
pub fn seq_field<T: Deserialize>(v: &Value, idx: usize, strukt: &str) -> Result<T, Error> {
    let s = v
        .as_seq()
        .ok_or_else(|| Error::ty("sequence", strukt, v))?;
    let elem = s
        .get(idx)
        .ok_or_else(|| Error::custom(format!("{strukt} is missing element {idx}")))?;
    T::deserialize(elem).map_err(|e| Error::custom(format!("field `{strukt}.{idx}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hey".to_string().serialize()).unwrap(),
            "hey"
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u8>::serialize(&None), Value::Null);
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::deserialize(&Value::UInt(3)).unwrap(), Some(3));
        // Absent struct fields read as Null.
        let m = Value::Map(vec![]);
        assert_eq!(map_field::<Option<u8>>(&m, "x", "S").unwrap(), None);
    }

    #[test]
    fn maps_round_trip_with_sorted_string_keys() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let v = m.serialize();
        assert_eq!(
            v,
            Value::Map(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::UInt(2)),
            ])
        );
        let back: HashMap<String, u32> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_keyed_maps_stringify() {
        let mut m = BTreeMap::new();
        m.insert(5u64, "five".to_string());
        let v = m.serialize();
        assert_eq!(v.get("5").as_str(), Some("five"));
        let back: BTreeMap<u64, String> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let x = vec![(1u32, -2i32, 1.5f64), (3, -4, 2.5)];
        let back: Vec<(u32, i32, f64)> = Deserialize::deserialize(&x.serialize()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
        assert!(Vec::<u8>::deserialize(&Value::Bool(true)).is_err());
        assert!(<(u8, u8)>::deserialize(&Value::Seq(vec![Value::UInt(1)])).is_err());
    }
}
