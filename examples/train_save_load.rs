//! Train once, save the model, reload it elsewhere, and verify the
//! reloaded model answers queries identically — the deployment story.
//!
//! Run: `cargo run --example train_save_load --release`

use actor_st::core::TrainedModel;
use actor_st::prelude::*;

fn main() {
    println!("generating data and fitting ACTOR ...");
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(123)).expect("valid preset");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");
    let mut config = ActorConfig::fast();
    config.threads = 2;
    let (model, _) = fit(&corpus, &split.train, &config).expect("fit succeeds");

    // Save to a single self-contained buffer (and to disk).
    let buffer = model.save_bincode_like();
    let path = std::env::temp_dir().join("actor_model.bin");
    std::fs::write(&path, &buffer).expect("write model file");
    println!(
        "saved {} nodes x {} dims -> {} ({} KiB)",
        model.space().len(),
        model.store().dim(),
        path.display(),
        buffer.len() / 1024
    );

    // Reload from disk.
    let bytes = std::fs::read(&path).expect("read model file");
    let loaded =
        TrainedModel::load_bincode_like(bytes::Bytes::from(bytes)).expect("valid model file");
    println!("reloaded; verifying equivalence ...");

    // Identical predictions on held-out records.
    let mut checked = 0;
    for &rid in split.test.iter().take(50) {
        let r = corpus.record(rid);
        let a = model.score_location(r.timestamp, &r.keywords, r.location);
        let b = loaded.score_location(r.timestamp, &r.keywords, r.location);
        assert_eq!(a, b, "prediction drift after reload");
        checked += 1;
    }
    println!("  {checked} predictions identical");

    // Identical neighbor searches.
    if let Some(kw) = corpus.vocab().get("coffee") {
        let q = model.vector(model.word_node(kw)).to_vec();
        let before = model.nearest_words(&q, 5);
        let after = loaded.nearest_words(&q, 5);
        assert_eq!(before, after, "neighbor drift after reload");
        println!("  top-5 neighbors of 'coffee' identical:");
        for (w, s) in before {
            println!("    {w:<20} {s:.3}");
        }
    }
    std::fs::remove_file(&path).ok();
    println!("done.");
}
