//! Cross-modal prediction walkthrough: for one held-out record, hide each
//! modality in turn and watch ACTOR rank the truth against noise
//! candidates — the §6.2.1 protocol made visible.
//!
//! Run: `cargo run --example what_where_when --release`

use actor_st::eval::tasks::{build_queries, score_query};
use actor_st::prelude::*;
use mobility::types::format_time_of_day;

fn main() {
    println!("generating a mention-rich corpus (UTGEO2011-like) ...");
    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(99)).expect("valid preset");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");
    println!(
        "  mention rate: {:.1}% (paper reports 16.8% for UTGEO2011)",
        100.0 * corpus.stats().mention_rate()
    );

    println!("fitting ACTOR ...");
    let mut config = ActorConfig::fast();
    config.threads = 2;
    config.max_epochs = 40;
    let (model, _) = fit(&corpus, &split.train, &config).expect("fit succeeds");

    let queries = build_queries(&split.test, &EvalParams::default());
    let q = &queries[0];
    let gt = corpus.record(q.record);
    let words: Vec<&str> = gt.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();

    println!("\nthe held-out record:");
    println!("  what : \"{}\"", words.join(" "));
    println!("  where: ({:.4}, {:.4})", gt.location.lat, gt.location.lon);
    println!("  when : {}", format_time_of_day(gt.second_of_day()));

    // WHAT: given where+when, rank 11 candidate texts.
    println!("\nWHAT — activity prediction (given where + when):");
    let rr = score_query(&model, &corpus, q, PredictionTask::Text);
    println!("  reciprocal rank of the true text: {rr:.3}");
    for (i, &nid) in q.noise.iter().take(3).enumerate() {
        let nw: Vec<&str> = corpus
            .record(nid)
            .keywords
            .iter()
            .map(|&k| corpus.vocab().word(k))
            .collect();
        println!("  noise candidate {}: \"{}\"", i + 1, nw.join(" "));
    }

    // WHERE: given what+when.
    println!("\nWHERE — location prediction (given what + when):");
    let rr = score_query(&model, &corpus, q, PredictionTask::Location);
    println!("  reciprocal rank of the true location: {rr:.3}");

    // WHEN: given what+where.
    println!("\nWHEN — time prediction (given what + where):");
    let rr = score_query(&model, &corpus, q, PredictionTask::Time);
    println!("  reciprocal rank of the true time: {rr:.3}");
    println!("  (time is the hardest modality in the paper too: Table 2's");
    println!("   time MRRs are ~0.35 vs ~0.62-0.95 for text/location)");

    // The same what/where/when questions, answered through the serving
    // engine: the observed modalities become one composite query, and the
    // engine returns the most aligned units of each missing modality.
    println!("\nthe engine's open-ended answers (no candidate list needed):");
    let engine = QueryEngine::with_defaults(&model);
    let observed: Vec<String> = words.iter().map(|w| w.to_string()).collect();
    let req = QueryRequest::composite(
        Some(gt.second_of_day()),
        Some(gt.location),
        observed.clone(),
    )
    .with_k(3);
    match engine.query(&req) {
        Ok(r) => {
            let top_words: Vec<&str> = r.words.iter().map(|(w, _)| w.as_str()).collect();
            println!("  WHAT : {}", top_words.join(", "));
            if let Some((s, _)) = r.times.first() {
                println!("  WHEN : {}", format_time_of_day(*s));
            }
            if let Some((p, _)) = r.places.first() {
                println!("  WHERE: ({:.4}, {:.4})", p.lat, p.lon);
            }
        }
        Err(e) => println!("  engine could not answer: {e}"),
    }

    // Aggregate over the full test split.
    println!("\nfull test split MRRs:");
    for task in PredictionTask::ALL {
        let mrr = evaluate_mrr(&model, &corpus, &split.test, task, &EvalParams::default());
        println!("  {:<9} {mrr:.4}", task.label());
    }
}
