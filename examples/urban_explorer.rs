//! Urban explorer: answers the paper's motivating questions (§1) with
//! neighbor search — "what are the popular activities around the beach at
//! dusk?", "where should someone who tweets about startups go?", "when do
//! people hit the sports bars?".
//!
//! Run: `cargo run --example urban_explorer --release`

use actor_st::eval::neighbor::{spatial_query, temporal_query, textual_query};
use actor_st::prelude::*;

fn main() {
    println!("generating an LA-like tweet corpus ...");
    let (corpus, _) = generate(DatasetPreset::Tweet.small_config(7)).expect("valid preset");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");

    println!("fitting ACTOR ...");
    let mut config = ActorConfig::fast();
    config.threads = 2;
    config.max_epochs = 40;
    let (model, _) = fit(&corpus, &split.train, &config).expect("fit succeeds");

    // Q1: "What are the popular activities around the beach at dusk?"
    // Combine the beach hotspot vector with the ~18:30 temporal vector.
    println!("\nQ1: popular activities around the beach at dusk");
    let beach_anchor = GeoPoint::new(33.745, -118.3975); // beach theme anchor
    let beach_node = model.location_node(beach_anchor);
    let dusk_node = model.time_of_day_node(18.5 * 3600.0);
    let beach_v = model.vector(beach_node).to_vec();
    let dusk_v = model.vector(dusk_node).to_vec();
    let query = model.query_vector(&[&beach_v, &dusk_v]);
    for (word, score) in model.nearest_words(&query, 8) {
        println!("  {word:<24} {score:.3}");
    }

    // Q2: "Where should a startup person go?" — textual query on a
    // tech keyword, report its top spatial hotspots.
    println!("\nQ2: where do the startup people gather?");
    match textual_query(&model, "startup", 5) {
        Some(report) => {
            for (place, score) in &report.places {
                println!("  ({:.4}, {:.4})  {score:.3}", place.lat, place.lon);
            }
            println!("  related words: {}",
                report.words.iter().map(|(w, _)| w.as_str()).collect::<Vec<_>>().join(", "));
        }
        None => println!("  'startup' not in vocabulary"),
    }

    // Q3: "When is the fit time for the stadium?" — spatial query at the
    // stadium anchor, report its top temporal hotspots.
    println!("\nQ3: when do people go to the stadium area?");
    let stadium_anchor = GeoPoint::new(33.88, -118.24);
    let report = spatial_query(&model, stadium_anchor, 5);
    for (time, score) in &report.times {
        println!("  {time}  {score:.3}");
    }

    // Q4: what characterizes late night (23:00)?
    println!("\nQ4: what happens at 23:00?");
    let report = temporal_query(&model, 23.0 * 3600.0, 8);
    for (word, score) in &report.words {
        println!("  {word:<24} {score:.3}");
    }

    // Q5: profile a prolific user from their embedding alone.
    println!("\nQ5: what is user 0 into? (activity profile from the embedding)");
    for (word, score) in model.user_profile(mobility::UserId(0), 6) {
        println!("  {word:<24} {score:.3}");
    }
}
