//! Streaming updates: fit once, then keep learning from a live stream —
//! the ReAct-style extension (`actor_core::online`). The demo plants a
//! drift (an activity suddenly happening at an unusual hour) and shows
//! the online model tracking it while the frozen model cannot.
//!
//! Run: `cargo run --example streaming_updates --release`

use actor_st::core::{OnlineActor, OnlineParams};
use actor_st::embed::math::cosine;
use actor_st::prelude::*;
use mobility::types::format_time_of_day;

fn main() {
    println!("fitting the base model ...");
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(7)).expect("valid preset");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");
    let mut config = ActorConfig::fast();
    config.threads = 2;
    let (model, _) = fit(&corpus, &split.train, &config).expect("fit succeeds");

    // The drift: "coffee" starts happening at 03:00 at one place (a new
    // 24-hour espresso bar, say).
    let coffee = corpus.vocab().get("coffee").expect("coffee in vocabulary");
    let drift_second = 3.0 * 3600.0;
    let drift_place = GeoPoint::new(40.72, -73.99);
    let align = |m: &actor_st::core::TrainedModel| {
        let t = m.time_of_day_node(drift_second);
        cosine(m.vector(m.word_node(coffee)), m.vector(t))
    };
    let frozen_alignment = align(&model);
    println!(
        "cosine(coffee, {}) before streaming: {frozen_alignment:.3}",
        format_time_of_day(drift_second)
    );

    println!("streaming 1000 drift records ...");
    let mut online = OnlineActor::new(model, OnlineParams::default());
    for i in 0..1000u32 {
        let record = Record {
            id: mobility::RecordId(i),
            user: mobility::UserId(i % 50),
            timestamp: mobility::synth::EPOCH_BASE
                + (i as i64) * 600
                + drift_second as i64,
            location: drift_place,
            keywords: vec![coffee],
            mentions: vec![],
        };
        online.observe(&record);
    }
    println!(
        "  observed {} records ({} unknown tokens skipped)",
        online.observed(),
        online.skipped_words()
    );

    let updated = online.into_model();
    let updated_alignment = align(&updated);
    println!(
        "cosine(coffee, {}) after streaming:  {updated_alignment:.3}",
        format_time_of_day(drift_second)
    );
    println!(
        "\nthe online model moved 'coffee' toward the new hour by {:+.3};\n\
         a frozen model would stay at {frozen_alignment:.3} forever.",
        updated_alignment - frozen_alignment
    );

    // The updated model still answers ordinary queries.
    let mrr = evaluate_mrr(
        &updated,
        &corpus,
        &split.test,
        PredictionTask::Location,
        &EvalParams::default(),
    );
    println!("location MRR after streaming: {mrr:.4} (still far above the 0.2745 random floor)");
}
