//! Quickstart: generate data, fit ACTOR, and ask it cross-modal questions.
//!
//! Run: `cargo run --example quickstart --release`

use actor_st::eval::neighbor::temporal_query;
use actor_st::prelude::*;

fn main() {
    // A small Foursquare-like corpus: venue-heavy check-ins in a city.
    println!("generating synthetic check-in corpus ...");
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(42)).expect("valid preset");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");
    println!(
        "  {} records, {} users, {} keywords",
        corpus.len(),
        corpus.num_users(),
        corpus.vocab().len()
    );

    // Fit ACTOR (Algorithm 1 of the paper).
    println!("fitting ACTOR ...");
    let mut config = ActorConfig::fast();
    config.threads = 2;
    let (model, report) = fit(&corpus, &split.train, &config).expect("fit succeeds");
    println!(
        "  {} spatial hotspots, {} temporal hotspots, {} graph edges, trained in {:.1}s",
        report.n_spatial, report.n_temporal, report.n_edges, report.total_seconds
    );

    // Cross-modal prediction on one held-out record: does the model rank
    // the record's true location above random test locations?
    let gt = corpus.record(split.test[0]);
    let words: Vec<&str> = gt.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
    println!(
        "\nquery record: \"{}\" at {} near ({:.4}, {:.4})",
        words.join(" "),
        mobility::types::format_time_of_day(gt.second_of_day()),
        gt.location.lat,
        gt.location.lon
    );
    let own = model.score_location(gt.timestamp, &gt.keywords, gt.location);
    let other = corpus.record(split.test[1]);
    let noise = model.score_location(gt.timestamp, &gt.keywords, other.location);
    println!("  score(own location)   = {own:.3}");
    println!("  score(noise location) = {noise:.3}");

    // MRR over the whole test split for all three tasks.
    println!("\nMRR on the test split (11 candidates per query):");
    for task in PredictionTask::ALL {
        let mrr = evaluate_mrr(&model, &corpus, &split.test, task, &EvalParams::default());
        println!("  {:<9} {mrr:.4}  (random baseline ≈ 0.2745)", task.label());
    }

    // Neighbor search: what happens around 8 pm?
    println!("\ntop keywords near 20:00:");
    let report = temporal_query(&model, 20.0 * 3600.0, 8);
    for (word, score) in &report.words {
        println!("  {word:<24} {score:.3}");
    }

    // A terminal map of the city: record density with detected hotspots.
    println!("\nrecord density and detected hotspots (O):");
    let points: Vec<GeoPoint> = corpus.records().iter().map(|r| r.location).collect();
    let map = actor_st::eval::ascii::density_map_with_hotspots(
        &points,
        model.spatial_hotspots().centers(),
        64,
        20,
    );
    print!("{map}");
}
