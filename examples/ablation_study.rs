//! Miniature ablation study (§6.3): fit ACTOR complete, w/o inter, and
//! w/o intra on the mention-rich preset and compare MRRs — a quick,
//! runnable version of the paper's Table 4.
//!
//! Run: `cargo run --example ablation_study --release`

use actor_st::prelude::*;

fn main() {
    println!("generating a mention-rich corpus (UTGEO2011-like) ...");
    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(17)).expect("valid preset");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");

    let mut base = ActorConfig::fast();
    base.threads = 2;
    base.max_epochs = 40;

    println!("\n{:<18} {:>8} {:>8} {:>8}", "variant", "Text", "Location", "Time");
    println!("{}", "-".repeat(48));
    for variant in Variant::ALL {
        let config = variant.apply(base.clone());
        let (model, report) = fit(&corpus, &split.train, &config).expect("fit succeeds");
        let mut cells = Vec::new();
        for task in PredictionTask::ALL {
            let mrr = evaluate_mrr(&model, &corpus, &split.test, task, &EvalParams::default());
            cells.push(format!("{mrr:>8.4}"));
        }
        println!(
            "{:<18} {} {} {}  (pretrained: {})",
            variant.label(),
            cells[0],
            cells[1],
            cells[2],
            report.pretrained
        );
    }
    println!(
        "\nexpected shape (paper Table 4): both ablations trail the complete\n\
         model, and w/o inter hurts most here because this preset has user\n\
         mentions to exploit."
    );
}
