//! Weekly rhythms: some activities (farmers markets, day hikes) live on
//! weekends. The paper's temporal units are time-of-day hotspots, which
//! cannot tell Saturday 10:00 from Tuesday 10:00; this library's
//! `temporal_period = SECONDS_PER_WEEK` extension can. The demo fits the
//! same corpus both ways and shows only the weekly model separating a
//! weekend activity from a weekday one that peaks at the same hour.
//!
//! Run: `cargo run --example weekly_rhythms --release`

use actor_st::embed::math::cosine;
use actor_st::prelude::*;
use mobility::{SECONDS_PER_DAY, SECONDS_PER_WEEK};

fn main() {
    // Half the activities are weekend-skewed.
    let mut gen_cfg = DatasetPreset::Tweet.small_config(77);
    gen_cfg.weekend_activity_fraction = 0.5;
    gen_cfg.n_records = 6_000;
    println!("generating a corpus with weekend-skewed activities ...");
    let (corpus, _) = generate(gen_cfg).expect("valid config");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");

    let mut base = ActorConfig::fast();
    base.threads = 2;
    base.max_epochs = 40;

    println!("fitting with daily temporal units (the paper's setup) ...");
    let (daily, rep_daily) = fit(&corpus, &split.train, &base).expect("fit daily");
    println!("  {} daily hotspots", rep_daily.n_temporal);

    println!("fitting with weekly temporal units (extension) ...");
    let mut weekly_cfg = base.clone();
    weekly_cfg.temporal_period = SECONDS_PER_WEEK as f64;
    weekly_cfg.temporal_bandwidth = 3.0 * 3600.0;
    let (weekly, rep_weekly) = fit(&corpus, &split.train, &weekly_cfg).expect("fit weekly");
    println!("  {} weekly hotspots", rep_weekly.n_temporal);

    // "beach" is activity 0 → weekend-skewed; "nightlife" is activity 1 →
    // also skewed at 0.5 fraction... pick one from each half: activity 0
    // (beach, weekend) vs a late activity ("market" index 15, weekday).
    let weekend_word = corpus.vocab().get("beach").expect("beach in vocab");
    let weekday_word = corpus.vocab().get("telescope").expect("telescope in vocab");

    // Compare alignment of each word with a Saturday-noon time node vs a
    // Tuesday-noon one under both models. EPOCH_BASE is Friday, so +1 day
    // = Saturday, +4 days = Tuesday.
    let saturday_noon = mobility::synth::EPOCH_BASE + SECONDS_PER_DAY + 12 * 3600;
    let tuesday_noon = mobility::synth::EPOCH_BASE + 4 * SECONDS_PER_DAY + 12 * 3600;

    let margin = |model: &actor_st::core::TrainedModel, word| {
        let wv = model.vector(model.word_node(word)).to_vec();
        let sat = cosine(&wv, model.vector(model.time_node(saturday_noon)));
        let tue = cosine(&wv, model.vector(model.time_node(tuesday_noon)));
        sat - tue
    };

    println!("\ncosine(word, Saturday noon) − cosine(word, Tuesday noon):");
    println!("{:<12} {:>10} {:>10}", "word", "daily", "weekly");
    for (name, w) in [("beach", weekend_word), ("telescope", weekday_word)] {
        println!(
            "{:<12} {:>10.3} {:>10.3}",
            name,
            margin(&daily, w),
            margin(&weekly, w)
        );
    }
    println!(
        "\nreading: the daily model assigns Saturday noon and Tuesday noon to\n\
         the SAME hotspot (margin exactly 0); the weekly model separates\n\
         them, so the weekend-skewed word shows a positive margin."
    );

    let daily_same = daily.time_node(saturday_noon) == daily.time_node(tuesday_noon);
    println!(
        "daily model: Saturday noon and Tuesday noon share a node: {daily_same}"
    );
}
