//! Bring your own data: ingest a TSV dump of geo-tagged posts
//! (`user <TAB> unix_ts <TAB> lat <TAB> lon <TAB> text`), fit ACTOR, and
//! query it. The demo synthesizes the TSV (export format of the
//! UTGEO2011-style dumps) and round-trips it through `mobility::io`.
//!
//! Run: `cargo run --example ingest_tsv --release`

use actor_st::prelude::*;
use mobility::io::parse_tsv;
use std::fmt::Write as _;

fn main() {
    // Synthesize a TSV export from the generator (a stand-in for your
    // real dump file).
    println!("writing a TSV export ...");
    let (source, _) = generate(DatasetPreset::Utgeo2011.small_config(55)).expect("valid preset");
    let mut tsv = String::from("# user\ttimestamp\tlat\tlon\ttext\n");
    for r in source.records() {
        let mut text = r
            .keywords
            .iter()
            .map(|&k| source.vocab().word(k))
            .collect::<Vec<_>>()
            .join(" ");
        for &m in &r.mentions {
            let _ = write!(text, " @user{}", m.0);
        }
        let _ = writeln!(
            tsv,
            "user{}\t{}\t{:.6}\t{:.6}\t{}",
            r.user.0, r.timestamp, r.location.lat, r.location.lon, text
        );
    }
    let path = std::env::temp_dir().join("actor_demo.tsv");
    std::fs::write(&path, &tsv).expect("write tsv");
    println!("  {} lines -> {}", source.len(), path.display());

    // Ingest it back: tokenization, stop words, vocabulary, and mention
    // extraction all happen inside parse_tsv.
    println!("ingesting ...");
    let raw = std::fs::read_to_string(&path).expect("read tsv");
    let corpus = parse_tsv("my-city-dump", &raw).expect("well-formed tsv");
    let stats = corpus.stats();
    println!(
        "  {} records, {} users, {} keywords, mention rate {:.1}%",
        stats.records,
        stats.users,
        stats.vocab_size,
        100.0 * stats.mention_rate()
    );

    // Standard pipeline from here.
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");
    let mut config = ActorConfig::fast();
    config.threads = 2;
    println!("fitting ACTOR ...");
    let (model, report) = fit(&corpus, &split.train, &config).expect("fit succeeds");
    println!(
        "  {} spatial / {} temporal hotspots, {} edges",
        report.n_spatial, report.n_temporal, report.n_edges
    );

    for task in PredictionTask::ALL {
        let mrr = evaluate_mrr(&model, &corpus, &split.test, task, &EvalParams::default());
        println!("  {:<9} MRR {mrr:.4}", task.label());
    }
    std::fs::remove_file(&path).ok();
}
