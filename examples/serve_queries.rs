//! Serving walkthrough: train once, stand up a query engine, answer
//! cross-modal queries, and hot-swap new model generations underneath it
//! while it keeps serving.
//!
//! Run: `cargo run --example serve_queries --release`

use std::sync::Arc;

use actor_st::core::{ModelSink, OnlineActor, OnlineParams};
use actor_st::prelude::*;
use mobility::types::format_time_of_day;

fn show(r: &QueryResponse) {
    println!("  [{}] epoch {}{}", r.query, r.epoch, if r.from_cache { " (cached)" } else { "" });
    let words: Vec<String> = r.words.iter().take(5).map(|(w, s)| format!("{w} {s:.2}")).collect();
    println!("    words : {}", words.join(", "));
    if let Some((s, score)) = r.times.first() {
        println!("    time  : {} {score:.2}", format_time_of_day(*s));
    }
    if let Some((p, score)) = r.places.first() {
        println!("    place : ({:.4}, {:.4}) {score:.2}", p.lat, p.lon);
    }
}

fn main() {
    println!("fitting the base model ...");
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(7)).expect("valid preset");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("valid split");
    let mut config = ActorConfig::fast();
    config.threads = 2;
    let (model, _) = fit(&corpus, &split.train, &config).expect("fit succeeds");

    // One engine, shareable across however many threads a server runs.
    // Models this small stay on the exact index; past
    // `EngineParams::default().index.ann_threshold` units a modality gets
    // an HNSW graph automatically.
    let engine = Arc::new(QueryEngine::with_defaults(&model));
    println!("engine serving at epoch {}\n", engine.epoch());

    println!("the four query kinds:");
    let spatial = QueryRequest::spatial(GeoPoint::new(40.73, -73.99), 5);
    show(&engine.query(&spatial).expect("spatial"));
    show(&engine.query(&QueryRequest::temporal(20.0 * 3600.0, 5)).expect("temporal"));
    if let Ok(r) = engine.query(&QueryRequest::keyword("coffee", 5)) {
        show(&r);
    }
    let composite = QueryRequest::composite(
        Some(9.0 * 3600.0),
        Some(GeoPoint::new(40.73, -73.99)),
        vec!["coffee".into()],
    )
    .with_k(5);
    if let Ok(r) = engine.query(&composite) {
        show(&r);
    }

    // Ask the same thing twice: the second answer is a cache hit.
    let again = engine.query(&spatial).expect("spatial repeat");
    println!("\nrepeat of the first query: from_cache = {}", again.from_cache);

    // Streaming updates publish straight into the engine: the engine is a
    // ModelSink, so every `publish_every` observed records the online
    // trainer hands it a dirty-row delta and the epoch ticks — no full
    // model copies in the steady state.
    println!("\nstreaming 600 records with the engine attached as a sink ...");
    let sink: Arc<dyn ModelSink> = engine.clone();
    let mut online = OnlineActor::new(model, OnlineParams::default());
    online.attach_sink(sink, 300);
    for &rid in split.test.iter().take(600) {
        online.observe(corpus.record(rid));
    }
    println!("engine now at epoch {} (publishes happen mid-query-load,", engine.epoch());
    println!("in-flight readers keep the snapshot they started with)");

    // Old cached answers are epoch-keyed, so the swap invalidated them.
    let fresh = engine.query(&spatial).expect("post-swap query");
    println!("\nsame spatial query after the swap:");
    show(&fresh);

    let stats = engine.stats();
    println!(
        "\nengine stats: {} queries, {} cache hits, {} publishes, epoch {}",
        stats.queries, stats.cache_hits, stats.publishes, stats.epoch
    );
}
