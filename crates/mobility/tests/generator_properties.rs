//! Property tests over the synthetic generator: every sampled
//! configuration produces a structurally valid corpus.

use mobility::synth::{generate, DatasetPreset};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn generated_corpora_are_structurally_valid(
        seed in 0u64..1_000,
        preset_idx in 0usize..3,
        mention_rate in 0.0f64..0.5,
        sparse in 0.0f64..0.9,
        uniform_time in 0.0f64..1.0,
        clusters in 1usize..5,
    ) {
        let mut cfg = DatasetPreset::ALL[preset_idx].small_config(seed);
        cfg.n_records = 400;
        cfg.mention_rate = mention_rate;
        cfg.sparse_record_fraction = sparse;
        cfg.uniform_time_fraction = uniform_time;
        cfg.clusters_per_activity = clusters;
        let (corpus, gt) = generate(cfg.clone()).expect("valid config generates");

        prop_assert_eq!(corpus.len(), 400);
        prop_assert_eq!(gt.location_activity.len(), 400);
        let (lat0, lon0, lat1, lon1) = cfg.bbox;
        for r in corpus.records() {
            // At least one keyword; all ids valid (Corpus::new validated).
            prop_assert!(!r.keywords.is_empty());
            // Mentions never self-reference.
            prop_assert!(r.mentions.iter().all(|&m| m != r.user));
            // Locations stay within a few sigma of the city box.
            let slack = 6.0 * cfg.spatial_sd_deg;
            prop_assert!(r.location.lat > lat0 - slack && r.location.lat < lat1 + slack);
            prop_assert!(r.location.lon > lon0 - slack && r.location.lon < lon1 + slack);
            // Timestamps inside the configured day range.
            let day = (r.timestamp - mobility::synth::EPOCH_BASE) / mobility::SECONDS_PER_DAY;
            prop_assert!((0..cfg.n_days as i64 + 1).contains(&day));
        }
        // Ground-truth activities reference real activities.
        for (&l, &t) in gt.location_activity.iter().zip(&gt.text_activity) {
            prop_assert!(l < cfg.n_activities);
            prop_assert!(t < cfg.n_activities);
        }
        // Crossover only possible when mentions exist.
        if mention_rate == 0.0 {
            prop_assert!(gt.crossover_records().is_empty());
        }
        // Mention rate tracks the configuration (loose bound: small n).
        let measured = corpus.stats().mention_rate();
        prop_assert!((measured - mention_rate).abs() < 0.12,
            "configured {mention_rate}, measured {measured}");
    }
}
