//! Small, dependency-light sampling utilities used by the synthetic
//! generator (and reused by baselines for initialization).
//!
//! Only `rand`'s uniform primitives are used; Gaussian, wrapped-Gaussian,
//! Poisson, Zipf and categorical samplers are hand-rolled to stay within the
//! approved dependency set (see `DESIGN.md` §5).

use rand::Rng;

/// Draws a standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws from `N(mean, sd^2)`.
#[inline]
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Draws from a Gaussian wrapped onto the circle `[0, period)`.
///
/// Used for time-of-day sampling: activity peaks are circular quantities
/// (23:30 and 00:30 are one hour apart).
pub fn wrapped_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, period: f64) -> f64 {
    debug_assert!(period > 0.0);
    normal(rng, mean, sd).rem_euclid(period)
}

/// Draws from `Poisson(lambda)` via Knuth's method (fine for small lambda).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    debug_assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Defensive cap: lambda used in this crate is single digit, so
        // hitting this indicates a logic error rather than a valid draw.
        if k > 10_000 {
            return k;
        }
    }
}

/// A cumulative-distribution sampler over arbitrary non-negative weights.
///
/// Build cost is O(n); each draw is O(log n) via binary search. For the hot
/// training loops the graph crate provides an O(1) alias sampler instead;
/// this one is for corpus generation where simplicity wins.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds the sampler. Returns `None` if no weight is positive or any
    /// weight is negative/NaN.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if w.is_nan() || w < 0.0 {
                return None;
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return None;
        }
        Some(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a category index proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x = rng.random_range(0.0..total);
        // partition_point returns the first index with cumulative > x.
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

/// Zipf-like weights `w_i = 1 / (i+1)^s`, used for user activity levels
/// (a few prolific posters, a long tail), matching the heavy-tailed posting
/// behaviour of real social media.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn wrapped_normal_stays_in_period() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = wrapped_normal(&mut rng, 86_000.0, 5000.0, 86_400.0);
            assert!((0.0..86_400.0).contains(&x));
        }
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 4.5) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
        assert!(Categorical::new(&[1.0, -1.0]).is_none());
        assert!(Categorical::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn categorical_matches_weights_empirically() {
        let mut rng = StdRng::seed_from_u64(4);
        let cat = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
        let mut counts = [0usize; 3];
        let n = 40_000;
        for _ in 0..n {
            counts[cat.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.75).abs() < 0.02, "frac2 {frac2}");
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[4] - 0.2).abs() < 1e-12);
    }
}
