//! A compact English stop-word list.
//!
//! The paper removes "frequent and meaningless words" before building the
//! textual units of the activity graph (§4.1). This list mirrors the common
//! SMART/NLTK core plus social-media artifacts; the synthetic generator also
//! emits a handful of these to exercise the filter.

/// Words excluded from the vocabulary when [`is_stopword`] is consulted.
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "cannot", "could", "did", "do", "does", "doing", "down", "during", "each",
    "few", "for", "from", "further", "get", "got", "had", "has", "have", "having", "he", "her",
    "here", "hers", "him", "his", "how", "i", "if", "in", "into", "is", "it", "its", "just",
    "like", "me", "more", "most", "my", "no", "nor", "not", "now", "of", "off", "on", "once",
    "only", "or", "other", "our", "out", "over", "own", "rt", "same", "she", "should", "so",
    "some", "such", "than", "that", "the", "their", "them", "then", "there", "these", "they",
    "this", "those", "through", "to", "today", "too", "under", "until", "up", "very", "was",
    "we", "were", "what", "when", "where", "which", "while", "who", "whom", "why", "will",
    "with", "would", "you", "your",
];

/// True if `word` (ASCII, lower-cased by the caller) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    // The list is sorted, so binary search keeps this O(log n) without a
    // lazily built hash set.
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for pair in STOPWORDS.windows(2) {
            assert!(pair[0] < pair[1], "{:?} !< {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn recognizes_common_stopwords() {
        for w in ["the", "a", "rt", "today", "you"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn keeps_content_words() {
        for w in ["beach", "concert", "pub", "dodgers", "sunset"] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }
}
