//! Record generation from a [`World`].

use rand::seq::IndexedRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::corpus::Corpus;
use crate::rng::{normal, poisson, wrapped_normal};
use crate::types::{GeoPoint, KeywordId, Record, RecordId, Timestamp, UserId, SECONDS_PER_DAY};

use super::config::SynthConfig;
use super::world::{Activity, World};

/// Epoch base of generated timestamps (2014-08-01T00:00:00Z, the start of
/// the TWEET collection window).
pub const EPOCH_BASE: Timestamp = 1_406_851_200;

/// Per-record latent state kept alongside the corpus, for tests, tuning,
/// and the qualitative case studies.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Activity that generated each record's location and timestamp.
    pub location_activity: Vec<usize>,
    /// Activity that generated each record's keywords (differs from
    /// `location_activity` exactly for crossover mention records).
    pub text_activity: Vec<usize>,
}

impl GroundTruth {
    /// Records whose text and location activities disagree — the
    /// inter-record high-order cases.
    pub fn crossover_records(&self) -> Vec<RecordId> {
        self.location_activity
            .iter()
            .zip(&self.text_activity)
            .enumerate()
            .filter(|(_, (l, t))| l != t)
            .map(|(i, _)| RecordId::from(i))
            .collect()
    }
}

/// Generates a corpus from `config`. Deterministic per seed.
pub fn generate(config: SynthConfig) -> Result<(Corpus, GroundTruth), String> {
    let mut world = World::build(config)?;
    let cfg = world.config.clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_0002);

    let mut records = Vec::with_capacity(cfg.n_records);
    let mut location_activity = Vec::with_capacity(cfg.n_records);
    let mut text_activity = Vec::with_capacity(cfg.n_records);

    for i in 0..cfg.n_records {
        let author = UserId::from(world.user_post_dist.sample(&mut rng));
        let act_idx = world.sample_activity_for_user(author, &mut rng);

        // Mentions: within the author's community, excluding self.
        let mut mentions = Vec::new();
        let mut text_act_idx = act_idx;
        if rng.random::<f64>() < cfg.mention_rate {
            let comm = &world.communities[world.users[author.idx()].community];
            if comm.members.len() > 1 {
                // Rejection-sample a member other than the author (cheap:
                // communities have ≥ 2 members here).
                let mentioned = loop {
                    let m = *comm.members.choose(&mut rng).expect("non-empty community");
                    if m != author {
                        break m;
                    }
                };
                mentions.push(mentioned);
                // Fig. 1 information flow: the record's *text* follows the
                // mentioned user's favourite activity while location/time
                // stay with the author.
                if rng.random::<f64>() < cfg.mention_crossover {
                    text_act_idx = world.users[mentioned.idx()].favorite_activity;
                }
            }
        }

        let loc_act = world.activities[act_idx].clone();
        let text_act = world.activities[text_act_idx].clone();

        // Pick one of the activity's spatial clusters ("chain branches").
        let cluster = rng.random_range(0..loc_act.clusters.len());
        let center = loc_act.clusters[cluster];
        let location = GeoPoint::new(
            normal(&mut rng, center.lat, loc_act.spatial_sd),
            normal(&mut rng, center.lon, loc_act.spatial_sd),
        );
        // Weekend-skewed activities land on Saturday/Sunday with
        // probability 0.85 (EPOCH_BASE is a Friday, so day index d is a
        // weekend day iff (d + 4) % 7 >= 5).
        let day = if loc_act.weekend_skewed && rng.random::<f64>() < 0.85 {
            loop {
                let d = rng.random_range(0..cfg.n_days) as i64;
                if mobility_is_weekend_day(d) {
                    break d;
                }
            }
        } else {
            rng.random_range(0..cfg.n_days) as i64
        };
        let second = if rng.random::<f64>() < cfg.uniform_time_fraction {
            // Off-peak posting: time carries no activity signal.
            rng.random_range(0.0..SECONDS_PER_DAY as f64)
        } else {
            wrapped_normal(
                &mut rng,
                loc_act.peak_second,
                loc_act.second_sd,
                SECONDS_PER_DAY as f64,
            )
        };
        let timestamp = EPOCH_BASE + day * SECONDS_PER_DAY + second as i64;
        // Text drawn from the text activity; venue tokens come from the
        // *location* cluster when text and location activities agree,
        // otherwise from the text activity's anchor cluster.
        let text_cluster = if text_act_idx == act_idx { cluster } else { 0 };

        let n_keywords = if rng.random::<f64>() < cfg.sparse_record_fraction {
            rng.random_range(1..=2)
        } else {
            poisson(&mut rng, cfg.keywords_per_record).max(1)
        };
        let mut keywords = Vec::with_capacity(n_keywords as usize);
        for _ in 0..n_keywords {
            let kw = sample_keyword(&world, &text_act, text_cluster, &cfg, &mut rng);
            keywords.push(kw);
        }
        for &kw in &keywords {
            world.vocab.bump(kw);
        }

        records.push(Record {
            id: RecordId::from(i),
            user: author,
            timestamp,
            location,
            keywords,
            mentions,
        });
        location_activity.push(act_idx);
        text_activity.push(text_act_idx);
    }

    let num_users = cfg.n_users as u32;
    let corpus = Corpus::new(cfg.name.clone(), records, world.vocab, num_users)
        .map_err(|e| e.to_string())?;
    Ok((
        corpus,
        GroundTruth {
            location_activity,
            text_activity,
        },
    ))
}

/// True when day index `d` (counted from [`EPOCH_BASE`]) is a weekend day.
fn mobility_is_weekend_day(d: i64) -> bool {
    crate::types::is_weekend(EPOCH_BASE + d * SECONDS_PER_DAY)
}

/// Draws one keyword for a record of `activity` at spatial `cluster`.
fn sample_keyword<R: Rng + ?Sized>(
    world: &World,
    activity: &Activity,
    cluster: usize,
    cfg: &SynthConfig,
    rng: &mut R,
) -> KeywordId {
    let u: f64 = rng.random();
    if u < cfg.venue_word_prob && !activity.venue_words[cluster].is_empty() {
        *activity.venue_words[cluster].choose(rng).expect("non-empty")
    } else if u < cfg.venue_word_prob + cfg.background_word_prob
        && !world.background_words.is_empty()
    {
        world.background_words[world.background_dist.sample(rng)]
    } else if u < cfg.venue_word_prob + cfg.background_word_prob + cfg.polysemous_word_prob
        && !activity.polysemous_words.is_empty()
    {
        *activity.polysemous_words.choose(rng).expect("non-empty")
    } else {
        *activity.theme_words.choose(rng).expect("themes have words")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::config::DatasetPreset;

    fn gen(preset: DatasetPreset, seed: u64) -> (Corpus, GroundTruth) {
        generate(preset.small_config(seed)).unwrap()
    }

    #[test]
    fn generates_requested_record_count() {
        let (c, gt) = gen(DatasetPreset::Utgeo2011, 1);
        assert_eq!(c.len(), 3000);
        assert_eq!(gt.location_activity.len(), 3000);
        assert_eq!(gt.text_activity.len(), 3000);
    }

    #[test]
    fn mention_rate_matches_config() {
        let (c, _) = gen(DatasetPreset::Utgeo2011, 2);
        let rate = c.stats().mention_rate();
        assert!((rate - 0.168).abs() < 0.03, "rate {rate}");
        let (c, _) = gen(DatasetPreset::Tweet, 2);
        assert_eq!(c.stats().mention_records, 0);
    }

    #[test]
    fn crossover_records_exist_only_with_mentions() {
        let (_, gt) = gen(DatasetPreset::Utgeo2011, 3);
        assert!(!gt.crossover_records().is_empty());
        let (_, gt) = gen(DatasetPreset::Tweet, 3);
        assert!(gt.crossover_records().is_empty());
    }

    #[test]
    fn crossover_records_mention_someone() {
        let (c, gt) = gen(DatasetPreset::Utgeo2011, 4);
        for rid in gt.crossover_records() {
            assert!(c.record(rid).has_mentions());
        }
    }

    #[test]
    fn every_record_has_at_least_one_keyword() {
        let (c, _) = gen(DatasetPreset::Foursquare, 5);
        for r in c.records() {
            assert!(!r.keywords.is_empty());
        }
    }

    #[test]
    fn locations_cluster_near_activity_centers() {
        let cfg = DatasetPreset::Tweet.small_config(6);
        let world = World::build(cfg.clone()).unwrap();
        let (c, gt) = generate(cfg).unwrap();
        let mut within = 0usize;
        for (r, &act) in c.records().iter().zip(&gt.location_activity) {
            // 4 sigma from the *closest* cluster covers all draws.
            let a = &world.activities[act];
            let d = a
                .clusters
                .iter()
                .map(|ctr| r.location.dist(ctr))
                .fold(f64::INFINITY, f64::min);
            if d < 4.0 * a.spatial_sd {
                within += 1;
            }
        }
        let frac = within as f64 / c.len() as f64;
        assert!(frac > 0.98, "frac {frac}");
    }

    #[test]
    fn timestamps_cluster_near_activity_peak() {
        let mut cfg = DatasetPreset::Foursquare.small_config(7);
        // Isolate the peaked component for this check.
        cfg.uniform_time_fraction = 0.0;
        let world = World::build(cfg.clone()).unwrap();
        let (c, gt) = generate(cfg).unwrap();
        let period = SECONDS_PER_DAY as f64;
        let mut within = 0usize;
        for (r, &act) in c.records().iter().zip(&gt.location_activity) {
            let a = &world.activities[act];
            let diff = (r.second_of_day() - a.peak_second).abs();
            let circ = diff.min(period - diff);
            if circ < 3.5 * a.second_sd {
                within += 1;
            }
        }
        let frac = within as f64 / c.len() as f64;
        assert!(frac > 0.98, "frac {frac}");
    }

    #[test]
    fn uniform_time_fraction_flattens_time_of_day() {
        let mut cfg = DatasetPreset::Foursquare.small_config(7);
        cfg.uniform_time_fraction = 1.0;
        let (c, _) = generate(cfg).unwrap();
        // With fully uniform times, each 6-hour quadrant holds ~25%.
        let mut quadrants = [0usize; 4];
        for r in c.records() {
            quadrants[(r.second_of_day() / 21_600.0) as usize % 4] += 1;
        }
        for q in quadrants {
            let f = q as f64 / c.len() as f64;
            assert!((f - 0.25).abs() < 0.05, "quadrant fraction {f}");
        }
    }

    #[test]
    fn weekend_skew_concentrates_records_on_weekends() {
        let mut cfg = DatasetPreset::Tweet.small_config(14);
        cfg.weekend_activity_fraction = 0.5;
        let world = World::build(cfg.clone()).unwrap();
        let (c, gt) = generate(cfg).unwrap();
        let mut weekend_hits = [0usize; 2]; // [skewed, unskewed]
        let mut totals = [0usize; 2];
        for (r, &act) in c.records().iter().zip(&gt.location_activity) {
            let idx = usize::from(!world.activities[act].weekend_skewed);
            totals[idx] += 1;
            if crate::types::is_weekend(r.timestamp) {
                weekend_hits[idx] += 1;
            }
        }
        let skewed_rate = weekend_hits[0] as f64 / totals[0].max(1) as f64;
        let plain_rate = weekend_hits[1] as f64 / totals[1].max(1) as f64;
        assert!(skewed_rate > 0.7, "skewed weekend rate {skewed_rate}");
        assert!(plain_rate < 0.45, "plain weekend rate {plain_rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = gen(DatasetPreset::Utgeo2011, 8);
        let (b, _) = gen(DatasetPreset::Utgeo2011, 8);
        assert_eq!(a.records()[100], b.records()[100]);
        let (c, _) = gen(DatasetPreset::Utgeo2011, 9);
        assert_ne!(a.records()[100], c.records()[100]);
    }

    #[test]
    fn vocab_counts_reflect_generated_tokens() {
        let (c, _) = gen(DatasetPreset::Tweet, 10);
        // Counting manually must match the vocabulary's tracked counts
        // minus the single interning bump each word got at world build.
        let mut manual = vec![0u64; c.vocab().len()];
        for r in c.records() {
            for &k in &r.keywords {
                manual[k.idx()] += 1;
            }
        }
        let mut checked = 0;
        for (id, _, count) in c.vocab().iter() {
            assert_eq!(count, manual[id.idx()] + 1, "keyword {id}");
            checked += 1;
        }
        assert_eq!(checked, c.vocab().len());
    }

    #[test]
    fn full_preset_configs_generate() {
        // Smoke-test the full-size presets cheaply by shrinking records
        // only (keeping user/community structure at production scale).
        for preset in DatasetPreset::ALL {
            let mut cfg = preset.config(11);
            cfg.n_records = 500;
            let (c, _) = generate(cfg).unwrap();
            assert_eq!(c.len(), 500);
        }
    }
}
