//! Synthetic geo-tagged social-media generator.
//!
//! The paper evaluates on UTGEO2011, TWEET (Los Angeles tweets), and 4SQ
//! (New York Foursquare check-ins). None of these can be redistributed, so
//! this module generates corpora from an explicit latent-variable world
//! model whose structure matches everything ACTOR exploits:
//!
//! * **Activities** — each latent activity owns a spatial Gaussian (a
//!   future hotspot), a wrapped-Gaussian time-of-day peak, and a keyword
//!   multinomial built from a themed word list plus venue tokens plus
//!   polysemous words shared across activities (the word-sense-
//!   disambiguation challenge of §1).
//! * **Communities** — users belong to communities with a sparse
//!   preference over activities; mentions happen inside communities, so the
//!   user interaction graph carries activity information *across* records
//!   (the inter-record high-order signal of Fig. 1).
//! * **Crossover mentions** — a fraction of mention records take their
//!   *text* from the mentioned user's favourite activity while keeping the
//!   author's location/time, reproducing the exact information flow
//!   `text → user → user → (location, time)` the paper motivates.
//!
//! Three presets mirror the datasets of Table 1 at laptop scale.

mod config;
mod generate;
mod themes;
mod world;

pub use config::{DatasetPreset, SynthConfig};
pub use generate::{generate, GroundTruth, EPOCH_BASE};
pub use themes::{Theme, POLYSEMOUS, THEMES};
pub use world::{Activity, Community, UserProfile, World};
