//! Generator configuration and dataset presets.

use serde::{Deserialize, Serialize};

/// Bounding box and scale parameters of the synthetic world plus all
/// behavioural knobs of the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Corpus name (also used in reports).
    pub name: String,
    /// Number of records to generate.
    pub n_records: usize,
    /// Number of users.
    pub n_users: usize,
    /// Number of user communities.
    pub n_communities: usize,
    /// Number of latent activities (≤ `THEMES.len()`).
    pub n_activities: usize,
    /// City bounding box: (min_lat, min_lon, max_lat, max_lon).
    pub bbox: (f64, f64, f64, f64),
    /// Spatial std-dev of each activity's Gaussian, in degrees.
    pub spatial_sd_deg: f64,
    /// Multiplier on each theme's hour std-dev (1.0 = as listed).
    pub hour_sd_scale: f64,
    /// Fraction of records whose time-of-day is uniform rather than
    /// activity-peaked (people post at arbitrary hours too; this is what
    /// keeps the paper's Time-prediction MRRs barely above random).
    pub uniform_time_fraction: f64,
    /// Fraction of activities that are weekend-skewed: their records fall
    /// on Saturday/Sunday with high probability, giving the corpus a
    /// weekly rhythm that `temporal_period = SECONDS_PER_WEEK` models can
    /// pick up. `0.0` (the presets' default) keeps the paper's purely
    /// daily structure.
    pub weekend_activity_fraction: f64,
    /// Spatial clusters ("chain branches") per activity; venue tokens are
    /// cluster-specific, see [`super::world::Activity`].
    pub clusters_per_activity: usize,
    /// Number of days the corpus spans.
    pub n_days: u32,
    /// Mean keywords per record (Poisson, clamped to ≥ 1).
    pub keywords_per_record: f64,
    /// Number of venue tokens per activity (4SQ-style check-in names).
    pub venues_per_activity: usize,
    /// Probability that a keyword draw is a venue token of the record's
    /// activity (tight text↔location coupling; high for check-in data).
    pub venue_word_prob: f64,
    /// Probability that a keyword draw is a background (non-topical) word.
    pub background_word_prob: f64,
    /// Probability that a keyword draw is a polysemous word attached to the
    /// record's activity.
    pub polysemous_word_prob: f64,
    /// Number of background filler words in the vocabulary.
    pub n_background_words: usize,
    /// Fraction of records that mention another user.
    pub mention_rate: f64,
    /// Among mention records, fraction whose *text* is drawn from the
    /// mentioned user's favourite activity (the Fig. 1 information flow).
    pub mention_crossover: f64,
    /// Fraction of records that are "sparse" (1–2 keywords only).
    pub sparse_record_fraction: f64,
    /// Number of activities each community prefers.
    pub activities_per_community: usize,
    /// Zipf exponent for user posting frequency.
    pub user_activity_zipf: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The three dataset presets of Table 1, at laptop scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// Mirrors UTGEO2011: global-ish Twitter with user mentions
    /// (16.8 % mention rate per §1 of the paper).
    Utgeo2011,
    /// Mirrors TWEET: LA tweets, no user-interaction data (§6.3).
    Tweet,
    /// Mirrors 4SQ: NY Foursquare check-ins — venue-heavy text, small
    /// vocabulary, no user-interaction data, highest MRRs in Table 2.
    Foursquare,
}

impl DatasetPreset {
    /// All presets in Table 1 order.
    pub const ALL: [DatasetPreset; 3] = [
        DatasetPreset::Utgeo2011,
        DatasetPreset::Tweet,
        DatasetPreset::Foursquare,
    ];

    /// The preset's corpus name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::Utgeo2011 => "synth-utgeo2011",
            DatasetPreset::Tweet => "synth-tweet",
            DatasetPreset::Foursquare => "synth-4sq",
        }
    }

    /// Builds the generator configuration for this preset.
    ///
    /// Scales are ~20–50× below the paper's corpora so the full Table 2
    /// sweep (8 methods × 3 datasets × 3 tasks) runs in minutes; every
    /// structural ratio (mention rate, vocabulary richness, venue
    /// coupling) follows the source dataset.
    pub fn config(self, seed: u64) -> SynthConfig {
        match self {
            DatasetPreset::Utgeo2011 => SynthConfig {
                name: self.name().to_string(),
                n_records: 30_000,
                n_users: 6_000,
                n_communities: 120,
                n_activities: 24,
                // A US-city-sized box (Austin-ish), standing in for the
                // geolocation-Twitter footprint.
                bbox: (30.10, -97.95, 30.50, -97.55),
                spatial_sd_deg: 0.012,
                hour_sd_scale: 1.6,
                uniform_time_fraction: 0.45,
                weekend_activity_fraction: 0.0,
                clusters_per_activity: 3,
                n_days: 90,
                keywords_per_record: 5.0,
                venues_per_activity: 8,
                venue_word_prob: 0.15,
                background_word_prob: 0.28,
                polysemous_word_prob: 0.08,
                n_background_words: 700,
                mention_rate: 0.168,
                mention_crossover: 0.5,
                sparse_record_fraction: 0.45,
                activities_per_community: 3,
                user_activity_zipf: 0.8,
                seed,
            },
            DatasetPreset::Tweet => SynthConfig {
                name: self.name().to_string(),
                n_records: 40_000,
                n_users: 8_000,
                n_communities: 150,
                n_activities: 24,
                // Los Angeles.
                bbox: (33.70, -118.45, 34.15, -118.10),
                spatial_sd_deg: 0.010,
                hour_sd_scale: 1.4,
                uniform_time_fraction: 0.45,
                weekend_activity_fraction: 0.0,
                clusters_per_activity: 3,
                n_days: 120,
                keywords_per_record: 5.5,
                venues_per_activity: 10,
                venue_word_prob: 0.16,
                background_word_prob: 0.24,
                polysemous_word_prob: 0.08,
                n_background_words: 800,
                mention_rate: 0.0,
                mention_crossover: 0.0,
                sparse_record_fraction: 0.35,
                activities_per_community: 3,
                user_activity_zipf: 0.8,
                seed,
            },
            DatasetPreset::Foursquare => SynthConfig {
                name: self.name().to_string(),
                n_records: 20_000,
                n_users: 4_000,
                n_communities: 80,
                n_activities: 20,
                // New York.
                bbox: (40.60, -74.05, 40.85, -73.85),
                spatial_sd_deg: 0.006,
                hour_sd_scale: 1.2,
                uniform_time_fraction: 0.40,
                weekend_activity_fraction: 0.0,
                clusters_per_activity: 4,
                n_days: 240,
                keywords_per_record: 4.0,
                venues_per_activity: 12,
                // Check-ins name their venue: text pins down the place.
                venue_word_prob: 0.55,
                background_word_prob: 0.05,
                polysemous_word_prob: 0.04,
                n_background_words: 200,
                mention_rate: 0.0,
                mention_crossover: 0.0,
                sparse_record_fraction: 0.15,
                activities_per_community: 2,
                user_activity_zipf: 0.8,
                seed,
            },
        }
    }

    /// A miniature configuration of this preset for tests and examples
    /// (seconds, not minutes).
    pub fn small_config(self, seed: u64) -> SynthConfig {
        let mut c = self.config(seed);
        c.n_records = 3_000;
        c.n_users = 600;
        c.n_communities = 24;
        c.n_background_words = 150;
        c
    }
}

impl SynthConfig {
    /// Validates internal consistency; the generator asserts this.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_records == 0 || self.n_users == 0 {
            return Err("records and users must be positive".into());
        }
        if self.n_communities == 0 || self.n_communities > self.n_users {
            return Err("communities must be in 1..=users".into());
        }
        if self.n_activities == 0 || self.n_activities > super::themes::THEMES.len() {
            return Err(format!(
                "activities must be in 1..={}",
                super::themes::THEMES.len()
            ));
        }
        let (lat0, lon0, lat1, lon1) = self.bbox;
        if lat0 >= lat1 || lon0 >= lon1 {
            return Err("bbox must be (min_lat, min_lon, max_lat, max_lon)".into());
        }
        if !(0.0..=1.0).contains(&self.weekend_activity_fraction) {
            return Err(format!(
                "weekend_activity_fraction must be a probability, got {}",
                self.weekend_activity_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.uniform_time_fraction) {
            return Err(format!(
                "uniform_time_fraction must be a probability, got {}",
                self.uniform_time_fraction
            ));
        }
        if self.clusters_per_activity == 0 {
            return Err("clusters_per_activity must be positive".into());
        }
        for (name, p) in [
            ("venue_word_prob", self.venue_word_prob),
            ("background_word_prob", self.background_word_prob),
            ("polysemous_word_prob", self.polysemous_word_prob),
            ("mention_rate", self.mention_rate),
            ("mention_crossover", self.mention_crossover),
            ("sparse_record_fraction", self.sparse_record_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.venue_word_prob + self.background_word_prob + self.polysemous_word_prob >= 1.0 {
            return Err("word-source probabilities must leave room for theme words".into());
        }
        if self.activities_per_community == 0 || self.activities_per_community > self.n_activities
        {
            return Err("activities_per_community must be in 1..=n_activities".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for p in DatasetPreset::ALL {
            p.config(1).validate().unwrap();
            p.small_config(1).validate().unwrap();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn utgeo_has_paper_mention_rate() {
        let c = DatasetPreset::Utgeo2011.config(0);
        assert!((c.mention_rate - 0.168).abs() < 1e-9);
        assert_eq!(DatasetPreset::Tweet.config(0).mention_rate, 0.0);
        assert_eq!(DatasetPreset::Foursquare.config(0).mention_rate, 0.0);
    }

    #[test]
    fn foursquare_is_venue_heavy() {
        let f = DatasetPreset::Foursquare.config(0);
        let t = DatasetPreset::Tweet.config(0);
        assert!(f.venue_word_prob > 2.0 * t.venue_word_prob);
        assert!(f.n_background_words < t.n_background_words);
    }

    #[test]
    fn validate_catches_errors() {
        let mut c = DatasetPreset::Tweet.small_config(0);
        c.n_records = 0;
        assert!(c.validate().is_err());

        let mut c = DatasetPreset::Tweet.small_config(0);
        c.bbox = (1.0, 0.0, 0.0, 1.0);
        assert!(c.validate().is_err());

        let mut c = DatasetPreset::Tweet.small_config(0);
        c.mention_rate = 1.5;
        assert!(c.validate().is_err());

        let mut c = DatasetPreset::Tweet.small_config(0);
        c.venue_word_prob = 0.5;
        c.background_word_prob = 0.5;
        assert!(c.validate().is_err());

        let mut c = DatasetPreset::Tweet.small_config(0);
        c.n_activities = 10_000;
        assert!(c.validate().is_err());

        let mut c = DatasetPreset::Tweet.small_config(0);
        c.activities_per_community = 0;
        assert!(c.validate().is_err());

        let mut c = DatasetPreset::Tweet.small_config(0);
        c.n_communities = c.n_users + 1;
        assert!(c.validate().is_err());
    }
}
