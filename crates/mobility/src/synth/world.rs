//! The latent world model the generator samples from.

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::rng::{zipf_weights, Categorical};
use crate::types::{GeoPoint, KeywordId, UserId};
use crate::vocab::Vocabulary;

use super::config::SynthConfig;
use super::themes::{POLYSEMOUS, THEMES};

/// One latent activity: one or more spatial clusters ("chain venues"), a
/// temporal peak, and a keyword distribution, instantiated from a
/// [`super::Theme`].
///
/// The multi-cluster structure is what separates memorizing models from
/// smoothing models downstream: venue tokens are *cluster-specific*, so a
/// graph embedding can tie each venue word to its exact spatial hotspot
/// through `LW` edges, while a K-topic model must describe all clusters of
/// an activity with shared topics and loses the venue→place detail (the
/// realistic failure mode that puts LGTA/MGTM at the bottom of Table 2).
#[derive(Debug, Clone)]
pub struct Activity {
    /// Index within the world.
    pub id: usize,
    /// The source theme's name.
    pub theme_name: &'static str,
    /// Spatial cluster centers; `clusters[0]` is the theme anchor.
    pub clusters: Vec<GeoPoint>,
    /// Spatial std-dev in degrees (per cluster).
    pub spatial_sd: f64,
    /// Time-of-day peak in seconds.
    pub peak_second: f64,
    /// Time-of-day std-dev in seconds.
    pub second_sd: f64,
    /// True when this activity concentrates on Saturday/Sunday.
    pub weekend_skewed: bool,
    /// Theme keywords (shared by all clusters).
    pub theme_words: Vec<KeywordId>,
    /// Venue tokens per cluster (`venue_words[c]` names cluster `c`'s
    /// venues only).
    pub venue_words: Vec<Vec<KeywordId>>,
    /// Polysemous words this activity shares with others.
    pub polysemous_words: Vec<KeywordId>,
}

impl Activity {
    /// The activity's primary (anchor) cluster center.
    pub fn center(&self) -> GeoPoint {
        self.clusters[0]
    }
}

/// A user community: a clique-ish social group with a sparse activity
/// preference.
#[derive(Debug, Clone)]
pub struct Community {
    /// Preferred activity indices (length `activities_per_community`).
    pub activities: Vec<usize>,
    /// Member users.
    pub members: Vec<UserId>,
    /// Weights over `activities` (first listed is most preferred).
    pub activity_dist: Categorical,
}

/// Per-user latent state.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// The user's community index.
    pub community: usize,
    /// The user's favourite activity (one of the community's).
    pub favorite_activity: usize,
}

/// The fully instantiated world: vocabulary, activities, communities,
/// users, and the samplers the generator draws from.
pub struct World {
    /// The generator configuration this world was built from.
    pub config: SynthConfig,
    /// The interned vocabulary (theme + polysemous + venue + background).
    pub vocab: Vocabulary,
    /// Latent activities.
    pub activities: Vec<Activity>,
    /// User communities.
    pub communities: Vec<Community>,
    /// Per-user profiles (index = user id).
    pub users: Vec<UserProfile>,
    /// Background filler words with Zipf-distributed popularity.
    pub background_words: Vec<KeywordId>,
    /// Sampler over `background_words`.
    pub background_dist: Categorical,
    /// Sampler of record authors (Zipf posting frequency).
    pub user_post_dist: Categorical,
}

impl World {
    /// Instantiates the world from `config` (deterministic per seed).
    pub fn build(config: SynthConfig) -> Result<Self, String> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_0001);
        let mut vocab = Vocabulary::new();
        let (lat0, lon0, lat1, lon1) = config.bbox;
        let lat_span = lat1 - lat0;
        let lon_span = lon1 - lon0;

        // Activities from the first n_activities themes.
        let mut activities = Vec::with_capacity(config.n_activities);
        for (id, theme) in THEMES.iter().take(config.n_activities).enumerate() {
            let theme_words: Vec<KeywordId> = theme
                .words
                .iter()
                .map(|w| vocab.intern(w).expect("theme words are not stop words"))
                .collect();
            // Cluster 0 sits at the theme anchor; the rest are placed
            // uniformly inside the city box ("chain branches").
            let anchor = GeoPoint::new(
                lat0 + theme.anchor.1 * lat_span,
                lon0 + theme.anchor.0 * lon_span,
            );
            let mut clusters = vec![anchor];
            for _ in 1..config.clusters_per_activity.max(1) {
                clusters.push(GeoPoint::new(
                    lat0 + rng.random_range(0.08..0.92) * lat_span,
                    lon0 + rng.random_range(0.08..0.92) * lon_span,
                ));
            }
            let venue_words: Vec<Vec<KeywordId>> = (0..clusters.len())
                .map(|c| {
                    (0..config.venues_per_activity)
                        .map(|i| {
                            vocab
                                .intern(&format!("{}_venue_{c}_{i:02}", theme.name))
                                .expect("venue tokens are not stop words")
                        })
                        .collect()
                })
                .collect();
            // The first ⌈fraction·n⌉ activities are weekend-skewed; the
            // fixed assignment keeps generation deterministic per seed.
            let weekend_skewed =
                (id as f64) < config.weekend_activity_fraction * config.n_activities as f64;
            activities.push(Activity {
                id,
                theme_name: theme.name,
                clusters,
                spatial_sd: config.spatial_sd_deg,
                peak_second: theme.peak_hour * 3600.0,
                second_sd: theme.hour_sd * 3600.0 * config.hour_sd_scale,
                weekend_skewed,
                theme_words,
                venue_words,
                polysemous_words: Vec::new(),
            });
        }

        // Attach polysemous words to every activity whose theme they list.
        for (word, theme_names) in POLYSEMOUS {
            let id = vocab.intern(word).expect("polysemous words are content words");
            for act in activities.iter_mut() {
                if theme_names.contains(&act.theme_name) {
                    act.polysemous_words.push(id);
                }
            }
        }

        // Background chatter vocabulary with Zipf popularity.
        let background_words: Vec<KeywordId> = (0..config.n_background_words)
            .map(|i| {
                vocab
                    .intern(&format!("chatter_{i:04}"))
                    .expect("chatter tokens are not stop words")
            })
            .collect();
        let background_dist = Categorical::new(&zipf_weights(
            config.n_background_words.max(1),
            1.1,
        ))
        .expect("zipf weights are positive");

        // Communities: round-robin user assignment after a shuffle, so
        // community sizes differ by at most one.
        let mut user_ids: Vec<UserId> = (0..config.n_users).map(UserId::from).collect();
        user_ids.shuffle(&mut rng);
        let mut communities: Vec<Community> = (0..config.n_communities)
            .map(|_| {
                // Sample this community's preferred activities without
                // replacement.
                let mut pool: Vec<usize> = (0..config.n_activities).collect();
                pool.shuffle(&mut rng);
                let acts: Vec<usize> =
                    pool.into_iter().take(config.activities_per_community).collect();
                // Geometric-ish preference: first activity dominates.
                let weights: Vec<f64> =
                    (0..acts.len()).map(|i| 0.55f64.powi(i as i32)).collect();
                Community {
                    activities: acts,
                    members: Vec::new(),
                    activity_dist: Categorical::new(&weights).expect("positive weights"),
                }
            })
            .collect();
        let mut users = vec![
            UserProfile {
                community: 0,
                favorite_activity: 0,
            };
            config.n_users
        ];
        for (i, uid) in user_ids.iter().enumerate() {
            let cidx = i % config.n_communities;
            communities[cidx].members.push(*uid);
            let comm = &communities[cidx];
            // A user's favourite is usually the community's top activity.
            let fav = comm.activities[comm.activity_dist.sample(&mut rng)];
            users[uid.idx()] = UserProfile {
                community: cidx,
                favorite_activity: fav,
            };
        }

        // Posting frequency: heavy-tailed, randomly assigned to users.
        let mut post_weights = zipf_weights(config.n_users, config.user_activity_zipf);
        post_weights.shuffle(&mut rng);
        let user_post_dist = Categorical::new(&post_weights).expect("positive weights");

        Ok(Self {
            config,
            vocab,
            activities,
            communities,
            users,
            background_words,
            background_dist,
            user_post_dist,
        })
    }

    /// Samples an activity for `user`: mostly the favourite, otherwise one
    /// of the community's preferred activities.
    pub fn sample_activity_for_user<R: Rng + ?Sized>(&self, user: UserId, rng: &mut R) -> usize {
        let profile = &self.users[user.idx()];
        if rng.random::<f64>() < 0.75 {
            profile.favorite_activity
        } else {
            let comm = &self.communities[profile.community];
            comm.activities[comm.activity_dist.sample(rng)]
        }
    }

    /// The activity with the cluster center closest to `p` (ground-truth
    /// helper for tests and case studies).
    pub fn nearest_activity(&self, p: GeoPoint) -> usize {
        let min_cluster_d2 = |a: &Activity| {
            a.clusters
                .iter()
                .map(|c| c.dist2(&p))
                .fold(f64::INFINITY, f64::min)
        };
        self.activities
            .iter()
            .min_by(|a, b| {
                min_cluster_d2(a)
                    .partial_cmp(&min_cluster_d2(b))
                    .expect("distances are finite")
            })
            .expect("at least one activity")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::config::DatasetPreset;

    fn world() -> World {
        World::build(DatasetPreset::Utgeo2011.small_config(7)).unwrap()
    }

    #[test]
    fn build_creates_requested_scales() {
        let w = world();
        assert_eq!(w.activities.len(), w.config.n_activities);
        assert_eq!(w.communities.len(), w.config.n_communities);
        assert_eq!(w.users.len(), w.config.n_users);
        assert_eq!(w.background_words.len(), w.config.n_background_words);
    }

    #[test]
    fn vocabulary_contains_all_word_classes() {
        let w = world();
        assert!(w.vocab.get("beach").is_some());
        assert!(w.vocab.get("beach_venue_0_00").is_some());
        assert!(w.vocab.get("chatter_0000").is_some());
        assert!(w.vocab.get("rock").is_some());
        // Stop words never enter the vocabulary.
        assert!(w.vocab.get("the").is_none());
    }

    #[test]
    fn polysemous_words_attach_to_multiple_activities() {
        let w = world();
        let rock = w.vocab.get("rock").unwrap();
        let n_with_rock = w
            .activities
            .iter()
            .filter(|a| a.polysemous_words.contains(&rock))
            .count();
        assert!(n_with_rock >= 2, "rock should span ≥2 activities");
    }

    #[test]
    fn activity_centers_are_inside_bbox() {
        let w = world();
        let (lat0, lon0, lat1, lon1) = w.config.bbox;
        for a in &w.activities {
            for c in &a.clusters {
                assert!((lat0..=lat1).contains(&c.lat), "{}", a.theme_name);
                assert!((lon0..=lon1).contains(&c.lon), "{}", a.theme_name);
            }
            assert_eq!(a.center(), a.clusters[0]);
            assert_eq!(a.clusters.len(), w.config.clusters_per_activity);
            assert_eq!(a.venue_words.len(), a.clusters.len());
        }
    }

    #[test]
    fn communities_partition_users() {
        let w = world();
        let total: usize = w.communities.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, w.config.n_users);
        // Balanced within one member.
        let sizes: Vec<usize> = w.communities.iter().map(|c| c.members.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
        // Each user's profile points back at a community that owns it.
        for (uid, prof) in w.users.iter().enumerate() {
            assert!(w.communities[prof.community]
                .members
                .contains(&UserId::from(uid)));
        }
    }

    #[test]
    fn favorite_activity_is_a_community_activity() {
        let w = world();
        for prof in &w.users {
            assert!(w.communities[prof.community]
                .activities
                .contains(&prof.favorite_activity));
        }
    }

    #[test]
    fn user_activity_sampling_prefers_favorite() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(3);
        let user = UserId(0);
        let fav = w.users[0].favorite_activity;
        let n = 2000;
        let hits = (0..n)
            .filter(|_| w.sample_activity_for_user(user, &mut rng) == fav)
            .count();
        assert!(hits as f64 / n as f64 > 0.7, "hits {hits}");
    }

    #[test]
    fn nearest_activity_recovers_centers() {
        let w = world();
        for a in &w.activities {
            // The anchor cluster of each activity maps back to it unless
            // another activity planted a random branch closer; the anchor
            // itself is always a valid nearest candidate.
            let found = w.nearest_activity(a.center());
            let d_self: f64 = a
                .clusters
                .iter()
                .map(|c| c.dist2(&a.center()))
                .fold(f64::INFINITY, f64::min);
            let d_found: f64 = w.activities[found]
                .clusters
                .iter()
                .map(|c| c.dist2(&a.center()))
                .fold(f64::INFINITY, f64::min);
            assert!(d_found <= d_self);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = World::build(DatasetPreset::Tweet.small_config(9)).unwrap();
        let b = World::build(DatasetPreset::Tweet.small_config(9)).unwrap();
        assert_eq!(a.users[5].favorite_activity, b.users[5].favorite_activity);
        assert_eq!(a.communities[3].activities, b.communities[3].activities);
    }
}
