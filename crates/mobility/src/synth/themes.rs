//! Hand-curated activity themes.
//!
//! Each theme is a named urban activity with a characteristic word list, a
//! time-of-day peak, and a rough venue anchor inside the Los Angeles
//! bounding box used by the TWEET dataset (the presets translate anchors
//! into other cities by shifting the bounding box). Themes make the
//! qualitative case studies (Figs. 4–11) legible: querying the "port"
//! hotspot really does return dock/ship/berth vocabulary.

/// A named activity template.
#[derive(Debug, Clone, Copy)]
pub struct Theme {
    /// Short name, also used to derive venue token names.
    pub name: &'static str,
    /// Characteristic keywords.
    pub words: &'static [&'static str],
    /// Peak hour of day (0.0–24.0).
    pub peak_hour: f64,
    /// Std-dev of the time-of-day distribution, in hours.
    pub hour_sd: f64,
    /// Venue anchor offset inside the unit city square `[0,1]²`
    /// (mapped to the preset's bounding box at world-build time).
    pub anchor: (f64, f64),
}

/// The theme catalogue. Presets draw the first `n_activities` entries.
pub const THEMES: &[Theme] = &[
    Theme { name: "beach", words: &["beach", "surf", "sand", "waves", "sunset", "boardwalk", "swim", "tan", "volleyball", "pier"], peak_hour: 15.0, hour_sd: 3.0, anchor: (0.15, 0.10) },
    Theme { name: "nightlife", words: &["bar", "drinks", "cocktail", "dj", "dance", "club", "neon", "karaoke", "shots", "bouncer"], peak_hour: 23.0, hour_sd: 1.8, anchor: (0.55, 0.45) },
    Theme { name: "concert", words: &["concert", "band", "encore", "stage", "guitar", "crowd", "tour", "setlist", "amp", "vinyl"], peak_hour: 21.0, hour_sd: 1.5, anchor: (0.50, 0.52) },
    Theme { name: "stadium", words: &["game", "stadium", "score", "team", "fans", "playoffs", "homerun", "touchdown", "jersey", "season"], peak_hour: 19.5, hour_sd: 2.0, anchor: (0.60, 0.40) },
    Theme { name: "museum", words: &["museum", "exhibit", "gallery", "art", "sculpture", "curator", "painting", "installation", "modern", "wing"], peak_hour: 13.0, hour_sd: 2.5, anchor: (0.48, 0.60) },
    Theme { name: "airport", words: &["flight", "airport", "gate", "boarding", "layover", "terminal", "takeoff", "luggage", "delayed", "runway"], peak_hour: 9.0, hour_sd: 4.5, anchor: (0.30, 0.25) },
    Theme { name: "port", words: &["port", "dock", "ship", "berth", "departure", "passport", "cruise", "harbor", "cargo", "ferry"], peak_hour: 11.0, hour_sd: 3.5, anchor: (0.58, 0.05) },
    Theme { name: "campus", words: &["campus", "lecture", "library", "exam", "professor", "quad", "semester", "thesis", "dorm", "study"], peak_hour: 11.5, hour_sd: 3.0, anchor: (0.42, 0.68) },
    Theme { name: "foodie", words: &["brunch", "tacos", "ramen", "foodtruck", "dessert", "chef", "menu", "reservation", "spicy", "delicious"], peak_hour: 12.5, hour_sd: 2.2, anchor: (0.52, 0.48) },
    Theme { name: "hiking", words: &["trail", "hike", "summit", "canyon", "wildflowers", "switchback", "vista", "creek", "ridge", "sunrise"], peak_hour: 8.0, hour_sd: 2.0, anchor: (0.70, 0.80) },
    Theme { name: "shopping", words: &["mall", "sale", "boutique", "outlet", "fitting", "receipt", "designer", "discount", "haul", "window"], peak_hour: 15.5, hour_sd: 2.5, anchor: (0.62, 0.55) },
    Theme { name: "cinema", words: &["movie", "screening", "premiere", "trailer", "popcorn", "matinee", "sequel", "director", "theatre", "imax"], peak_hour: 20.0, hour_sd: 2.0, anchor: (0.45, 0.50) },
    Theme { name: "coffee", words: &["coffee", "espresso", "latte", "roast", "barista", "pastry", "brew", "mug", "caffeine", "beans"], peak_hour: 8.5, hour_sd: 1.5, anchor: (0.50, 0.57) },
    Theme { name: "gym", words: &["gym", "workout", "reps", "cardio", "deadlift", "trainer", "sweat", "protein", "treadmill", "gains"], peak_hour: 18.0, hour_sd: 2.5, anchor: (0.57, 0.50) },
    Theme { name: "techmeetup", words: &["startup", "demo", "hackathon", "keynote", "founders", "pitchdeck", "api", "beta", "venture", "whiteboard"], peak_hour: 18.5, hour_sd: 1.5, anchor: (0.35, 0.42) },
    Theme { name: "market", words: &["farmers", "market", "organic", "produce", "stall", "honey", "vendors", "samples", "flowers", "heirloom"], peak_hour: 10.0, hour_sd: 1.5, anchor: (0.47, 0.63) },
    Theme { name: "themepark", words: &["rollercoaster", "rides", "parade", "ticket", "mascot", "fireworks", "queue", "funnel", "carousel", "fastpass"], peak_hour: 14.0, hour_sd: 3.0, anchor: (0.85, 0.35) },
    Theme { name: "marina", words: &["sail", "marina", "yacht", "regatta", "anchor", "tide", "knots", "deckhand", "mast", "buoy"], peak_hour: 13.5, hour_sd: 2.5, anchor: (0.25, 0.15) },
    Theme { name: "downtown", words: &["skyline", "rooftop", "loft", "gallerywalk", "foodhall", "metro", "plaza", "mural", "highrise", "happyhour"], peak_hour: 17.5, hour_sd: 3.0, anchor: (0.55, 0.47) },
    Theme { name: "zoo", words: &["zoo", "giraffe", "penguins", "habitat", "keeper", "feeding", "safari", "otters", "aviary", "cubs"], peak_hour: 12.0, hour_sd: 2.0, anchor: (0.58, 0.65) },
    Theme { name: "spa", words: &["spa", "massage", "sauna", "facial", "relax", "aromatherapy", "wellness", "robe", "steam", "retreat"], peak_hour: 14.5, hour_sd: 2.5, anchor: (0.40, 0.55) },
    Theme { name: "bookstore", words: &["bookstore", "novel", "author", "signing", "paperback", "shelves", "poetry", "chapter", "indie", "bookmark"], peak_hour: 16.0, hour_sd: 2.5, anchor: (0.49, 0.59) },
    Theme { name: "racetrack", words: &["derby", "horses", "racetrack", "jockey", "furlong", "paddock", "odds", "photofinish", "stables", "turf"], peak_hour: 15.0, hour_sd: 1.5, anchor: (0.75, 0.55) },
    Theme { name: "observatory", words: &["telescope", "stars", "planetarium", "nebula", "astronomy", "eclipse", "orbit", "dome", "stargazing", "comet"], peak_hour: 21.5, hour_sd: 1.5, anchor: (0.60, 0.70) },
    Theme { name: "skatepark", words: &["skate", "ollie", "halfpipe", "grind", "kickflip", "ramp", "longboard", "bowl", "trucks", "griptape"], peak_hour: 16.5, hour_sd: 2.0, anchor: (0.33, 0.30) },
    Theme { name: "courthouse", words: &["jury", "verdict", "hearing", "courtroom", "attorney", "docket", "testimony", "gavel", "appeal", "bailiff"], peak_hour: 10.5, hour_sd: 2.0, anchor: (0.53, 0.49) },
    Theme { name: "aquarium", words: &["aquarium", "jellyfish", "sharks", "tanks", "seahorse", "stingray", "kelp", "touchpool", "octopus", "eel"], peak_hour: 13.5, hour_sd: 2.0, anchor: (0.20, 0.12) },
    Theme { name: "vineyard", words: &["vineyard", "tasting", "sommelier", "merlot", "harvest", "barrel", "vintage", "cellar", "grapes", "pairing"], peak_hour: 15.0, hour_sd: 2.0, anchor: (0.80, 0.75) },
    Theme { name: "arcade", words: &["arcade", "pinball", "joystick", "highscore", "tokens", "cabinet", "retro", "skeeball", "claw", "multiplayer"], peak_hour: 19.0, hour_sd: 2.5, anchor: (0.44, 0.41) },
    Theme { name: "karting", words: &["karting", "laps", "helmet", "chicane", "apex", "pitlane", "overtake", "grid", "pole", "throttle"], peak_hour: 17.0, hour_sd: 2.0, anchor: (0.70, 0.28) },
    Theme { name: "botanical", words: &["garden", "orchid", "succulent", "greenhouse", "bonsai", "fern", "arboretum", "bloom", "pollinator", "topiary"], peak_hour: 11.0, hour_sd: 2.5, anchor: (0.46, 0.72) },
    Theme { name: "poetryslam", words: &["poets", "slam", "openmic", "verse", "stanza", "spokenword", "snaps", "headliner", "freestyle", "lyric"], peak_hour: 20.5, hour_sd: 1.2, anchor: (0.51, 0.44) },
];

/// Polysemous words appearing in the distributions of *several* activities.
///
/// Each entry lists the word and the theme names it attaches to. These
/// reproduce the word-sense-disambiguation challenge of §1 ("ape" as
/// imitate vs. the movie): the word alone is ambiguous; its record context
/// resolves it, which is what the intra-record bag-of-words structure is
/// for.
pub const POLYSEMOUS: &[(&str, &[&str])] = &[
    ("rock", &["concert", "hiking"]),
    ("wave", &["beach", "concert"]),
    ("pitch", &["stadium", "techmeetup"]),
    ("screen", &["cinema", "techmeetup"]),
    ("java", &["coffee", "techmeetup"]),
    ("deck", &["port", "marina", "techmeetup"]),
    ("court", &["stadium", "shopping"]),
    ("track", &["gym", "racetrack", "concert"]),
    ("shot", &["nightlife", "cinema", "stadium"]),
    ("bean", &["coffee", "market"]),
    ("lift", &["gym", "hiking"]),
    ("star", &["cinema", "observatory"]),
    ("board", &["beach", "airport", "techmeetup"]),
    ("pool", &["spa", "nightlife"]),
    ("spring", &["hiking", "spa"]),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn theme_names_are_unique() {
        let names: HashSet<_> = THEMES.iter().map(|t| t.name).collect();
        assert_eq!(names.len(), THEMES.len());
    }

    #[test]
    fn theme_words_do_not_repeat_across_themes() {
        let mut seen = HashSet::new();
        for t in THEMES {
            for w in t.words {
                assert!(seen.insert(*w), "{w} appears in two themes");
            }
        }
    }

    #[test]
    fn theme_parameters_are_sane() {
        for t in THEMES {
            assert!((0.0..24.0).contains(&t.peak_hour), "{}", t.name);
            assert!(t.hour_sd > 0.0);
            assert!((0.0..=1.0).contains(&t.anchor.0));
            assert!((0.0..=1.0).contains(&t.anchor.1));
            assert!(t.words.len() >= 8, "{} too few words", t.name);
        }
    }

    #[test]
    fn polysemous_words_reference_real_themes() {
        let names: HashSet<_> = THEMES.iter().map(|t| t.name).collect();
        for (w, themes) in POLYSEMOUS {
            assert!(themes.len() >= 2, "{w} must span at least two themes");
            for th in *themes {
                assert!(names.contains(th), "{w} references unknown theme {th}");
            }
        }
    }

    #[test]
    fn polysemous_words_are_not_theme_words() {
        for (w, _) in POLYSEMOUS {
            for t in THEMES {
                assert!(!t.words.contains(w), "{w} duplicates a theme word");
            }
        }
    }

    #[test]
    fn catalogue_is_large_enough_for_presets() {
        assert!(THEMES.len() >= 24);
    }
}
