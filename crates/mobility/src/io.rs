//! Importing real mobile data.
//!
//! The experiments run on synthetic corpora, but the library is meant to
//! be pointed at real geo-tagged exports too. This module ingests the
//! lowest common denominator — line-delimited records with a timestamp,
//! a latitude/longitude pair, free text, and optional user/mention
//! fields — building the vocabulary (tokenization + stop-word removal)
//! and user table on the fly.
//!
//! Two formats:
//!
//! * **TSV** (`parse_tsv`): `user <TAB> timestamp <TAB> lat <TAB> lon
//!   <TAB> text`, the layout of the UTGEO2011-style dumps. Mentions are
//!   recovered from `@handle` tokens in the text.
//! * **Builder** (`CorpusBuilder`): push records programmatically from any
//!   source (database rows, JSON readers, …).

use std::collections::HashMap;

use crate::corpus::Corpus;
use crate::error::{IngestError, MobilityError};
use crate::types::{GeoPoint, KeywordId, Record, RecordId, Timestamp, UserId};
use crate::vocab::Vocabulary;

/// Incrementally builds a corpus from raw records.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    name: String,
    vocab: Vocabulary,
    users: HashMap<String, UserId>,
    user_names: Vec<String>,
    records: Vec<Record>,
}

impl CorpusBuilder {
    /// Creates a named builder.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were pushed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Interns a user handle.
    pub fn user(&mut self, handle: &str) -> UserId {
        let handle = handle.trim().trim_start_matches('@').to_ascii_lowercase();
        if let Some(&id) = self.users.get(&handle) {
            return id;
        }
        let id = UserId::from(self.user_names.len());
        self.users.insert(handle.clone(), id);
        self.user_names.push(handle);
        id
    }

    /// Tokenizes free text: splits on non-alphanumeric boundaries (keeping
    /// `_`, `#`, `@` inside tokens), lower-cases, interns content words,
    /// and returns `@mention` handles separately.
    pub fn tokenize(&mut self, text: &str) -> (Vec<KeywordId>, Vec<UserId>) {
        let mut keywords = Vec::new();
        let mut mentions = Vec::new();
        for raw in text.split(|c: char| c.is_whitespace() || ",.;:!?\"()[]{}".contains(c)) {
            let token = raw.trim();
            if token.is_empty() {
                continue;
            }
            if let Some(handle) = token.strip_prefix('@') {
                if !handle.is_empty() {
                    mentions.push(self.user(handle));
                }
                continue;
            }
            let token = token.trim_start_matches('#');
            // Skip URLs and pure numbers.
            if token.starts_with("http") || token.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            if let Some(id) = self.vocab.intern(token) {
                keywords.push(id);
            }
        }
        (keywords, mentions)
    }

    /// Pushes one record with pre-tokenized content.
    pub fn push(
        &mut self,
        user: UserId,
        timestamp: Timestamp,
        location: GeoPoint,
        keywords: Vec<KeywordId>,
        mentions: Vec<UserId>,
    ) {
        self.records.push(Record {
            id: RecordId::from(self.records.len()),
            user,
            timestamp,
            location,
            keywords,
            mentions,
        });
    }

    /// Pushes one record with raw text (tokenized internally; `@mentions`
    /// found in the text become interaction edges).
    pub fn push_text(
        &mut self,
        user_handle: &str,
        timestamp: Timestamp,
        location: GeoPoint,
        text: &str,
    ) {
        let user = self.user(user_handle);
        let (keywords, mut mentions) = self.tokenize(text);
        mentions.retain(|&m| m != user);
        mentions.dedup();
        self.push(user, timestamp, location, keywords, mentions);
    }

    /// Finalizes the corpus.
    pub fn build(self) -> Result<Corpus, MobilityError> {
        Corpus::new(
            self.name,
            self.records,
            self.vocab,
            self.user_names.len() as u32,
        )
    }
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// One structurally valid TSV line, before tokenization.
struct RawLine<'a> {
    user: &'a str,
    timestamp: Timestamp,
    lat: f64,
    lon: f64,
    text: &'a str,
}

/// A structural fault in one TSV line, with enough detail to reproduce
/// the strict parser's exact error messages *and* classify the fault for
/// lenient quarantining.
enum LineFault {
    MissingField { what: &'static str },
    BadTimestamp { detail: String },
    BadLatitude { detail: String },
    BadLongitude { detail: String },
    NonFiniteCoordinate { lat: f64, lon: f64 },
    OutOfRangeCoordinate { lat: f64, lon: f64 },
}

impl LineFault {
    /// The strict parser's error, with its historical wording (non-finite
    /// coordinates have always been reported as out of range).
    fn into_parse_error(self, line: usize) -> ParseError {
        let reason = match self {
            Self::MissingField { what } => format!("missing {what} field"),
            Self::BadTimestamp { detail } => format!("bad timestamp: {detail}"),
            Self::BadLatitude { detail } => format!("bad latitude: {detail}"),
            Self::BadLongitude { detail } => format!("bad longitude: {detail}"),
            Self::NonFiniteCoordinate { lat, lon }
            | Self::OutOfRangeCoordinate { lat, lon } => {
                format!("coordinates out of range: ({lat}, {lon})")
            }
        };
        ParseError { line, reason }
    }

    fn skip_reason(&self) -> SkipReason {
        match self {
            Self::MissingField { .. } => SkipReason::MissingField,
            Self::BadTimestamp { .. } => SkipReason::BadTimestamp,
            Self::BadLatitude { .. } | Self::BadLongitude { .. } => SkipReason::BadCoordinate,
            Self::NonFiniteCoordinate { .. } => SkipReason::NonFiniteCoordinate,
            Self::OutOfRangeCoordinate { .. } => SkipReason::OutOfRangeCoordinate,
        }
    }
}

/// Parses one data line (the caller has already dropped blank/comment
/// lines). Field order and checks mirror the original strict parser.
fn parse_raw_line(line: &str) -> Result<RawLine<'_>, LineFault> {
    let mut parts = line.splitn(5, '\t');
    let mut next = |what: &'static str| {
        parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or(LineFault::MissingField { what })
    };
    let user = next("user")?;
    let timestamp: Timestamp =
        next("timestamp")?
            .parse()
            .map_err(|e: std::num::ParseIntError| LineFault::BadTimestamp {
                detail: e.to_string(),
            })?;
    let lat: f64 = next("lat")?
        .parse()
        .map_err(|e: std::num::ParseFloatError| LineFault::BadLatitude {
            detail: e.to_string(),
        })?;
    let lon: f64 = next("lon")?
        .parse()
        .map_err(|e: std::num::ParseFloatError| LineFault::BadLongitude {
            detail: e.to_string(),
        })?;
    if !lat.is_finite() || !lon.is_finite() {
        return Err(LineFault::NonFiniteCoordinate { lat, lon });
    }
    if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
        return Err(LineFault::OutOfRangeCoordinate { lat, lon });
    }
    let text = next("text")?;
    Ok(RawLine {
        user,
        timestamp,
        lat,
        lon,
        text,
    })
}

/// Parses `user <TAB> unix_timestamp <TAB> lat <TAB> lon <TAB> text`
/// lines into a corpus. Empty lines and `#`-prefixed comment lines are
/// skipped; any malformed line aborts with its line number.
///
/// For noisy real-world dumps where aborting on the first bad line is
/// unacceptable, use [`parse_tsv_lenient`].
pub fn parse_tsv(name: &str, input: &str) -> Result<Corpus, ParseError> {
    let mut builder = CorpusBuilder::new(name);
    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let raw = parse_raw_line(line).map_err(|f| f.into_parse_error(lineno))?;
        builder.push_text(
            raw.user,
            raw.timestamp,
            GeoPoint::new(raw.lat, raw.lon),
            raw.text,
        );
    }
    builder.build().map_err(|e| ParseError {
        line: 0,
        reason: e.to_string(),
    })
}

/// Why a line was skipped by [`parse_tsv_lenient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipReason {
    /// Fewer than five tab-separated fields (or an empty field).
    MissingField,
    /// The timestamp did not parse as an integer.
    BadTimestamp,
    /// Latitude or longitude did not parse as a number at all.
    BadCoordinate,
    /// A coordinate parsed but was NaN or infinite.
    NonFiniteCoordinate,
    /// A finite coordinate outside `[-90, 90] × [-180, 180]`.
    OutOfRangeCoordinate,
    /// Tokenization left no keywords (stop words, URLs, and bare numbers
    /// only) — the record would contribute nothing but a degenerate
    /// graph node.
    NoKeywords,
}

impl SkipReason {
    /// Every reason, in a stable order (indexes [`IngestReport::count`]).
    pub const ALL: [SkipReason; 6] = [
        SkipReason::MissingField,
        SkipReason::BadTimestamp,
        SkipReason::BadCoordinate,
        SkipReason::NonFiniteCoordinate,
        SkipReason::OutOfRangeCoordinate,
        SkipReason::NoKeywords,
    ];

    fn index(self) -> usize {
        Self::ALL.iter().position(|&r| r == self).expect("in ALL")
    }

    /// Stable snake_case label, used for the per-reason obs counters
    /// (`mobility.ingest.skipped.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            SkipReason::MissingField => "missing_field",
            SkipReason::BadTimestamp => "bad_timestamp",
            SkipReason::BadCoordinate => "bad_coordinate",
            SkipReason::NonFiniteCoordinate => "non_finite_coordinate",
            SkipReason::OutOfRangeCoordinate => "out_of_range_coordinate",
            SkipReason::NoKeywords => "no_keywords",
        }
    }
}

/// A skipped line retained for inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedLine {
    /// 1-based line number in the input.
    pub line: usize,
    /// Why it was skipped.
    pub reason: SkipReason,
    /// The raw line content.
    pub content: String,
}

/// Bounded sink for skipped lines: keeps the first `cap` offenders
/// verbatim so operators can inspect *what* was skipped without an
/// unbounded memory cost on pathological inputs.
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    entries: Vec<QuarantinedLine>,
    cap: usize,
    overflow: usize,
}

impl Quarantine {
    /// A quarantine retaining at most `cap` lines.
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Vec::new(),
            cap,
            overflow: 0,
        }
    }

    fn admit(&mut self, line: usize, reason: SkipReason, content: &str) {
        if self.entries.len() < self.cap {
            self.entries.push(QuarantinedLine {
                line,
                reason,
                content: content.to_string(),
            });
        } else {
            self.overflow += 1;
        }
    }

    /// The retained lines, in input order.
    pub fn entries(&self) -> &[QuarantinedLine] {
        &self.entries
    }

    /// Skipped lines that did not fit under the cap.
    pub fn overflow(&self) -> usize {
        self.overflow
    }
}

/// Error budget and retention limits for [`parse_tsv_lenient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LenientPolicy {
    /// Ceiling on `skipped / data lines seen`. Crossing it aborts the
    /// ingest: a systematically broken input should fail loudly, not be
    /// silently decimated.
    pub max_bad_fraction: f64,
    /// Data lines to ingest before the running-fraction check starts
    /// firing (a bad first line is 100% bad; small prefixes need slack).
    /// The final end-of-input check is unconditional.
    pub grace_lines: usize,
    /// Skipped lines retained verbatim in the [`Quarantine`].
    pub quarantine_cap: usize,
}

impl Default for LenientPolicy {
    /// 1% budget, 200 grace lines, 64 quarantined lines.
    fn default() -> Self {
        Self {
            max_bad_fraction: 0.01,
            grace_lines: 200,
            quarantine_cap: 64,
        }
    }
}

/// Outcome of a successful [`parse_tsv_lenient`] run.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Records that made it into the corpus.
    pub parsed: usize,
    /// Data lines skipped, by reason (index with [`IngestReport::count`]).
    counts: [usize; SkipReason::ALL.len()],
    /// The retained offenders.
    pub quarantine: Quarantine,
}

impl IngestReport {
    /// Lines skipped for `reason`.
    pub fn count(&self, reason: SkipReason) -> usize {
        self.counts[reason.index()]
    }

    /// Total lines skipped across all reasons.
    pub fn skipped(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Like [`parse_tsv`], but skips malformed lines instead of aborting —
/// up to the error budget of `policy`.
///
/// Every skipped line is counted by [`SkipReason`], mirrored to the
/// `mobility.ingest.*` obs counters, and retained (up to the quarantine
/// cap) for inspection. Beyond the strict parser's structural checks,
/// records whose text tokenizes to zero keywords are also skipped: they
/// cannot participate in the cross-modal objective.
///
/// Fails with [`IngestError::BudgetExceeded`] as soon as the running
/// bad-line fraction crosses `policy.max_bad_fraction` (after
/// `policy.grace_lines` data lines, and unconditionally at end of
/// input), or with [`IngestError::Corpus`] when no usable records
/// survive.
pub fn parse_tsv_lenient(
    name: &str,
    input: &str,
    policy: &LenientPolicy,
) -> Result<(Corpus, IngestReport), IngestError> {
    let mut builder = CorpusBuilder::new(name);
    let mut counts = [0usize; SkipReason::ALL.len()];
    let mut quarantine = Quarantine::new(policy.quarantine_cap);
    let mut parsed = 0usize;
    let mut seen = 0usize;
    let mut bad = 0usize;

    let skip = |counts: &mut [usize; SkipReason::ALL.len()],
                    quarantine: &mut Quarantine,
                    lineno: usize,
                    reason: SkipReason,
                    content: &str| {
        counts[reason.index()] += 1;
        quarantine.admit(lineno, reason, content);
    };

    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        seen += 1;
        match parse_raw_line(line) {
            Ok(raw) => {
                let user = builder.user(raw.user);
                let (keywords, mut mentions) = builder.tokenize(raw.text);
                if keywords.is_empty() {
                    bad += 1;
                    skip(
                        &mut counts,
                        &mut quarantine,
                        lineno,
                        SkipReason::NoKeywords,
                        line,
                    );
                } else {
                    mentions.retain(|&m| m != user);
                    mentions.dedup();
                    builder.push(
                        user,
                        raw.timestamp,
                        GeoPoint::new(raw.lat, raw.lon),
                        keywords,
                        mentions,
                    );
                    parsed += 1;
                }
            }
            Err(fault) => {
                bad += 1;
                skip(
                    &mut counts,
                    &mut quarantine,
                    lineno,
                    fault.skip_reason(),
                    line,
                );
            }
        }
        if seen > policy.grace_lines && bad as f64 > policy.max_bad_fraction * seen as f64 {
            return Err(IngestError::BudgetExceeded {
                bad,
                seen,
                max_fraction: policy.max_bad_fraction,
                line: lineno,
            });
        }
    }
    if bad as f64 > policy.max_bad_fraction * seen.max(1) as f64 {
        return Err(IngestError::BudgetExceeded {
            bad,
            seen,
            max_fraction: policy.max_bad_fraction,
            line: input.lines().count(),
        });
    }

    obs::counter("mobility.ingest.parsed").add(parsed as u64);
    for reason in SkipReason::ALL {
        let n = counts[reason.index()];
        if n > 0 {
            obs::counter(&format!("mobility.ingest.skipped.{}", reason.label())).add(n as u64);
        }
    }

    let corpus = builder.build()?;
    let report = IngestReport {
        parsed,
        counts,
        quarantine,
    };
    Ok((corpus, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# user\ttimestamp\tlat\tlon\ttext
alice\t1406851200\t34.05\t-118.24\tGreat surf at the beach today! @bob
bob\t1406854800\t34.06\t-118.25\tEspresso and a pastry, the usual #coffee

carol\t1406858400\t33.74\t-118.26\tShips at the harbor http://pic.example 42
";

    #[test]
    fn parses_valid_tsv() {
        let corpus = parse_tsv("demo", SAMPLE).unwrap();
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.num_users(), 3);

        let r0 = &corpus.records()[0];
        let words: Vec<&str> = r0.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
        assert!(words.contains(&"surf"));
        assert!(words.contains(&"beach"));
        // Stop words removed ("at", "the", "today").
        assert!(!words.contains(&"the"));
        assert!(!words.contains(&"today"));
        // Mention captured, not interned as a keyword.
        assert_eq!(r0.mentions.len(), 1);
        assert!(!words.contains(&"bob"));

        // Hashtag and URL handling.
        let r1 = &corpus.records()[1];
        let words1: Vec<&str> = r1.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
        assert!(words1.contains(&"coffee"));
        let r2 = &corpus.records()[2];
        let words2: Vec<&str> = r2.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
        assert!(words2.contains(&"harbor"));
        assert!(!words2.iter().any(|w| w.starts_with("http")));
        assert!(!words2.contains(&"42"));
    }

    #[test]
    fn mention_user_ids_are_shared_with_authors() {
        let corpus = parse_tsv("demo", SAMPLE).unwrap();
        let r0 = &corpus.records()[0];
        let r1 = &corpus.records()[1];
        // alice mentioned @bob; bob authored record 1.
        assert_eq!(r0.mentions[0], r1.user);
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let bad = "alice\t1406851200\t34.05\t-118.24\thi\nbob\tnot_a_ts\t1\t2\tx";
        let err = parse_tsv("demo", bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("timestamp"));

        let bad = "alice\t1406851200\t934.05\t-118.24\thi";
        let err = parse_tsv("demo", bad).unwrap_err();
        assert!(err.reason.contains("out of range"));

        let bad = "alice\t1406851200\t34.05";
        let err = parse_tsv("demo", bad).unwrap_err();
        assert!(err.reason.contains("missing"));
    }

    #[test]
    fn builder_self_mentions_are_dropped() {
        let mut b = CorpusBuilder::new("t");
        b.push_text("alice", 0, GeoPoint::new(1.0, 2.0), "talking to @alice myself");
        let corpus = b.build().unwrap();
        assert!(corpus.records()[0].mentions.is_empty());
    }

    #[test]
    fn builder_user_interning_is_case_insensitive() {
        let mut b = CorpusBuilder::new("t");
        let a = b.user("Alice");
        let b2 = b.user("@alice");
        assert_eq!(a, b2);
        assert_eq!(b.user("bob").idx(), 1);
    }

    #[test]
    fn empty_input_fails_cleanly() {
        let err = parse_tsv("demo", "").unwrap_err();
        assert!(err.reason.contains("no records"));
    }

    /// A policy loose enough that small test inputs never trip the budget.
    fn loose() -> LenientPolicy {
        LenientPolicy {
            max_bad_fraction: 0.9,
            grace_lines: 0,
            quarantine_cap: 64,
        }
    }

    #[test]
    fn lenient_parses_what_strict_parses() {
        let strict = parse_tsv("demo", SAMPLE).unwrap();
        let (lenient, report) = parse_tsv_lenient("demo", SAMPLE, &loose()).unwrap();
        assert_eq!(lenient.len(), strict.len());
        assert_eq!(report.parsed, 3);
        assert_eq!(report.skipped(), 0);
        for (a, b) in strict.records().iter().zip(lenient.records()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn lenient_classifies_each_fault_kind() {
        let input = "\
alice\t1406851200\t34.05\t-118.24\tmorning espresso downtown
bob\t1406854800\t34.06
carol\tnot-a-ts\t33.74\t-118.26\tharbor cranes
dave\t1406862000\tabc\t-118.27\ttacos tonight
erin\t1406865600\tNaN\t-118.28\tramen run
frank\t1406869200\t33.77\t9999.0\tlate shift
grace\t1406872800\t33.78\t-118.30\tthe and of with a 1234
henry\t1406876400\t33.79\t-118.31\tclosing surf session
";
        let (corpus, report) = parse_tsv_lenient("demo", input, &loose()).unwrap();
        assert_eq!(report.parsed, 2);
        assert_eq!(corpus.len(), 2);
        assert_eq!(report.count(SkipReason::MissingField), 1);
        assert_eq!(report.count(SkipReason::BadTimestamp), 1);
        assert_eq!(report.count(SkipReason::BadCoordinate), 1);
        assert_eq!(report.count(SkipReason::NonFiniteCoordinate), 1);
        assert_eq!(report.count(SkipReason::OutOfRangeCoordinate), 1);
        assert_eq!(report.count(SkipReason::NoKeywords), 1);
        assert_eq!(report.skipped(), 6);
        // Quarantine keeps the offending lines with positions.
        let lines: Vec<usize> = report.quarantine.entries().iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(
            report.quarantine.entries()[0].reason,
            SkipReason::MissingField
        );
        assert!(report.quarantine.entries()[1].content.contains("not-a-ts"));
    }

    #[test]
    fn lenient_budget_fails_fast_after_grace() {
        // 30% bad against a 10% budget with a short grace window.
        let mut input = String::new();
        for i in 0..300 {
            if i % 3 == 0 {
                input.push_str(&format!("u{i}\tnot-a-ts\t1.0\t2.0\twords here\n"));
            } else {
                input.push_str(&format!("u{i}\t1406851200\t1.0\t2.0\tkeyword alpha\n"));
            }
        }
        let policy = LenientPolicy {
            max_bad_fraction: 0.1,
            grace_lines: 30,
            quarantine_cap: 8,
        };
        let err = parse_tsv_lenient("demo", &input, &policy).unwrap_err();
        let IngestError::BudgetExceeded {
            bad, seen, line, ..
        } = err
        else {
            panic!("expected BudgetExceeded, got {err:?}");
        };
        // Tripped right after the grace window, not at end of input.
        assert!(seen > 30 && seen < 60, "seen {seen}");
        assert!(bad * 10 > seen, "bad {bad} of {seen}");
        assert!(line <= 60);
    }

    #[test]
    fn lenient_budget_checks_at_end_of_short_input() {
        // 1 bad line of 4 = 25% against a 10% budget, but the input is
        // shorter than the grace window — the end-of-input check catches it.
        let input = "\
a\t1406851200\t1.0\t2.0\tkeyword alpha
b\t1406851201\t1.0\t2.0\tkeyword bravo
c\tbroken\t1.0\t2.0\tkeyword charlie
d\t1406851203\t1.0\t2.0\tkeyword delta
";
        let policy = LenientPolicy {
            max_bad_fraction: 0.1,
            grace_lines: 200,
            quarantine_cap: 8,
        };
        let err = parse_tsv_lenient("demo", input, &policy).unwrap_err();
        assert!(matches!(err, IngestError::BudgetExceeded { bad: 1, seen: 4, .. }), "{err:?}");
    }

    #[test]
    fn quarantine_cap_bounds_retention() {
        let mut input = String::new();
        for i in 0..50 {
            input.push_str(&format!("u{i}\tnope\t1.0\t2.0\twords\n"));
        }
        input.push_str("ok\t1406851200\t1.0\t2.0\tkeyword alpha\n");
        let policy = LenientPolicy {
            max_bad_fraction: 1.0,
            grace_lines: 0,
            quarantine_cap: 5,
        };
        let (_, report) = parse_tsv_lenient("demo", &input, &policy).unwrap();
        assert_eq!(report.quarantine.entries().len(), 5);
        assert_eq!(report.quarantine.overflow(), 45);
        assert_eq!(report.count(SkipReason::BadTimestamp), 50);
    }

    #[test]
    fn lenient_all_lines_bad_is_a_corpus_error_under_full_budget() {
        let input = "a\tnope\t1.0\t2.0\twords\n";
        let policy = LenientPolicy {
            max_bad_fraction: 1.0,
            grace_lines: 0,
            quarantine_cap: 5,
        };
        let err = parse_tsv_lenient("demo", input, &policy).unwrap_err();
        assert!(matches!(err, IngestError::Corpus(MobilityError::EmptyCorpus)), "{err:?}");
    }
}
