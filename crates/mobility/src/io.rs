//! Importing real mobile data.
//!
//! The experiments run on synthetic corpora, but the library is meant to
//! be pointed at real geo-tagged exports too. This module ingests the
//! lowest common denominator — line-delimited records with a timestamp,
//! a latitude/longitude pair, free text, and optional user/mention
//! fields — building the vocabulary (tokenization + stop-word removal)
//! and user table on the fly.
//!
//! Two formats:
//!
//! * **TSV** (`parse_tsv`): `user <TAB> timestamp <TAB> lat <TAB> lon
//!   <TAB> text`, the layout of the UTGEO2011-style dumps. Mentions are
//!   recovered from `@handle` tokens in the text.
//! * **Builder** (`CorpusBuilder`): push records programmatically from any
//!   source (database rows, JSON readers, …).

use std::collections::HashMap;

use crate::corpus::Corpus;
use crate::error::MobilityError;
use crate::types::{GeoPoint, KeywordId, Record, RecordId, Timestamp, UserId};
use crate::vocab::Vocabulary;

/// Incrementally builds a corpus from raw records.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    name: String,
    vocab: Vocabulary,
    users: HashMap<String, UserId>,
    user_names: Vec<String>,
    records: Vec<Record>,
}

impl CorpusBuilder {
    /// Creates a named builder.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were pushed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Interns a user handle.
    pub fn user(&mut self, handle: &str) -> UserId {
        let handle = handle.trim().trim_start_matches('@').to_ascii_lowercase();
        if let Some(&id) = self.users.get(&handle) {
            return id;
        }
        let id = UserId::from(self.user_names.len());
        self.users.insert(handle.clone(), id);
        self.user_names.push(handle);
        id
    }

    /// Tokenizes free text: splits on non-alphanumeric boundaries (keeping
    /// `_`, `#`, `@` inside tokens), lower-cases, interns content words,
    /// and returns `@mention` handles separately.
    pub fn tokenize(&mut self, text: &str) -> (Vec<KeywordId>, Vec<UserId>) {
        let mut keywords = Vec::new();
        let mut mentions = Vec::new();
        for raw in text.split(|c: char| c.is_whitespace() || ",.;:!?\"()[]{}".contains(c)) {
            let token = raw.trim();
            if token.is_empty() {
                continue;
            }
            if let Some(handle) = token.strip_prefix('@') {
                if !handle.is_empty() {
                    mentions.push(self.user(handle));
                }
                continue;
            }
            let token = token.trim_start_matches('#');
            // Skip URLs and pure numbers.
            if token.starts_with("http") || token.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            if let Some(id) = self.vocab.intern(token) {
                keywords.push(id);
            }
        }
        (keywords, mentions)
    }

    /// Pushes one record with pre-tokenized content.
    pub fn push(
        &mut self,
        user: UserId,
        timestamp: Timestamp,
        location: GeoPoint,
        keywords: Vec<KeywordId>,
        mentions: Vec<UserId>,
    ) {
        self.records.push(Record {
            id: RecordId::from(self.records.len()),
            user,
            timestamp,
            location,
            keywords,
            mentions,
        });
    }

    /// Pushes one record with raw text (tokenized internally; `@mentions`
    /// found in the text become interaction edges).
    pub fn push_text(
        &mut self,
        user_handle: &str,
        timestamp: Timestamp,
        location: GeoPoint,
        text: &str,
    ) {
        let user = self.user(user_handle);
        let (keywords, mut mentions) = self.tokenize(text);
        mentions.retain(|&m| m != user);
        mentions.dedup();
        self.push(user, timestamp, location, keywords, mentions);
    }

    /// Finalizes the corpus.
    pub fn build(self) -> Result<Corpus, MobilityError> {
        Corpus::new(
            self.name,
            self.records,
            self.vocab,
            self.user_names.len() as u32,
        )
    }
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses `user <TAB> unix_timestamp <TAB> lat <TAB> lon <TAB> text`
/// lines into a corpus. Empty lines and `#`-prefixed comment lines are
/// skipped; any malformed line aborts with its line number.
pub fn parse_tsv(name: &str, input: &str) -> Result<Corpus, ParseError> {
    let mut builder = CorpusBuilder::new(name);
    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(5, '\t');
        let mut next = |what: &str| {
            parts.next().filter(|s| !s.is_empty()).ok_or(ParseError {
                line: lineno,
                reason: format!("missing {what} field"),
            })
        };
        let user = next("user")?;
        let ts: Timestamp = next("timestamp")?.parse().map_err(|e| ParseError {
            line: lineno,
            reason: format!("bad timestamp: {e}"),
        })?;
        let lat: f64 = next("lat")?.parse().map_err(|e| ParseError {
            line: lineno,
            reason: format!("bad latitude: {e}"),
        })?;
        let lon: f64 = next("lon")?.parse().map_err(|e| ParseError {
            line: lineno,
            reason: format!("bad longitude: {e}"),
        })?;
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            return Err(ParseError {
                line: lineno,
                reason: format!("coordinates out of range: ({lat}, {lon})"),
            });
        }
        let text = next("text")?;
        builder.push_text(user, ts, GeoPoint::new(lat, lon), text);
    }
    builder.build().map_err(|e| ParseError {
        line: 0,
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# user\ttimestamp\tlat\tlon\ttext
alice\t1406851200\t34.05\t-118.24\tGreat surf at the beach today! @bob
bob\t1406854800\t34.06\t-118.25\tEspresso and a pastry, the usual #coffee

carol\t1406858400\t33.74\t-118.26\tShips at the harbor http://pic.example 42
";

    #[test]
    fn parses_valid_tsv() {
        let corpus = parse_tsv("demo", SAMPLE).unwrap();
        assert_eq!(corpus.len(), 3);
        assert_eq!(corpus.num_users(), 3);

        let r0 = &corpus.records()[0];
        let words: Vec<&str> = r0.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
        assert!(words.contains(&"surf"));
        assert!(words.contains(&"beach"));
        // Stop words removed ("at", "the", "today").
        assert!(!words.contains(&"the"));
        assert!(!words.contains(&"today"));
        // Mention captured, not interned as a keyword.
        assert_eq!(r0.mentions.len(), 1);
        assert!(!words.contains(&"bob"));

        // Hashtag and URL handling.
        let r1 = &corpus.records()[1];
        let words1: Vec<&str> = r1.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
        assert!(words1.contains(&"coffee"));
        let r2 = &corpus.records()[2];
        let words2: Vec<&str> = r2.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
        assert!(words2.contains(&"harbor"));
        assert!(!words2.iter().any(|w| w.starts_with("http")));
        assert!(!words2.contains(&"42"));
    }

    #[test]
    fn mention_user_ids_are_shared_with_authors() {
        let corpus = parse_tsv("demo", SAMPLE).unwrap();
        let r0 = &corpus.records()[0];
        let r1 = &corpus.records()[1];
        // alice mentioned @bob; bob authored record 1.
        assert_eq!(r0.mentions[0], r1.user);
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        let bad = "alice\t1406851200\t34.05\t-118.24\thi\nbob\tnot_a_ts\t1\t2\tx";
        let err = parse_tsv("demo", bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("timestamp"));

        let bad = "alice\t1406851200\t934.05\t-118.24\thi";
        let err = parse_tsv("demo", bad).unwrap_err();
        assert!(err.reason.contains("out of range"));

        let bad = "alice\t1406851200\t34.05";
        let err = parse_tsv("demo", bad).unwrap_err();
        assert!(err.reason.contains("missing"));
    }

    #[test]
    fn builder_self_mentions_are_dropped() {
        let mut b = CorpusBuilder::new("t");
        b.push_text("alice", 0, GeoPoint::new(1.0, 2.0), "talking to @alice myself");
        let corpus = b.build().unwrap();
        assert!(corpus.records()[0].mentions.is_empty());
    }

    #[test]
    fn builder_user_interning_is_case_insensitive() {
        let mut b = CorpusBuilder::new("t");
        let a = b.user("Alice");
        let b2 = b.user("@alice");
        assert_eq!(a, b2);
        assert_eq!(b.user("bob").idx(), 1);
    }

    #[test]
    fn empty_input_fails_cleanly() {
        let err = parse_tsv("demo", "").unwrap_err();
        assert!(err.reason.contains("no records"));
    }
}
