//! Keyword vocabulary with string interning.
//!
//! The activity graph's textual units are interned keywords; the vocabulary
//! owns the mapping in both directions and applies stop-word filtering at
//! insertion time, mirroring the preprocessing described in §4.1.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::stopwords::is_stopword;
use crate::types::KeywordId;

/// Bidirectional `String ↔ KeywordId` mapping.
///
/// ```
/// use mobility::Vocabulary;
///
/// let mut vocab = Vocabulary::new();
/// let id = vocab.intern("Beach").unwrap();
/// assert_eq!(vocab.word(id), "beach");          // lower-cased
/// assert_eq!(vocab.intern("beach"), Some(id));  // deduplicated
/// assert_eq!(vocab.intern("the"), None);        // stop words rejected
/// assert_eq!(vocab.count(id), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, KeywordId>,
    /// Per-keyword corpus frequency, maintained by [`Vocabulary::intern`].
    counts: Vec<u64>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keywords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if no keywords have been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Interns `word`, returning its id and bumping its frequency count.
    ///
    /// Returns `None` when the word is a stop word or empty after trimming;
    /// such words never receive ids, matching the paper's removal of
    /// "frequent and meaningless words".
    pub fn intern(&mut self, word: &str) -> Option<KeywordId> {
        let word = word.trim();
        if word.is_empty() {
            return None;
        }
        let lowered = word.to_ascii_lowercase();
        if is_stopword(&lowered) {
            return None;
        }
        if let Some(&id) = self.index.get(&lowered) {
            self.counts[id.idx()] += 1;
            return Some(id);
        }
        let id = KeywordId::from(self.words.len());
        self.words.push(lowered.clone());
        self.counts.push(1);
        self.index.insert(lowered, id);
        Some(id)
    }

    /// Looks up an existing keyword without interning.
    pub fn get(&self, word: &str) -> Option<KeywordId> {
        self.index.get(&word.trim().to_ascii_lowercase()).copied()
    }

    /// The string for a keyword id. Panics on out-of-range ids.
    pub fn word(&self, id: KeywordId) -> &str {
        &self.words[id.idx()]
    }

    /// Corpus frequency of a keyword.
    pub fn count(&self, id: KeywordId) -> u64 {
        self.counts[id.idx()]
    }

    /// Increments the frequency count of an existing keyword.
    ///
    /// Used by generators that sample keyword *ids* directly (bypassing
    /// [`Vocabulary::intern`]'s string path) but still want corpus
    /// frequencies tracked.
    pub fn bump(&mut self, id: KeywordId) {
        self.counts[id.idx()] += 1;
    }

    /// Adds `n` to the frequency count of an existing keyword in O(1).
    ///
    /// Deserializers restoring saved counts must use this instead of
    /// looping over [`Vocabulary::bump`]: a count field is attacker-
    /// controlled in an untrusted envelope, and a `u64`-sized loop is a
    /// denial of service.
    pub fn bump_by(&mut self, id: KeywordId, n: u64) {
        let c = &mut self.counts[id.idx()];
        *c = c.saturating_add(n);
    }

    /// Iterates `(id, word, count)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str, u64)> + '_ {
        self.words
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(i, (w, &c))| (KeywordId::from(i), w.as_str(), c))
    }

    /// The `top` most frequent keywords, ties broken by id.
    pub fn most_frequent(&self, top: usize) -> Vec<(KeywordId, u64)> {
        let mut pairs: Vec<(KeywordId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (KeywordId::from(i), c))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(top);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_and_counts() {
        let mut v = Vocabulary::new();
        let a = v.intern("Beach").unwrap();
        let b = v.intern("beach").unwrap();
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.count(a), 2);
        assert_eq!(v.word(a), "beach");
    }

    #[test]
    fn stopwords_and_empties_are_rejected() {
        let mut v = Vocabulary::new();
        assert!(v.intern("the").is_none());
        assert!(v.intern("  ").is_none());
        assert!(v.intern("").is_none());
        assert!(v.is_empty());
    }

    #[test]
    fn lookup_without_interning() {
        let mut v = Vocabulary::new();
        let id = v.intern("surf").unwrap();
        assert_eq!(v.get("SURF"), Some(id));
        assert_eq!(v.get("unknown"), None);
        // get must not create entries.
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn most_frequent_orders_by_count_then_id() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha").unwrap();
        let b = v.intern("bravo").unwrap();
        v.intern("bravo").unwrap();
        let c = v.intern("charlie").unwrap();
        let top = v.most_frequent(3);
        assert_eq!(top[0].0, b);
        assert_eq!(top[0].1, 2);
        // alpha and charlie tie at 1; lower id first.
        assert_eq!(top[1].0, a);
        assert_eq!(top[2].0, c);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut v = Vocabulary::new();
        v.intern("x1");
        v.intern("x2");
        let items: Vec<_> = v.iter().collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].1, "x1");
        assert_eq!(items[1].2, 1);
    }
}
