//! Error type for corpus construction and validation.

use std::fmt;

/// Errors produced while building or validating corpora.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MobilityError {
    /// A record referenced a user id outside the corpus' user range.
    UnknownUser {
        /// Offending record index.
        record: usize,
        /// The out-of-range user id.
        user: u32,
        /// Number of users in the corpus.
        num_users: u32,
    },
    /// A record referenced a keyword id outside the vocabulary.
    UnknownKeyword {
        /// Offending record index.
        record: usize,
        /// The out-of-range keyword id.
        keyword: u32,
        /// Vocabulary size.
        vocab_size: u32,
    },
    /// Split fractions did not describe a valid partition.
    InvalidSplit {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The corpus was empty where a non-empty corpus is required.
    EmptyCorpus,
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::UnknownUser {
                record,
                user,
                num_users,
            } => write!(
                f,
                "record {record} references user {user}, but corpus has {num_users} users"
            ),
            MobilityError::UnknownKeyword {
                record,
                keyword,
                vocab_size,
            } => write!(
                f,
                "record {record} references keyword {keyword}, but vocabulary has {vocab_size} entries"
            ),
            MobilityError::InvalidSplit { reason } => write!(f, "invalid split: {reason}"),
            MobilityError::EmptyCorpus => write!(f, "corpus contains no records"),
        }
    }
}

impl std::error::Error for MobilityError {}

/// A failed lenient ingest (see [`crate::io::parse_tsv_lenient`]).
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The fraction of malformed lines exceeded the configured budget —
    /// the input looks systematically broken, not merely noisy.
    BudgetExceeded {
        /// Malformed data lines seen so far.
        bad: usize,
        /// Data lines seen so far (good + bad).
        seen: usize,
        /// The configured ceiling on `bad / seen`.
        max_fraction: f64,
        /// 1-based line number where the budget check tripped.
        line: usize,
    },
    /// The surviving records did not form a valid corpus (e.g. every
    /// line was skipped).
    Corpus(MobilityError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::BudgetExceeded {
                bad,
                seen,
                max_fraction,
                line,
            } => write!(
                f,
                "error budget exceeded at line {line}: {bad} of {seen} data lines malformed \
                 (budget {:.2}%)",
                max_fraction * 100.0
            ),
            IngestError::Corpus(e) => write!(f, "ingest produced no usable corpus: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Corpus(e) => Some(e),
            IngestError::BudgetExceeded { .. } => None,
        }
    }
}

impl From<MobilityError> for IngestError {
    fn from(e: MobilityError) -> Self {
        IngestError::Corpus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MobilityError::UnknownUser {
            record: 7,
            user: 99,
            num_users: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("record 7"));
        assert!(msg.contains("user 99"));

        let e = MobilityError::InvalidSplit {
            reason: "test fraction negative".into(),
        };
        assert!(e.to_string().contains("test fraction negative"));
        assert!(MobilityError::EmptyCorpus.to_string().contains("no records"));
    }
}
