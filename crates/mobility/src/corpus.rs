//! Corpus container and aggregate statistics.

use serde::{Deserialize, Serialize};

use crate::error::MobilityError;
use crate::types::{Record, RecordId, UserId};
use crate::vocab::Vocabulary;

/// A validated corpus of mobile-data records plus its vocabulary.
///
/// Invariants (checked by [`Corpus::new`]):
/// * every record's `id` equals its index,
/// * every user id (author or mention) is `< num_users`,
/// * every keyword id is `< vocab.len()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Human-readable corpus name (e.g. `synth-utgeo2011`).
    pub name: String,
    records: Vec<Record>,
    vocab: Vocabulary,
    num_users: u32,
}

impl Corpus {
    /// Builds a corpus, re-numbering record ids to match their index and
    /// validating all cross-references.
    pub fn new(
        name: impl Into<String>,
        mut records: Vec<Record>,
        vocab: Vocabulary,
        num_users: u32,
    ) -> Result<Self, MobilityError> {
        if records.is_empty() {
            return Err(MobilityError::EmptyCorpus);
        }
        for (i, r) in records.iter_mut().enumerate() {
            r.id = RecordId::from(i);
            if r.user.0 >= num_users {
                return Err(MobilityError::UnknownUser {
                    record: i,
                    user: r.user.0,
                    num_users,
                });
            }
            for &m in &r.mentions {
                if m.0 >= num_users {
                    return Err(MobilityError::UnknownUser {
                        record: i,
                        user: m.0,
                        num_users,
                    });
                }
            }
            for &w in &r.keywords {
                if w.idx() >= vocab.len() {
                    return Err(MobilityError::UnknownKeyword {
                        record: i,
                        keyword: w.0,
                        vocab_size: vocab.len() as u32,
                    });
                }
            }
        }
        Ok(Self {
            name: name.into(),
            records,
            vocab,
            num_users,
        })
    }

    /// All records, in id order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// A record by id.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.idx()]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the corpus holds no records (never true for a constructed
    /// corpus; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The keyword vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of distinct users.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Aggregate statistics (the raw-data half of the paper's Table 1).
    pub fn stats(&self) -> CorpusStats {
        let mut mention_records = 0usize;
        let mut mention_edges = 0usize;
        let mut keyword_tokens = 0usize;
        let mut users_seen = vec![false; self.num_users as usize];
        for r in &self.records {
            if r.has_mentions() {
                mention_records += 1;
            }
            mention_edges += r.mentions.len();
            keyword_tokens += r.keywords.len();
            users_seen[r.user.idx()] = true;
            for &m in &r.mentions {
                users_seen[m.idx()] = true;
            }
        }
        CorpusStats {
            records: self.records.len(),
            users: users_seen.iter().filter(|&&b| b).count(),
            vocab_size: self.vocab.len(),
            keyword_tokens,
            mention_records,
            mention_edges,
        }
    }

    /// Records authored by `user`, in id order.
    pub fn records_of_user(&self, user: UserId) -> impl Iterator<Item = &Record> + '_ {
        self.records.iter().filter(move |r| r.user == user)
    }
}

/// Aggregate corpus statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total number of records.
    pub records: usize,
    /// Number of users appearing as author or mention.
    pub users: usize,
    /// Distinct keywords.
    pub vocab_size: usize,
    /// Total keyword tokens across all records.
    pub keyword_tokens: usize,
    /// Records containing at least one mention (16.8 % in UTGEO2011 per §1).
    pub mention_records: usize,
    /// Total mention edges.
    pub mention_edges: usize,
}

impl CorpusStats {
    /// Fraction of records with at least one mention.
    pub fn mention_rate(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.mention_records as f64 / self.records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GeoPoint, KeywordId, Record, RecordId};

    fn record(user: u32, kws: &[u32], mentions: &[u32]) -> Record {
        Record {
            id: RecordId(0),
            user: UserId(user),
            timestamp: 1000,
            location: GeoPoint::new(34.0, -118.0),
            keywords: kws.iter().map(|&k| KeywordId(k)).collect(),
            mentions: mentions.iter().map(|&m| UserId(m)).collect(),
        }
    }

    fn vocab(n: usize) -> Vocabulary {
        let mut v = Vocabulary::new();
        for i in 0..n {
            v.intern(&format!("kw{i}"));
        }
        v
    }

    #[test]
    fn new_renumbers_ids_and_validates() {
        let c = Corpus::new(
            "t",
            vec![record(0, &[0], &[]), record(1, &[1], &[0])],
            vocab(2),
            2,
        )
        .unwrap();
        assert_eq!(c.record(RecordId(1)).id, RecordId(1));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Corpus::new("t", vec![], vocab(1), 1).unwrap_err(),
            MobilityError::EmptyCorpus
        );
    }

    #[test]
    fn rejects_unknown_user_and_mention() {
        let err = Corpus::new("t", vec![record(5, &[0], &[])], vocab(1), 2).unwrap_err();
        assert!(matches!(err, MobilityError::UnknownUser { user: 5, .. }));
        let err = Corpus::new("t", vec![record(0, &[0], &[9])], vocab(1), 2).unwrap_err();
        assert!(matches!(err, MobilityError::UnknownUser { user: 9, .. }));
    }

    #[test]
    fn rejects_unknown_keyword() {
        let err = Corpus::new("t", vec![record(0, &[3], &[])], vocab(2), 1).unwrap_err();
        assert!(matches!(err, MobilityError::UnknownKeyword { keyword: 3, .. }));
    }

    #[test]
    fn stats_count_mentions_and_tokens() {
        let c = Corpus::new(
            "t",
            vec![
                record(0, &[0, 1], &[1]),
                record(1, &[1], &[]),
                record(0, &[0, 0, 1], &[1, 1]),
            ],
            vocab(2),
            3, // user 2 never appears
        )
        .unwrap();
        let s = c.stats();
        assert_eq!(s.records, 3);
        assert_eq!(s.users, 2);
        assert_eq!(s.vocab_size, 2);
        assert_eq!(s.keyword_tokens, 6);
        assert_eq!(s.mention_records, 2);
        assert_eq!(s.mention_edges, 3);
        assert!((s.mention_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn records_of_user_filters() {
        let c = Corpus::new(
            "t",
            vec![record(0, &[0], &[]), record(1, &[0], &[]), record(0, &[0], &[])],
            vocab(1),
            2,
        )
        .unwrap();
        assert_eq!(c.records_of_user(UserId(0)).count(), 2);
        assert_eq!(c.records_of_user(UserId(1)).count(), 1);
    }
}
