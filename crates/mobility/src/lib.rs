//! Mobile-data substrate for the ACTOR reproduction.
//!
//! The paper models a corpus `R = {r_1, …, r_N}` of geo-tagged social-media
//! records, each a tuple `⟨t_i, l_i, W_i⟩` of creation timestamp, location,
//! and bag of keywords (§3 of the paper), authored by a user who may
//! *mention* other users (the source of the user interaction graph, §4.1).
//!
//! This crate provides:
//!
//! * the record/corpus data model ([`Record`], [`Corpus`], [`types`]),
//! * keyword interning with stop-word removal ([`vocab`]),
//! * deterministic train/valid/test splitting ([`split`]),
//! * a synthetic corpus generator ([`synth`]) that stands in for the
//!   proprietary UTGEO2011 / TWEET / 4SQ datasets used in the paper. The
//!   generator plants latent *activities* (spatial hotspot + temporal peak +
//!   keyword multinomial) and user *communities* with mention behaviour, so
//!   that every statistical property the ACTOR algorithm exploits exists by
//!   construction. See `DESIGN.md` §3 for the substitution argument.

pub mod corpus;
pub mod error;
pub mod io;
pub mod rng;
pub mod split;
pub mod stopwords;
pub mod synth;
pub mod types;
pub mod vocab;

pub use corpus::{Corpus, CorpusStats};
pub use error::{IngestError, MobilityError};
pub use split::{CorpusSplit, SplitSpec};
pub use types::{GeoPoint, KeywordId, Record, RecordId, Timestamp, UserId, SECONDS_PER_DAY, SECONDS_PER_WEEK};
pub use vocab::Vocabulary;
