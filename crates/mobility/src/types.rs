//! Core identifier and record types shared across the workspace.

use serde::{Deserialize, Serialize};

/// Number of seconds in a day; used for circular time-of-day arithmetic.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// Number of seconds in a week; used for circular time-of-week
/// arithmetic (weekday/weekend rhythms).
pub const SECONDS_PER_WEEK: i64 = 7 * SECONDS_PER_DAY;

/// Creation timestamp of a record, in seconds since the Unix epoch.
pub type Timestamp = i64;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The identifier as a `usize` index into dense per-entity arrays.
            #[inline]
            pub fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                debug_assert!(v <= u32::MAX as usize);
                Self(v as u32)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Dense identifier of a record within a [`crate::Corpus`].
    RecordId
);
id_type!(
    /// Dense identifier of a mobile user.
    UserId
);
id_type!(
    /// Dense identifier of a keyword in a [`crate::Vocabulary`].
    KeywordId
);

/// A point on the (locally flattened) earth surface.
///
/// The paper works on city-scale data (Los Angeles, New York), where
/// latitude/longitude behave like a planar coordinate system to within a
/// fraction of a percent, so distances are Euclidean in degree space scaled
/// by the cosine of a reference latitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a new point.
    #[inline]
    pub fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Squared Euclidean distance in degree space.
    ///
    /// Sufficient for nearest-hotspot assignment and mean-shift windows,
    /// where only relative comparisons matter.
    #[inline]
    pub fn dist2(&self, other: &GeoPoint) -> f64 {
        let dlat = self.lat - other.lat;
        let dlon = self.lon - other.lon;
        dlat * dlat + dlon * dlon
    }

    /// Euclidean distance in degree space.
    #[inline]
    pub fn dist(&self, other: &GeoPoint) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Approximate distance in kilometres, using 111.32 km per degree of
    /// latitude and the cosine correction for longitude at this latitude.
    pub fn dist_km(&self, other: &GeoPoint) -> f64 {
        const KM_PER_DEG: f64 = 111.32;
        let mean_lat = 0.5 * (self.lat + other.lat);
        let dlat = (self.lat - other.lat) * KM_PER_DEG;
        let dlon = (self.lon - other.lon) * KM_PER_DEG * mean_lat.to_radians().cos();
        (dlat * dlat + dlon * dlon).sqrt()
    }
}

/// The second-of-day (0..86400) of a timestamp, for circular temporal
/// hotspot detection.
#[inline]
pub fn second_of_day(t: Timestamp) -> f64 {
    (t.rem_euclid(SECONDS_PER_DAY)) as f64
}

/// The second-of-week (0..604800) of a timestamp, for weekly-period
/// temporal hotspot detection.
#[inline]
pub fn second_of_week(t: Timestamp) -> f64 {
    (t.rem_euclid(SECONDS_PER_WEEK)) as f64
}

/// Day of week of a timestamp, `0 = Monday .. 6 = Sunday`
/// (1970-01-01 was a Thursday).
#[inline]
pub fn day_of_week(t: Timestamp) -> u32 {
    ((t.div_euclid(SECONDS_PER_DAY) + 3).rem_euclid(7)) as u32
}

/// True for Saturday and Sunday.
#[inline]
pub fn is_weekend(t: Timestamp) -> bool {
    day_of_week(t) >= 5
}

/// Formats a second-of-day as `HH:MM:SS`, mirroring the timestamps shown in
/// the paper's case studies (Table 3, Figs. 9–11).
pub fn format_time_of_day(seconds: f64) -> String {
    let s = seconds.rem_euclid(SECONDS_PER_DAY as f64) as i64;
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

/// One mobile-data record `⟨t, l, W⟩` plus its author and mentions.
///
/// `keywords` is a *bag*: duplicates are allowed and meaningful (the
/// intra-record meta-graph sums keyword embeddings, footnote 4 of the
/// paper). `mentions` holds the users referenced with an `@`, the raw
/// material of the user interaction graph (Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Dense record identifier, equal to the record's index in its corpus.
    pub id: RecordId,
    /// The authoring user.
    pub user: UserId,
    /// Creation timestamp (seconds since epoch).
    pub timestamp: Timestamp,
    /// Creation location.
    pub location: GeoPoint,
    /// Bag of keywords after stop-word removal.
    pub keywords: Vec<KeywordId>,
    /// Users mentioned in the text, possibly empty.
    pub mentions: Vec<UserId>,
}

impl Record {
    /// True if the record mentions at least one other user.
    #[inline]
    pub fn has_mentions(&self) -> bool {
        !self.mentions.is_empty()
    }

    /// The record's second-of-day, used by the temporal hotspot detector.
    #[inline]
    pub fn second_of_day(&self) -> f64 {
        second_of_day(self.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let u = UserId::from(42usize);
        assert_eq!(u.idx(), 42);
        assert_eq!(UserId(42), u);
        assert_eq!(format!("{u}"), "UserId(42)");
    }

    #[test]
    fn geo_distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(34.05, -118.25);
        let b = GeoPoint::new(33.74, -118.26);
        assert_eq!(a.dist2(&a), 0.0);
        assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-12);
        assert!(a.dist(&b) > 0.0);
    }

    #[test]
    fn km_distance_is_plausible_for_la() {
        // Downtown LA to the port of LA is roughly 35 km.
        let downtown = GeoPoint::new(34.0522, -118.2437);
        let port = GeoPoint::new(33.7395, -118.2599);
        let km = downtown.dist_km(&port);
        assert!((30.0..40.0).contains(&km), "got {km}");
    }

    #[test]
    fn day_of_week_matches_known_dates() {
        // 1970-01-01 was a Thursday (index 3 with Monday = 0).
        assert_eq!(day_of_week(0), 3);
        assert_eq!(day_of_week(SECONDS_PER_DAY), 4); // Friday
        assert_eq!(day_of_week(3 * SECONDS_PER_DAY), 6); // Sunday
        assert!(is_weekend(2 * SECONDS_PER_DAY)); // Saturday
        assert!(!is_weekend(4 * SECONDS_PER_DAY)); // Monday
        // 2014-08-01 (the synthetic epoch base) was a Friday.
        assert_eq!(day_of_week(1_406_851_200), 4);
        // Negative timestamps wrap consistently.
        assert_eq!(day_of_week(-SECONDS_PER_DAY), 2); // Wednesday
    }

    #[test]
    fn second_of_week_wraps() {
        assert_eq!(second_of_week(0), 0.0);
        assert_eq!(second_of_week(SECONDS_PER_WEEK + 7), 7.0);
    }

    #[test]
    fn second_of_day_wraps_negative_timestamps() {
        assert_eq!(second_of_day(0), 0.0);
        assert_eq!(second_of_day(86_400 + 5), 5.0);
        assert_eq!(second_of_day(-5), (86_400 - 5) as f64);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time_of_day(0.0), "00:00:00");
        assert_eq!(format_time_of_day(22.0 * 3600.0 + 61.0), "22:01:01");
        assert_eq!(format_time_of_day(86_400.0 + 30.0), "00:00:30");
    }

    #[test]
    fn record_mention_helpers() {
        let r = Record {
            id: RecordId(0),
            user: UserId(1),
            timestamp: 100,
            location: GeoPoint::new(0.0, 0.0),
            keywords: vec![KeywordId(3)],
            mentions: vec![],
        };
        assert!(!r.has_mentions());
        assert_eq!(r.second_of_day(), 100.0);
    }
}
