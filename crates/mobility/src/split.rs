//! Deterministic train/valid/test splitting.
//!
//! The paper splits each dataset randomly into train/valid/test (Table 1).
//! The split here is a seeded Fisher–Yates shuffle of record ids, so every
//! experiment binary reproduces the exact same partition for a given seed.

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::error::MobilityError;
use crate::types::RecordId;

/// Fractions of the corpus assigned to validation and test; the remainder
/// is training data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitSpec {
    /// Fraction of records held out for validation.
    pub valid_fraction: f64,
    /// Fraction of records held out for testing.
    pub test_fraction: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SplitSpec {
    fn default() -> Self {
        // Mirrors the paper's roughly 97/1/2 partitions (Table 1).
        Self {
            valid_fraction: 0.01,
            test_fraction: 0.02,
            seed: 0xAC70,
        }
    }
}

/// Disjoint record-id partitions of a corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSplit {
    /// Training record ids.
    pub train: Vec<RecordId>,
    /// Validation record ids.
    pub valid: Vec<RecordId>,
    /// Test record ids.
    pub test: Vec<RecordId>,
}

impl CorpusSplit {
    /// Splits `corpus` per `spec`.
    pub fn new(corpus: &Corpus, spec: SplitSpec) -> Result<Self, MobilityError> {
        let vf = spec.valid_fraction;
        let tf = spec.test_fraction;
        if !(0.0..1.0).contains(&vf) || !(0.0..1.0).contains(&tf) || vf + tf >= 1.0 {
            return Err(MobilityError::InvalidSplit {
                reason: format!("valid={vf} test={tf} must be in [0,1) and sum below 1"),
            });
        }
        let n = corpus.len();
        let mut ids: Vec<RecordId> = (0..n).map(RecordId::from).collect();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        ids.shuffle(&mut rng);

        let n_valid = (n as f64 * vf).round() as usize;
        let n_test = (n as f64 * tf).round() as usize;
        let valid = ids[..n_valid].to_vec();
        let test = ids[n_valid..n_valid + n_test].to_vec();
        let train = ids[n_valid + n_test..].to_vec();
        Ok(Self { train, valid, test })
    }

    /// Total records across the three partitions.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// True if all partitions are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GeoPoint, Record, UserId};
    use crate::vocab::Vocabulary;

    fn corpus(n: usize) -> Corpus {
        let records = (0..n)
            .map(|i| Record {
                id: RecordId::from(i),
                user: UserId(0),
                timestamp: i as i64,
                location: GeoPoint::new(0.0, 0.0),
                keywords: vec![],
                mentions: vec![],
            })
            .collect();
        Corpus::new("t", records, Vocabulary::new(), 1).unwrap()
    }

    #[test]
    fn split_partitions_all_records() {
        let c = corpus(1000);
        let spec = SplitSpec {
            valid_fraction: 0.1,
            test_fraction: 0.2,
            seed: 1,
        };
        let s = CorpusSplit::new(&c, spec).unwrap();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.valid.len(), 100);
        assert_eq!(s.test.len(), 200);
        assert_eq!(s.train.len(), 700);

        let mut seen = vec![false; 1000];
        for id in s.train.iter().chain(&s.valid).chain(&s.test) {
            assert!(!seen[id.idx()], "duplicate {id}");
            seen[id.idx()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let c = corpus(100);
        let spec = SplitSpec::default();
        let a = CorpusSplit::new(&c, spec).unwrap();
        let b = CorpusSplit::new(&c, spec).unwrap();
        assert_eq!(a.test, b.test);
        let other = CorpusSplit::new(
            &c,
            SplitSpec {
                seed: spec.seed + 1,
                ..spec
            },
        )
        .unwrap();
        assert_ne!(a.train, other.train);
    }

    #[test]
    fn rejects_bad_fractions() {
        let c = corpus(10);
        for (vf, tf) in [(-0.1, 0.1), (0.5, 0.6), (1.0, 0.0), (0.0, 1.0)] {
            let err = CorpusSplit::new(
                &c,
                SplitSpec {
                    valid_fraction: vf,
                    test_fraction: tf,
                    seed: 0,
                },
            );
            assert!(err.is_err(), "vf={vf} tf={tf} should fail");
        }
    }

    #[test]
    fn empty_fractions_put_everything_in_train() {
        let c = corpus(10);
        let s = CorpusSplit::new(
            &c,
            SplitSpec {
                valid_fraction: 0.0,
                test_fraction: 0.0,
                seed: 0,
            },
        )
        .unwrap();
        assert_eq!(s.train.len(), 10);
        assert!(!s.is_empty());
    }
}
