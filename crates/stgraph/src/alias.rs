//! Walker alias method for O(1) sampling from discrete distributions.
//!
//! The paper samples edges proportionally to their weights millions of
//! times per epoch; alias tables make each draw constant-time (\[44\], §5.2.3).

use rand::Rng;

/// A Walker alias table over `n` outcomes.
///
/// ```
/// use stgraph::AliasTable;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = StdRng::seed_from_u64(7);
/// let heavy = (0..10_000).filter(|_| table.sample(&mut rng) == 1).count();
/// assert!((heavy as f64 / 10_000.0 - 0.75).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table in O(n). Returns `None` when no weight is positive
    /// or any weight is negative/NaN.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let mut total = 0.0;
        for &w in weights {
            if w.is_nan() || w < 0.0 {
                return None;
            }
            total += w;
        }
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        // Normalize to mean 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Move the excess of l to cover s's deficit.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: saturate.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Some(Self { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no outcomes (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The residual probability column, exposed so determinism checks can
    /// compare tables bit for bit.
    pub fn probs(&self) -> &[f64] {
        &self.prob
    }

    /// The alias column (see [`AliasTable::probs`]).
    pub fn aliases(&self) -> &[u32] {
        &self.alias
    }

    /// Draws an outcome in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.random_range(0..n);
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_degenerate_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0]).is_none());
        assert!(AliasTable::new(&[-1.0, 2.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 4]).unwrap();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        let n = 80_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for c in counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0, 0.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[4], 0, "zero-weight outcome drawn");
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate().take(4) {
            let f = counts[i] as f64 / n as f64;
            assert!((f - w / total).abs() < 0.01, "outcome {i}: {f}");
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[42.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn huge_dynamic_range_is_stable() {
        let weights = [1e-12, 1.0, 1e12];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        // Essentially all mass on the heavy outcome.
        assert!(counts[2] > 49_900, "{counts:?}");
    }
}
