//! Typed vertices of the activity graph.
//!
//! The activity graph mixes four vertex types — temporal hotspots,
//! spatial hotspots, keywords, and users (Definition 1 plus the `(U)`
//! augmentation of §6.1.2). Vertices live in one dense global id space
//! laid out as `[T | L | W | U]`, so embedding matrices index directly by
//! [`NodeId`] while [`NodeSpace`] converts to and from per-type indices.

use serde::{Deserialize, Serialize};

/// Vertex type (`O_v = {T, L, W}` of Definition 1, plus `U`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// Temporal hotspot unit.
    Time,
    /// Spatial hotspot unit.
    Location,
    /// Textual unit (keyword).
    Word,
    /// User vertex (hierarchical layer / `(U)` variants).
    User,
}

impl NodeType {
    /// All types in global-layout order.
    pub const ALL: [NodeType; 4] = [
        NodeType::Time,
        NodeType::Location,
        NodeType::Word,
        NodeType::User,
    ];

    /// Dense index in [`NodeType::ALL`] order (`T`=0, `L`=1, `W`=2,
    /// `U`=3), for array-backed per-type tables.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// One-letter label used in reports (`T`, `L`, `W`, `U`).
    pub fn label(self) -> &'static str {
        match self {
            NodeType::Time => "T",
            NodeType::Location => "L",
            NodeType::Word => "W",
            NodeType::User => "U",
        }
    }
}

/// Dense global vertex identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an array index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The `[T | L | W | U]` layout of the global id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpace {
    /// Number of temporal hotspot vertices.
    pub n_time: u32,
    /// Number of spatial hotspot vertices.
    pub n_location: u32,
    /// Number of keyword vertices.
    pub n_word: u32,
    /// Number of user vertices (0 when users are not embedded).
    pub n_user: u32,
}

impl NodeSpace {
    /// Total number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        (self.n_time + self.n_location + self.n_word + self.n_user) as usize
    }

    /// True if the space has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First global id of vertices of `ty`.
    #[inline]
    pub fn offset(&self, ty: NodeType) -> u32 {
        match ty {
            NodeType::Time => 0,
            NodeType::Location => self.n_time,
            NodeType::Word => self.n_time + self.n_location,
            NodeType::User => self.n_time + self.n_location + self.n_word,
        }
    }

    /// Number of vertices of `ty`.
    #[inline]
    pub fn count(&self, ty: NodeType) -> u32 {
        match ty {
            NodeType::Time => self.n_time,
            NodeType::Location => self.n_location,
            NodeType::Word => self.n_word,
            NodeType::User => self.n_user,
        }
    }

    /// Global id of the `local`-th vertex of `ty`.
    ///
    /// Panics (debug) if `local` is out of range.
    #[inline]
    pub fn node(&self, ty: NodeType, local: u32) -> NodeId {
        debug_assert!(local < self.count(ty), "{ty:?} local {local} out of range");
        NodeId(self.offset(ty) + local)
    }

    /// The type of a global id.
    #[inline]
    pub fn type_of(&self, id: NodeId) -> NodeType {
        let v = id.0;
        if v < self.n_time {
            NodeType::Time
        } else if v < self.n_time + self.n_location {
            NodeType::Location
        } else if v < self.n_time + self.n_location + self.n_word {
            NodeType::Word
        } else {
            debug_assert!((v as usize) < self.len(), "node id out of range");
            NodeType::User
        }
    }

    /// The per-type index of a global id.
    #[inline]
    pub fn local_of(&self, id: NodeId) -> u32 {
        id.0 - self.offset(self.type_of(id))
    }

    /// Iterates all global ids of `ty`.
    pub fn nodes_of(&self, ty: NodeType) -> impl Iterator<Item = NodeId> {
        let off = self.offset(ty);
        (off..off + self.count(ty)).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> NodeSpace {
        NodeSpace {
            n_time: 3,
            n_location: 5,
            n_word: 7,
            n_user: 2,
        }
    }

    #[test]
    fn layout_offsets() {
        let s = space();
        assert_eq!(s.len(), 17);
        assert_eq!(s.offset(NodeType::Time), 0);
        assert_eq!(s.offset(NodeType::Location), 3);
        assert_eq!(s.offset(NodeType::Word), 8);
        assert_eq!(s.offset(NodeType::User), 15);
        assert!(!s.is_empty());
    }

    #[test]
    fn node_round_trip() {
        let s = space();
        for ty in NodeType::ALL {
            for local in 0..s.count(ty) {
                let id = s.node(ty, local);
                assert_eq!(s.type_of(id), ty);
                assert_eq!(s.local_of(id), local);
            }
        }
    }

    #[test]
    fn nodes_of_enumerates_type_range() {
        let s = space();
        let words: Vec<NodeId> = s.nodes_of(NodeType::Word).collect();
        assert_eq!(words.len(), 7);
        assert_eq!(words[0], NodeId(8));
        assert_eq!(words[6], NodeId(14));
    }

    #[test]
    fn labels() {
        assert_eq!(NodeType::Time.label(), "T");
        assert_eq!(NodeType::User.label(), "U");
    }

    #[test]
    fn zero_user_space() {
        let s = NodeSpace {
            n_time: 1,
            n_location: 1,
            n_word: 1,
            n_user: 0,
        };
        assert_eq!(s.len(), 3);
        assert_eq!(s.nodes_of(NodeType::User).count(), 0);
        assert_eq!(s.type_of(NodeId(2)), NodeType::Word);
    }
}
