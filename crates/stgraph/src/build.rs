//! Activity-graph construction from a corpus and detected hotspots
//! (Algorithm 1, line 2).

use std::collections::HashMap;

use hotspot::{SpatialHotspots, TemporalHotspots};
use mobility::{Corpus, RecordId};
use serde::{Deserialize, Serialize};

use crate::edge::EdgeType;
use crate::graph::ActivityGraph;
use crate::node::{NodeId, NodeSpace, NodeType};

/// Builder options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildOptions {
    /// Add user vertices and the author's `UT/UW/UL` edges. Off for plain
    /// LINE/CrossMap baselines; on for ACTOR and the `(U)` variants.
    pub include_users: bool,
    /// Also connect *mentioned* users to the record's units, realizing the
    /// inter-record meta-graph instances of Fig. 3b.
    pub include_mentioned_users: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            include_users: true,
            include_mentioned_users: true,
        }
    }
}

/// The units a record contributed to the graph: its temporal and spatial
/// hotspot vertices and its (deduplicated) keyword vertices.
///
/// Kept by the builder so the intra-record bag-of-words objective
/// (footnote 4) can iterate records without re-assigning hotspots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecordUnits {
    /// The source record.
    pub record: RecordId,
    /// Temporal hotspot vertex.
    pub time: NodeId,
    /// Spatial hotspot vertex.
    pub location: NodeId,
    /// Distinct keyword vertices, ascending.
    pub words: Vec<NodeId>,
    /// The author's user vertex (when users are included).
    pub user: Option<NodeId>,
}

/// Builds activity graphs and the per-record unit table.
#[derive(Debug, Clone)]
pub struct ActivityGraphBuilder<'a> {
    corpus: &'a Corpus,
    spatial: &'a SpatialHotspots,
    temporal: &'a TemporalHotspots,
    options: BuildOptions,
}

impl<'a> ActivityGraphBuilder<'a> {
    /// Creates a builder over detected hotspots.
    pub fn new(
        corpus: &'a Corpus,
        spatial: &'a SpatialHotspots,
        temporal: &'a TemporalHotspots,
        options: BuildOptions,
    ) -> Self {
        Self {
            corpus,
            spatial,
            temporal,
            options,
        }
    }

    /// The node space the built graph will use.
    pub fn node_space(&self) -> NodeSpace {
        NodeSpace {
            n_time: self.temporal.len() as u32,
            n_location: self.spatial.len() as u32,
            n_word: self.corpus.vocab().len() as u32,
            n_user: if self.options.include_users {
                self.corpus.num_users()
            } else {
                0
            },
        }
    }

    /// Builds the graph over `record_ids` (normally the training split) and
    /// returns it with the per-record unit assignments.
    ///
    /// Counting is sharded over records ([`par::threads`] workers, each
    /// filling private per-edge-type count maps) and merged in shard order
    /// on the calling thread. Co-occurrence weights are integer-valued, so
    /// the per-key sums are exact and the merged maps — and therefore the
    /// sorted edge lists, CSR layout, and unit table — are bit-identical
    /// to a single-threaded build for any thread count.
    pub fn build(&self, record_ids: &[RecordId]) -> (ActivityGraph, Vec<RecordUnits>) {
        let _span = obs::span!("stgraph.build");

        let space = self.node_space();
        let shards = par::par_map_chunks(record_ids, |_, chunk| {
            let mut acc = ShardAcc::new();
            for &rid in chunk {
                self.accumulate(space, rid, &mut acc);
            }
            acc
        });

        let merged = {
            let _merge_span = obs::span!("stgraph.build.shard_merge");
            let mut it = shards.into_iter();
            let mut total = it.next().unwrap_or_else(ShardAcc::new);
            for acc in it {
                total.merge(acc);
            }
            total
        };
        obs::counter("stgraph.records").add(record_ids.len() as u64);
        obs::counter("stgraph.metagraph.intra").add(merged.intra);
        obs::counter("stgraph.metagraph.inter").add(merged.inter);

        let maps: HashMap<EdgeType, HashMap<(NodeId, NodeId), f64>> = EdgeType::ALL
            .iter()
            .zip(merged.maps)
            .filter(|(_, m)| !m.is_empty())
            .map(|(&ty, m)| (ty, m))
            .collect();
        let graph = ActivityGraph::from_maps(space, maps);
        obs::counter("stgraph.nodes").add(graph.n_nodes() as u64);
        obs::counter("stgraph.edges").add(graph.n_edges() as u64);
        (graph, merged.units)
    }

    /// Counts one record into `acc` (one shard's private accumulator).
    fn accumulate(&self, space: NodeSpace, rid: RecordId, acc: &mut ShardAcc) {
        let r = self.corpus.record(rid);
        let t = space.node(NodeType::Time, self.temporal.assign_timestamp(r.timestamp).0);
        let l = space.node(NodeType::Location, self.spatial.assign(r.location).0);
        // Distinct keywords: each co-occurrence counts once per record
        // (Definition 1's example sets all weights of one record to 1).
        let mut words: Vec<NodeId> = r
            .keywords
            .iter()
            .map(|k| space.node(NodeType::Word, k.0))
            .collect();
        words.sort_unstable();
        words.dedup();

        acc.bump(EdgeType::TL, (t, l));
        for &w in &words {
            acc.bump(EdgeType::LW, (l, w));
            acc.bump(EdgeType::WT, (w, t));
        }
        for (i, &wi) in words.iter().enumerate() {
            for &wj in &words[i + 1..] {
                acc.bump(EdgeType::WW, (wi, wj));
            }
        }

        // Each record realizes one intra-record meta-graph instance
        // (Fig. 3a): its T–L–W clique.
        acc.intra += 1;

        let mut user_node = None;
        if self.options.include_users {
            let author = space.node(NodeType::User, r.user.0);
            user_node = Some(author);
            let connect = |u: NodeId, acc: &mut ShardAcc| {
                acc.bump(EdgeType::UT, (u, t));
                acc.bump(EdgeType::UL, (u, l));
                for &w in &words {
                    acc.bump(EdgeType::UW, (u, w));
                }
            };
            connect(author, acc);
            if self.options.include_mentioned_users {
                for &m in &r.mentions {
                    if m != r.user {
                        connect(space.node(NodeType::User, m.0), acc);
                        // A mentioned user realizes one inter-record
                        // meta-graph instance (Fig. 3b).
                        acc.inter += 1;
                    }
                }
            }
        }

        acc.units.push(RecordUnits {
            record: rid,
            time: t,
            location: l,
            words,
            user: user_node,
        });
    }
}

/// One shard's private co-occurrence counts, unit rows, and meta-graph
/// instance tallies. Map values stay integer-valued, so merging shards by
/// per-key addition is exact regardless of shard count.
struct ShardAcc {
    /// Count maps indexed by [`EdgeType::index`].
    maps: Vec<HashMap<(NodeId, NodeId), f64>>,
    units: Vec<RecordUnits>,
    intra: u64,
    inter: u64,
}

impl ShardAcc {
    fn new() -> Self {
        Self {
            maps: (0..EdgeType::ALL.len()).map(|_| HashMap::new()).collect(),
            units: Vec::new(),
            intra: 0,
            inter: 0,
        }
    }

    #[inline]
    fn bump(&mut self, ty: EdgeType, key: (NodeId, NodeId)) {
        *self.maps[ty.index()].entry(key).or_insert(0.0) += 1.0;
    }

    /// Folds `other` (a later shard) into `self`. Units concatenate in
    /// shard order — shards are contiguous record ranges, so the result is
    /// the serial record order.
    fn merge(&mut self, other: Self) {
        for (total, map) in self.maps.iter_mut().zip(other.maps) {
            for (key, w) in map {
                *total.entry(key).or_insert(0.0) += w;
            }
        }
        self.units.extend(other.units);
        self.intra += other.intra;
        self.inter += other.inter;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot::MeanShiftParams;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::GeoPoint;

    fn setup() -> (Corpus, SpatialHotspots, TemporalHotspots, Vec<RecordId>) {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(42)).unwrap();
        let points: Vec<GeoPoint> = corpus.records().iter().map(|r| r.location).collect();
        let seconds: Vec<f64> = corpus.records().iter().map(|r| r.second_of_day()).collect();
        let spatial =
            SpatialHotspots::detect(&points, MeanShiftParams::with_bandwidth(0.01), 3);
        let temporal =
            TemporalHotspots::detect(&seconds, MeanShiftParams::with_bandwidth(1800.0), 3);
        let ids: Vec<RecordId> = (0..corpus.len()).map(RecordId::from).collect();
        (corpus, spatial, temporal, ids)
    }

    #[test]
    fn build_produces_all_intra_types() {
        let (corpus, spatial, temporal, ids) = setup();
        let b = ActivityGraphBuilder::new(&corpus, &spatial, &temporal, BuildOptions::default());
        let (g, units) = b.build(&ids);
        assert_eq!(units.len(), ids.len());
        for ty in EdgeType::INTRA {
            assert!(g.edges(ty).is_some(), "{ty:?} missing");
        }
        for ty in EdgeType::INTER {
            assert!(g.edges(ty).is_some(), "{ty:?} missing");
        }
        assert!(g.n_edges() > 0);
        assert_eq!(g.space().n_word as usize, corpus.vocab().len());
    }

    #[test]
    fn excluding_users_drops_inter_edges() {
        let (corpus, spatial, temporal, ids) = setup();
        let opts = BuildOptions {
            include_users: false,
            include_mentioned_users: false,
        };
        let b = ActivityGraphBuilder::new(&corpus, &spatial, &temporal, opts);
        let (g, units) = b.build(&ids);
        assert_eq!(g.space().n_user, 0);
        for ty in EdgeType::INTER {
            assert!(g.edges(ty).is_none(), "{ty:?} should be absent");
        }
        assert!(units.iter().all(|u| u.user.is_none()));
    }

    #[test]
    fn mentioned_users_add_edges() {
        let (corpus, spatial, temporal, ids) = setup();
        let with = ActivityGraphBuilder::new(&corpus, &spatial, &temporal, BuildOptions::default())
            .build(&ids)
            .0;
        let without = ActivityGraphBuilder::new(
            &corpus,
            &spatial,
            &temporal,
            BuildOptions {
                include_users: true,
                include_mentioned_users: false,
            },
        )
        .build(&ids)
        .0;
        let w_ut = with.edges(EdgeType::UT).unwrap().total_weight();
        let wo_ut = without.edges(EdgeType::UT).unwrap().total_weight();
        assert!(w_ut > wo_ut, "mentions should add UT weight: {w_ut} vs {wo_ut}");
    }

    #[test]
    fn record_units_reference_valid_nodes() {
        let (corpus, spatial, temporal, ids) = setup();
        let b = ActivityGraphBuilder::new(&corpus, &spatial, &temporal, BuildOptions::default());
        let (g, units) = b.build(&ids);
        let space = *g.space();
        for u in &units {
            assert_eq!(space.type_of(u.time), NodeType::Time);
            assert_eq!(space.type_of(u.location), NodeType::Location);
            for &w in &u.words {
                assert_eq!(space.type_of(w), NodeType::Word);
            }
            // Words are sorted and distinct.
            for pair in u.words.windows(2) {
                assert!(pair[0] < pair[1]);
            }
            assert_eq!(space.type_of(u.user.unwrap()), NodeType::User);
        }
    }

    #[test]
    fn edge_weights_count_records_not_tokens() {
        let (corpus, spatial, temporal, ids) = setup();
        let b = ActivityGraphBuilder::new(&corpus, &spatial, &temporal, BuildOptions::default());
        let (g, units) = b.build(&ids);
        // Total TL weight equals number of records (each record adds one).
        let tl = g.edges(EdgeType::TL).unwrap().total_weight();
        assert_eq!(tl as usize, units.len());
    }

    #[test]
    fn subset_build_scales_down() {
        let (corpus, spatial, temporal, ids) = setup();
        let b = ActivityGraphBuilder::new(&corpus, &spatial, &temporal, BuildOptions::default());
        let (full, _) = b.build(&ids);
        let (half, _) = b.build(&ids[..ids.len() / 2]);
        assert!(half.n_edges() < full.n_edges());
    }
}
