//! Meta-graph schemes (Definition 6, Fig. 3b).
//!
//! A meta-graph is a sub-graphical scheme over typed vertices. `M0` is the
//! intra-record scheme — the T/L/W triangle of co-occurrence inside one
//! record. `M1..M6` are the inter-record schemes: a user-interaction edge
//! `u — u'` with each user connected to a non-empty proper subset of the
//! unit types `{T, L, W}` (the paper categorizes them "according to
//! different combinations of units connected to the users"; Fig. 3b marks
//! an `M4` instance spanning both layers).

use serde::{Deserialize, Serialize};

use crate::edge::EdgeType;
use crate::graph::ActivityGraph;
use crate::node::{NodeId, NodeType};
use crate::usergraph::UserGraph;

/// A subset of the unit types `{T, L, W}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitSet {
    /// Includes temporal units.
    pub time: bool,
    /// Includes spatial units.
    pub location: bool,
    /// Includes textual units.
    pub word: bool,
}

impl UnitSet {
    /// The unit types in the set.
    pub fn types(self) -> Vec<NodeType> {
        let mut v = Vec::new();
        if self.time {
            v.push(NodeType::Time);
        }
        if self.location {
            v.push(NodeType::Location);
        }
        if self.word {
            v.push(NodeType::Word);
        }
        v
    }

    /// Number of unit types in the set.
    pub fn len(self) -> usize {
        self.time as usize + self.location as usize + self.word as usize
    }

    /// True for the empty set.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

/// The meta-graph catalogue of Fig. 3b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetaGraph {
    /// Intra-record T–L–W co-occurrence scheme.
    M0,
    /// Inter-record, users connected to temporal units.
    M1,
    /// Inter-record, users connected to spatial units.
    M2,
    /// Inter-record, users connected to textual units.
    M3,
    /// Inter-record, users connected to temporal + spatial units.
    M4,
    /// Inter-record, users connected to temporal + textual units.
    M5,
    /// Inter-record, users connected to spatial + textual units.
    M6,
}

impl MetaGraph {
    /// All schemes.
    pub const ALL: [MetaGraph; 7] = [
        MetaGraph::M0,
        MetaGraph::M1,
        MetaGraph::M2,
        MetaGraph::M3,
        MetaGraph::M4,
        MetaGraph::M5,
        MetaGraph::M6,
    ];

    /// The inter-record schemes.
    pub const INTER: [MetaGraph; 6] = [
        MetaGraph::M1,
        MetaGraph::M2,
        MetaGraph::M3,
        MetaGraph::M4,
        MetaGraph::M5,
        MetaGraph::M6,
    ];

    /// True for `M1..M6`.
    pub fn is_inter(self) -> bool {
        self != MetaGraph::M0
    }

    /// The unit types each user endpoint connects to (inter schemes), or
    /// the full `{T, L, W}` for `M0`.
    pub fn unit_set(self) -> UnitSet {
        match self {
            MetaGraph::M0 => UnitSet { time: true, location: true, word: true },
            MetaGraph::M1 => UnitSet { time: true, location: false, word: false },
            MetaGraph::M2 => UnitSet { time: false, location: true, word: false },
            MetaGraph::M3 => UnitSet { time: false, location: false, word: true },
            MetaGraph::M4 => UnitSet { time: true, location: true, word: false },
            MetaGraph::M5 => UnitSet { time: true, location: false, word: true },
            MetaGraph::M6 => UnitSet { time: false, location: true, word: true },
        }
    }

    /// Edge types used when training this scheme's objective (Eq. 6):
    /// `M0 → M_intra`; inter schemes map their unit set to `UT/UL/UW`.
    pub fn edge_types(self) -> Vec<EdgeType> {
        if self == MetaGraph::M0 {
            return EdgeType::INTRA.to_vec();
        }
        let us = self.unit_set();
        let mut v = Vec::new();
        if us.time {
            v.push(EdgeType::UT);
        }
        if us.word {
            v.push(EdgeType::UW);
        }
        if us.location {
            v.push(EdgeType::UL);
        }
        v
    }

    /// Counts instances of this scheme spanning `users` and `graph`.
    ///
    /// For an inter scheme with unit set `S`, an *instance* is a user edge
    /// `(u, u')` together with one concrete unit of every type in `S`
    /// attached to each endpoint; the count is therefore
    /// `Σ_{(u,u')} Π_{s∈S} deg_s(u)·deg_s(u')` where `deg_s` is the
    /// unweighted `U–s` degree. `M0` counts records' T–L–W triangles,
    /// which equals the number of TL edges weighted by record support and
    /// is approximated here by total TL weight.
    pub fn count_instances(self, graph: &ActivityGraph, users: &UserGraph) -> f64 {
        if self == MetaGraph::M0 {
            return graph
                .edges(EdgeType::TL)
                .map_or(0.0, |te| te.total_weight());
        }
        let space = graph.space();
        if space.n_user == 0 {
            return 0.0;
        }
        let deg = |u: NodeId, ty: NodeType| -> f64 {
            let et = match ty {
                NodeType::Time => EdgeType::UT,
                NodeType::Location => EdgeType::UL,
                NodeType::Word => EdgeType::UW,
                NodeType::User => unreachable!("unit sets never contain User"),
            };
            graph
                .edges(et)
                .map_or(0.0, |te| te.csr.degree(u) as f64)
        };
        let types = self.unit_set().types();
        // Sharded over the user-interaction edge list; degrees are integer
        // counts so the partial sums (merged in shard order) are exact and
        // the total matches a serial scan bit for bit.
        par::par_accumulate(
            users.edges(),
            || 0.0f64,
            |acc, _, &(a, b, _)| {
                let ua = space.node(NodeType::User, a.0);
                let ub = space.node(NodeType::User, b.0);
                let mut prod = 1.0;
                for &ty in &types {
                    prod *= deg(ua, ty) * deg(ub, ty);
                }
                *acc += prod;
            },
            |total, acc| *total += acc,
        )
    }

    /// Scheme name (`M0` … `M6`).
    pub fn label(self) -> &'static str {
        match self {
            MetaGraph::M0 => "M0",
            MetaGraph::M1 => "M1",
            MetaGraph::M2 => "M2",
            MetaGraph::M3 => "M3",
            MetaGraph::M4 => "M4",
            MetaGraph::M5 => "M5",
            MetaGraph::M6 => "M6",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m0_is_intra_rest_are_inter() {
        assert!(!MetaGraph::M0.is_inter());
        for m in MetaGraph::INTER {
            assert!(m.is_inter());
        }
    }

    #[test]
    fn inter_unit_sets_are_proper_nonempty_subsets() {
        for m in MetaGraph::INTER {
            let s = m.unit_set();
            assert!(!s.is_empty());
            assert!(s.len() < 3, "{m:?} must be a proper subset");
        }
        // All six distinct.
        for (i, a) in MetaGraph::INTER.iter().enumerate() {
            for b in &MetaGraph::INTER[i + 1..] {
                assert_ne!(a.unit_set(), b.unit_set());
            }
        }
    }

    #[test]
    fn edge_types_match_unit_sets() {
        assert_eq!(MetaGraph::M0.edge_types(), EdgeType::INTRA.to_vec());
        assert_eq!(MetaGraph::M1.edge_types(), vec![EdgeType::UT]);
        assert_eq!(
            MetaGraph::M4.edge_types(),
            vec![EdgeType::UT, EdgeType::UL]
        );
        assert_eq!(
            MetaGraph::M6.edge_types(),
            vec![EdgeType::UW, EdgeType::UL]
        );
    }

    #[test]
    fn union_of_inter_edge_types_is_m_inter() {
        let mut all: Vec<EdgeType> = MetaGraph::INTER
            .iter()
            .flat_map(|m| m.edge_types())
            .collect();
        all.sort();
        all.dedup();
        let mut expected = EdgeType::INTER.to_vec();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            MetaGraph::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 7);
    }
}
