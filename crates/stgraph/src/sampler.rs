//! Edge and negative samplers for the training loops (§5.2.3).

use rand::Rng;

use crate::alias::AliasTable;
use crate::edge::EdgeType;
use crate::graph::ActivityGraph;
use crate::node::{NodeId, NodeType};

/// O(1) weighted edge sampler for one edge type of an activity graph.
#[derive(Debug, Clone)]
pub struct EdgeSampler {
    edges: Vec<(NodeId, NodeId)>,
    alias: AliasTable,
}

impl EdgeSampler {
    /// Builds the sampler over `graph`'s edges of `ty`; `None` if that
    /// type has no edges.
    pub fn new(graph: &ActivityGraph, ty: EdgeType) -> Option<Self> {
        let typed = graph.edges(ty)?;
        let weights: Vec<f64> = typed.edges.iter().map(|e| e.weight).collect();
        let alias = AliasTable::new(&weights)?;
        Some(Self {
            edges: typed.edges.iter().map(|e| (e.a, e.b)).collect(),
            alias,
        })
    }

    /// Number of distinct edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the sampler has no edges (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Draws an edge proportionally to its weight. The returned pair is in
    /// canonical endpoint order; the trainer flips direction separately.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, NodeId) {
        self.edges[self.alias.sample(rng)]
    }

    /// The canonical edge list backing the sampler.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// The underlying alias table (determinism checks).
    pub fn alias(&self) -> &AliasTable {
        &self.alias
    }
}

/// Negative-sample table for one (edge type, context side).
///
/// Implements `P(v) ∝ d_v^{3/4}` over the nodes that appear on the context
/// side of the edge type. The paper prints `d_v^4`; the ¾ power is the
/// standard word2vec/LINE noise distribution \[43\] and is what the `4`
/// abbreviates (see DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct NegativeTable {
    nodes: Vec<NodeId>,
    alias: AliasTable,
}

/// Exponent of the noise distribution.
pub const NEGATIVE_POWER: f64 = 0.75;

impl NegativeTable {
    /// Builds a table over all vertices of `side` weighted by their
    /// degree in `ty` raised to [`NEGATIVE_POWER`]. `None` when no vertex
    /// of that type has positive degree.
    pub fn new(graph: &ActivityGraph, ty: EdgeType, side: NodeType) -> Option<Self> {
        Self::with_power(graph, ty, side, NEGATIVE_POWER)
    }

    /// Like [`NegativeTable::new`] with an explicit degree exponent
    /// (`0.0` = uniform over active vertices, `1.0` = proportional to
    /// degree); used by the design-ablation bench.
    pub fn with_power(
        graph: &ActivityGraph,
        ty: EdgeType,
        side: NodeType,
        power: f64,
    ) -> Option<Self> {
        let space = graph.space();
        let mut nodes = Vec::new();
        let mut weights = Vec::new();
        for node in space.nodes_of(side) {
            let d = graph.weighted_degree(node, ty);
            if d > 0.0 {
                nodes.push(node);
                weights.push(d.powf(power));
            }
        }
        let alias = AliasTable::new(&weights)?;
        Some(Self { nodes, alias })
    }

    /// Number of candidate nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Draws a noise node.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        self.nodes[self.alias.sample(rng)]
    }

    /// The candidate nodes backing the table.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The underlying alias table (determinism checks).
    pub fn alias(&self) -> &AliasTable {
        &self.alias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpace;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashMap;

    fn graph() -> ActivityGraph {
        let space = NodeSpace {
            n_time: 2,
            n_location: 2,
            n_word: 3,
            n_user: 0,
        };
        let t0 = space.node(NodeType::Time, 0);
        let t1 = space.node(NodeType::Time, 1);
        let l0 = space.node(NodeType::Location, 0);
        let l1 = space.node(NodeType::Location, 1);
        let w0 = space.node(NodeType::Word, 0);
        let mut maps: HashMap<EdgeType, HashMap<(NodeId, NodeId), f64>> = HashMap::new();
        let tl = maps.entry(EdgeType::TL).or_default();
        tl.insert((t0, l0), 9.0);
        tl.insert((t1, l1), 1.0);
        maps.entry(EdgeType::LW).or_default().insert((l0, w0), 1.0);
        ActivityGraph::from_maps(space, maps)
    }

    #[test]
    fn edge_sampler_respects_weights() {
        let g = graph();
        let s = EdgeSampler::new(&g, EdgeType::TL).unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        let mut heavy = 0usize;
        let n = 50_000;
        for _ in 0..n {
            let (a, _) = s.sample(&mut rng);
            if a == NodeId(0) {
                heavy += 1;
            }
        }
        let f = heavy as f64 / n as f64;
        assert!((f - 0.9).abs() < 0.01, "{f}");
    }

    #[test]
    fn edge_sampler_none_for_absent_type() {
        let g = graph();
        assert!(EdgeSampler::new(&g, EdgeType::WW).is_none());
        assert!(EdgeSampler::new(&g, EdgeType::UT).is_none());
    }

    #[test]
    fn negative_table_covers_active_side_only() {
        let g = graph();
        let t = NegativeTable::new(&g, EdgeType::TL, NodeType::Location).unwrap();
        assert_eq!(t.len(), 2); // both locations have TL degree
        let t = NegativeTable::new(&g, EdgeType::LW, NodeType::Word).unwrap();
        assert_eq!(t.len(), 1); // only w0 has LW degree
        assert!(NegativeTable::new(&g, EdgeType::WW, NodeType::Word).is_none());
    }

    #[test]
    fn negative_table_uses_sublinear_power() {
        let g = graph();
        let t = NegativeTable::new(&g, EdgeType::TL, NodeType::Time).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut heavy = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if t.sample(&mut rng) == NodeId(0) {
                heavy += 1;
            }
        }
        // 9^0.75 / (9^0.75 + 1^0.75) ≈ 0.839, clearly below the raw 0.9.
        let f = heavy as f64 / n as f64;
        let expected = 9f64.powf(0.75) / (9f64.powf(0.75) + 1.0);
        assert!((f - expected).abs() < 0.01, "{f} vs {expected}");
    }
}
