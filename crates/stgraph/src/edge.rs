//! Typed edges of the activity graph.

use serde::{Deserialize, Serialize};

use crate::node::NodeType;

/// Edge type (`O_e = {TL, LW, WT, WW}` of Definition 1, plus the
/// user-to-unit types `UT/UW/UL` of the inter-record meta-graph, Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeType {
    /// Temporal unit — spatial unit co-occurrence.
    TL,
    /// Spatial unit — keyword co-occurrence.
    LW,
    /// Keyword — temporal unit co-occurrence.
    WT,
    /// Keyword — keyword co-occurrence.
    WW,
    /// User — temporal unit.
    UT,
    /// User — keyword.
    UW,
    /// User — spatial unit.
    UL,
}

impl EdgeType {
    /// All edge types, intra-record first then inter-record.
    pub const ALL: [EdgeType; 7] = [
        EdgeType::TL,
        EdgeType::LW,
        EdgeType::WT,
        EdgeType::WW,
        EdgeType::UT,
        EdgeType::UW,
        EdgeType::UL,
    ];

    /// The intra-record edge types `M_intra = {TL, LW, WT, WW}` (Eq. 6).
    pub const INTRA: [EdgeType; 4] = [EdgeType::TL, EdgeType::LW, EdgeType::WT, EdgeType::WW];

    /// The inter-record edge types `M_inter = {UT, UW, UL}` (Eq. 6).
    pub const INTER: [EdgeType; 3] = [EdgeType::UT, EdgeType::UW, EdgeType::UL];

    /// Dense index in [`EdgeType::ALL`] order, for array-backed per-type
    /// tables such as [`crate::EdgeTypeMap`].
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The two endpoint types, in canonical storage order `(first, second)`.
    pub fn endpoints(self) -> (NodeType, NodeType) {
        match self {
            EdgeType::TL => (NodeType::Time, NodeType::Location),
            EdgeType::LW => (NodeType::Location, NodeType::Word),
            EdgeType::WT => (NodeType::Word, NodeType::Time),
            EdgeType::WW => (NodeType::Word, NodeType::Word),
            EdgeType::UT => (NodeType::User, NodeType::Time),
            EdgeType::UW => (NodeType::User, NodeType::Word),
            EdgeType::UL => (NodeType::User, NodeType::Location),
        }
    }

    /// The edge type connecting two vertex types, if any.
    pub fn between(a: NodeType, b: NodeType) -> Option<EdgeType> {
        use NodeType::*;
        match (a, b) {
            (Time, Location) | (Location, Time) => Some(EdgeType::TL),
            (Location, Word) | (Word, Location) => Some(EdgeType::LW),
            (Word, Time) | (Time, Word) => Some(EdgeType::WT),
            (Word, Word) => Some(EdgeType::WW),
            (User, Time) | (Time, User) => Some(EdgeType::UT),
            (User, Word) | (Word, User) => Some(EdgeType::UW),
            (User, Location) | (Location, User) => Some(EdgeType::UL),
            _ => None,
        }
    }

    /// True for the user-to-unit (inter-record) types.
    pub fn is_inter(self) -> bool {
        matches!(self, EdgeType::UT | EdgeType::UW | EdgeType::UL)
    }

    /// Two-letter label (`TL`, `UW`, …).
    pub fn label(self) -> &'static str {
        match self {
            EdgeType::TL => "TL",
            EdgeType::LW => "LW",
            EdgeType::WT => "WT",
            EdgeType::WW => "WW",
            EdgeType::UT => "UT",
            EdgeType::UW => "UW",
            EdgeType::UL => "UL",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeType::*;

    #[test]
    fn endpoints_match_labels() {
        for e in EdgeType::ALL {
            let (a, b) = e.endpoints();
            let label: String = format!("{}{}", a.label(), b.label());
            assert_eq!(label, e.label());
        }
    }

    #[test]
    fn between_is_symmetric() {
        for a in NodeType::ALL {
            for b in NodeType::ALL {
                assert_eq!(EdgeType::between(a, b), EdgeType::between(b, a));
            }
        }
        assert_eq!(EdgeType::between(Time, Time), None);
        assert_eq!(EdgeType::between(User, User), None);
        assert_eq!(EdgeType::between(Word, Word), Some(EdgeType::WW));
    }

    #[test]
    fn intra_inter_partition() {
        for e in EdgeType::INTRA {
            assert!(!e.is_inter());
        }
        for e in EdgeType::INTER {
            assert!(e.is_inter());
        }
        assert_eq!(EdgeType::INTRA.len() + EdgeType::INTER.len(), EdgeType::ALL.len());
    }
}
