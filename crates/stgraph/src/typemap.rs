//! Dense per-type tables keyed by [`EdgeType`] / [`NodeType`].
//!
//! The SGD hot loop looks up an edge sampler and a negative table for
//! every single training step; hashing a two-variant key there is pure
//! overhead when the key spaces are tiny and fixed. These maps store one
//! `Option<T>` slot per enum variant ([`EdgeType::index`] /
//! [`NodeType::index`]), so a lookup is an array index — no hashing, no
//! probing, and the whole table of references fits in a cache line.

use crate::edge::EdgeType;
use crate::node::NodeType;

/// A map from [`EdgeType`] to `T`, backed by a fixed 7-slot array.
#[derive(Debug, Clone, Default)]
pub struct EdgeTypeMap<T> {
    slots: [Option<T>; 7],
}

impl<T> EdgeTypeMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            slots: [None, None, None, None, None, None, None],
        }
    }

    /// Inserts a value, returning the previous one if present.
    pub fn insert(&mut self, ty: EdgeType, value: T) -> Option<T> {
        self.slots[ty.index()].replace(value)
    }

    /// The value for `ty`, if present.
    #[inline]
    pub fn get(&self, ty: EdgeType) -> Option<&T> {
        self.slots[ty.index()].as_ref()
    }

    /// Mutable access to the value for `ty`, if present.
    #[inline]
    pub fn get_mut(&mut self, ty: EdgeType) -> Option<&mut T> {
        self.slots[ty.index()].as_mut()
    }

    /// The value for `ty`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, ty: EdgeType, default: impl FnOnce() -> T) -> &mut T {
        self.slots[ty.index()].get_or_insert_with(default)
    }

    /// Number of populated slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no slot is populated.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Iterates populated `(EdgeType, &T)` entries in [`EdgeType::ALL`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeType, &T)> {
        EdgeType::ALL
            .into_iter()
            .filter_map(|ty| self.get(ty).map(|v| (ty, v)))
    }
}

/// A map from [`NodeType`] to `T`, backed by a fixed 4-slot array.
#[derive(Debug, Clone, Default)]
pub struct NodeTypeMap<T> {
    slots: [Option<T>; 4],
}

impl<T> NodeTypeMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            slots: [None, None, None, None],
        }
    }

    /// Inserts a value, returning the previous one if present.
    pub fn insert(&mut self, ty: NodeType, value: T) -> Option<T> {
        self.slots[ty.index()].replace(value)
    }

    /// The value for `ty`, if present.
    #[inline]
    pub fn get(&self, ty: NodeType) -> Option<&T> {
        self.slots[ty.index()].as_ref()
    }

    /// Mutable access to the value for `ty`, if present.
    #[inline]
    pub fn get_mut(&mut self, ty: NodeType) -> Option<&mut T> {
        self.slots[ty.index()].as_mut()
    }

    /// Number of populated slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no slot is populated.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Iterates populated `(NodeType, &T)` entries in [`NodeType::ALL`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeType, &T)> {
        NodeType::ALL
            .into_iter()
            .filter_map(|ty| self.get(ty).map(|v| (ty, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_dense_and_match_all_order() {
        for (i, ty) in EdgeType::ALL.into_iter().enumerate() {
            assert_eq!(ty.index(), i);
        }
        for (i, ty) in NodeType::ALL.into_iter().enumerate() {
            assert_eq!(ty.index(), i);
        }
    }

    #[test]
    fn edge_map_insert_get_iter() {
        let mut m = EdgeTypeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(EdgeType::WW, 10), None);
        assert_eq!(m.insert(EdgeType::TL, 20), None);
        assert_eq!(m.insert(EdgeType::WW, 11), Some(10));
        assert_eq!(m.get(EdgeType::WW), Some(&11));
        assert_eq!(m.get(EdgeType::UT), None);
        *m.get_mut(EdgeType::TL).unwrap() += 1;
        assert_eq!(m.len(), 2);
        // ALL order: TL before WW.
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(EdgeType::TL, &21), (EdgeType::WW, &11)]);
    }

    #[test]
    fn node_map_get_or_insert_nests() {
        let mut m: EdgeTypeMap<NodeTypeMap<u32>> = EdgeTypeMap::new();
        m.get_or_insert_with(EdgeType::LW, NodeTypeMap::new)
            .insert(NodeType::Word, 7);
        m.get_or_insert_with(EdgeType::LW, NodeTypeMap::new)
            .insert(NodeType::Location, 8);
        let inner = m.get(EdgeType::LW).unwrap();
        assert_eq!(inner.get(NodeType::Word), Some(&7));
        assert_eq!(inner.get(NodeType::Location), Some(&8));
        assert_eq!(inner.get(NodeType::Time), None);
        assert_eq!(inner.len(), 2);
        assert!(!inner.is_empty());
        let entries: Vec<_> = inner.iter().collect();
        assert_eq!(entries[0].0, NodeType::Location);
    }
}
