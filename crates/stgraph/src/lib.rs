//! Graph substrate of the ACTOR reproduction (paper §4).
//!
//! Two graphs are constructed from raw mobile data:
//!
//! * the heterogeneous **activity graph** (Definition 1) over spatial,
//!   temporal, and textual units (plus user vertices for the `(U)`
//!   variants), with edge types `TL/LW/WT/WW/UT/UW/UL` weighted by
//!   co-occurrence counts;
//! * the homogeneous **user interaction graph** (Definition 2) weighted by
//!   mention counts.
//!
//! On top of them this crate provides O(1) weighted edge sampling via
//! alias tables ([`alias`]), degree^¾ negative tables ([`sampler`]), CSR
//! adjacency per edge type ([`adjacency`]), and the meta-graph schemes
//! `M0..M6` of Fig. 3b ([`metagraph`]).

pub mod adjacency;
pub mod alias;
pub mod build;
pub mod edge;
pub mod graph;
pub mod metagraph;
pub mod node;
pub mod sampler;
pub mod typemap;
pub mod usergraph;

pub use alias::AliasTable;
pub use build::{ActivityGraphBuilder, BuildOptions};
pub use edge::EdgeType;
pub use graph::ActivityGraph;
pub use metagraph::{MetaGraph, UnitSet};
pub use node::{NodeId, NodeSpace, NodeType};
pub use sampler::{EdgeSampler, NegativeTable};
pub use typemap::{EdgeTypeMap, NodeTypeMap};
pub use usergraph::UserGraph;
