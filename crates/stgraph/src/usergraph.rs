//! The homogeneous user interaction graph (Definition 2).

use std::collections::HashMap;

use mobility::{Corpus, RecordId, UserId};
use serde::{Deserialize, Serialize};

/// User interaction graph: vertices are users, an edge's weight is the
/// number of mentions between the pair (symmetrized).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserGraph {
    n_users: u32,
    /// Canonical edge list with `a < b`.
    edges: Vec<(UserId, UserId, f64)>,
    /// CSR offsets/neighbors over user ids.
    offsets: Vec<u32>,
    neighbors: Vec<(UserId, f64)>,
}

impl UserGraph {
    /// Builds the graph from the mentions of the given records of `corpus`
    /// (pass the training split's record ids to avoid test leakage).
    pub fn build(corpus: &Corpus, record_ids: &[RecordId]) -> Self {
        // Sharded over records into private count maps merged per key in
        // shard order; mention counts are integers, so the merged weights
        // (and the sorted edge list below) match a serial build exactly.
        let weights = par::par_accumulate(
            record_ids,
            HashMap::<(UserId, UserId), f64>::new,
            |acc, _, &rid| {
                let r = corpus.record(rid);
                for &m in &r.mentions {
                    if m == r.user {
                        continue; // self-mentions carry no interaction signal
                    }
                    let key = if r.user < m { (r.user, m) } else { (m, r.user) };
                    *acc.entry(key).or_insert(0.0) += 1.0;
                }
            },
            |total, acc| {
                for (key, w) in acc {
                    *total.entry(key).or_insert(0.0) += w;
                }
            },
        );
        Self::from_weights(corpus.num_users(), weights)
    }

    fn from_weights(n_users: u32, weights: HashMap<(UserId, UserId), f64>) -> Self {
        let mut edges: Vec<(UserId, UserId, f64)> = weights
            .into_iter()
            .map(|((a, b), w)| (a, b, w))
            .collect();
        edges.sort_by_key(|&(a, b, _)| (a, b));

        let mut degree = vec![0u32; n_users as usize];
        for &(a, b, _) in &edges {
            degree[a.idx()] += 1;
            degree[b.idx()] += 1;
        }
        let mut offsets = Vec::with_capacity(n_users as usize + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n_users as usize].to_vec();
        let mut neighbors = vec![(UserId(0), 0.0); acc as usize];
        for &(a, b, w) in &edges {
            neighbors[cursor[a.idx()] as usize] = (b, w);
            cursor[a.idx()] += 1;
            neighbors[cursor[b.idx()] as usize] = (a, w);
            cursor[b.idx()] += 1;
        }
        Self {
            n_users,
            edges,
            offsets,
            neighbors,
        }
    }

    /// Number of user vertices (including isolated users).
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Number of distinct interaction edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// True if no interactions were observed (the TWEET/4SQ case, §6.3).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The canonical edge list.
    pub fn edges(&self) -> &[(UserId, UserId, f64)] {
        &self.edges
    }

    /// Neighbors of `user` with mention weights.
    pub fn neighbors(&self, user: UserId) -> &[(UserId, f64)] {
        let lo = self.offsets[user.idx()] as usize;
        let hi = self.offsets[user.idx() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Weighted degree of `user`.
    pub fn weighted_degree(&self, user: UserId) -> f64 {
        self.neighbors(user).iter().map(|(_, w)| w).sum()
    }

    /// Users with at least one interaction.
    pub fn connected_users(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.n_users)
            .map(UserId)
            .filter(|u| !self.neighbors(*u).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::{GeoPoint, Record, Vocabulary};

    fn corpus_with_mentions() -> Corpus {
        let recs = vec![
            rec(0, &[1]),       // 0 -> 1
            rec(1, &[0]),       // 1 -> 0 (same pair again)
            rec(2, &[0, 1]),    // 2 -> 0, 2 -> 1
            rec(3, &[3]),       // self-mention, ignored
            rec(1, &[]),        // no mentions
        ];
        Corpus::new("t", recs, Vocabulary::new(), 5).unwrap()
    }

    fn rec(user: u32, mentions: &[u32]) -> Record {
        Record {
            id: RecordId(0),
            user: UserId(user),
            timestamp: 0,
            location: GeoPoint::new(0.0, 0.0),
            keywords: vec![],
            mentions: mentions.iter().map(|&m| UserId(m)).collect(),
        }
    }

    fn all_ids(c: &Corpus) -> Vec<RecordId> {
        (0..c.len()).map(RecordId::from).collect()
    }

    #[test]
    fn build_symmetrizes_and_counts() {
        let c = corpus_with_mentions();
        let g = UserGraph::build(&c, &all_ids(&c));
        assert_eq!(g.n_users(), 5);
        assert_eq!(g.n_edges(), 3);
        // Pair (0,1) mentioned twice (once each direction).
        let e01 = g
            .edges()
            .iter()
            .find(|&&(a, b, _)| a == UserId(0) && b == UserId(1))
            .unwrap();
        assert_eq!(e01.2, 2.0);
        assert_eq!(g.weighted_degree(UserId(2)), 2.0);
        assert_eq!(g.weighted_degree(UserId(4)), 0.0);
    }

    #[test]
    fn self_mentions_ignored() {
        let c = corpus_with_mentions();
        let g = UserGraph::build(&c, &all_ids(&c));
        assert!(g.neighbors(UserId(3)).is_empty());
    }

    #[test]
    fn neighbors_are_symmetric() {
        let c = corpus_with_mentions();
        let g = UserGraph::build(&c, &all_ids(&c));
        for u in 0..5 {
            for &(v, w) in g.neighbors(UserId(u)) {
                assert!(g
                    .neighbors(v)
                    .iter()
                    .any(|&(back, bw)| back == UserId(u) && bw == w));
            }
        }
    }

    #[test]
    fn connected_users_excludes_isolated() {
        let c = corpus_with_mentions();
        let g = UserGraph::build(&c, &all_ids(&c));
        let connected: Vec<UserId> = g.connected_users().collect();
        assert_eq!(connected, vec![UserId(0), UserId(1), UserId(2)]);
    }

    #[test]
    fn restricting_records_restricts_edges() {
        let c = corpus_with_mentions();
        let g = UserGraph::build(&c, &[RecordId(0)]);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn mention_free_corpus_gives_empty_graph() {
        let recs = vec![rec(0, &[]), rec(1, &[])];
        let c = Corpus::new("t", recs, Vocabulary::new(), 2).unwrap();
        let g = UserGraph::build(&c, &all_ids(&c));
        assert!(g.is_empty());
        assert_eq!(g.connected_users().count(), 0);
    }
}
