//! The heterogeneous activity graph (Definition 1).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::adjacency::{Csr, Edge};
use crate::edge::EdgeType;
use crate::node::{NodeId, NodeSpace, NodeType};

/// Edges of one type plus their CSR view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypedEdges {
    /// Canonical undirected edge list (each pair stored once).
    pub edges: Vec<Edge>,
    /// Symmetric adjacency over the full node space.
    pub csr: Csr,
}

impl TypedEdges {
    fn build(n_nodes: usize, map: &HashMap<(NodeId, NodeId), f64>) -> Self {
        let mut edges: Vec<Edge> = map
            .iter()
            .map(|(&(a, b), &weight)| Edge { a, b, weight })
            .collect();
        // Canonical sort: the edge list (and the CSR derived from it) is
        // independent of the map's iteration order.
        edges.sort_by_key(|e| (e.a, e.b));
        let csr = Csr::build(n_nodes, &edges);
        Self { edges, csr }
    }

    /// Total weight over this type's edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }
}

/// The activity graph: a typed node space plus one [`TypedEdges`] per
/// edge type with positive support.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityGraph {
    space: NodeSpace,
    per_type: Vec<Option<TypedEdges>>, // indexed by EdgeType order in ALL
}

impl ActivityGraph {
    /// Assembles the graph from accumulated co-occurrence maps.
    ///
    /// Keys must be in the edge type's canonical endpoint order; `WW` keys
    /// must have `a < b`. The per-type edge-list sorts and CSR builds are
    /// independent, so they run in parallel (order-preserving over
    /// [`EdgeType::ALL`]); each table is deterministic given its map.
    pub(crate) fn from_maps(
        space: NodeSpace,
        mut maps: HashMap<EdgeType, HashMap<(NodeId, NodeId), f64>>,
    ) -> Self {
        let _span = obs::span!("stgraph.build.tables");
        let n = space.len();
        let type_maps: Vec<Option<HashMap<(NodeId, NodeId), f64>>> = EdgeType::ALL
            .iter()
            .map(|ty| maps.remove(ty).filter(|m| !m.is_empty()))
            .collect();
        let per_type = par::par_map(&type_maps, |_, m| {
            m.as_ref().map(|m| TypedEdges::build(n, m))
        });
        Self { space, per_type }
    }

    /// The node layout.
    pub fn space(&self) -> &NodeSpace {
        &self.space
    }

    /// Edges of `ty`, if that type has any.
    pub fn edges(&self, ty: EdgeType) -> Option<&TypedEdges> {
        let idx = EdgeType::ALL.iter().position(|t| *t == ty).expect("known type");
        self.per_type[idx].as_ref()
    }

    /// Edge types with at least one edge.
    pub fn present_types(&self) -> Vec<EdgeType> {
        EdgeType::ALL
            .iter()
            .copied()
            .filter(|&t| self.edges(t).is_some())
            .collect()
    }

    /// Total number of vertices (|V| of Table 1).
    pub fn n_nodes(&self) -> usize {
        self.space.len()
    }

    /// Total number of distinct edges across all types (|E| of Table 1).
    pub fn n_edges(&self) -> usize {
        self.per_type
            .iter()
            .flatten()
            .map(|t| t.edges.len())
            .sum()
    }

    /// Weighted degree of `node` within edge type `ty` (`d_i^e`, Eq. 3).
    pub fn weighted_degree(&self, node: NodeId, ty: EdgeType) -> f64 {
        self.edges(ty).map_or(0.0, |t| t.csr.weighted_degree(node))
    }

    /// Per-type vertex and edge counts for reports.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            n_time: self.space.n_time as usize,
            n_location: self.space.n_location as usize,
            n_word: self.space.n_word as usize,
            n_user: self.space.n_user as usize,
            edges_per_type: EdgeType::ALL
                .iter()
                .map(|&t| (t, self.edges(t).map_or(0, |e| e.edges.len())))
                .collect(),
        }
    }

    /// Convenience: the user-graph neighbor of a unit with the largest
    /// connecting weight across the three inter edge types, used by the
    /// hierarchical initialization (§5.2.1: "choose the user with the
    /// highest weight").
    pub fn strongest_user_of(&self, unit: NodeId) -> Option<NodeId> {
        debug_assert!(self.space.type_of(unit) != NodeType::User);
        let mut best: Option<(NodeId, f64)> = None;
        for ty in EdgeType::INTER {
            if let Some(te) = self.edges(ty) {
                if let Some((n, w)) = te.csr.max_weight_neighbor(unit) {
                    // The neighbor of a unit in an inter type is a user.
                    if best.is_none_or(|(_, bw)| w > bw) {
                        best = Some((n, w));
                    }
                }
            }
        }
        best.map(|(n, _)| n)
    }
}

/// Aggregate statistics of an activity graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Temporal hotspot vertices.
    pub n_time: usize,
    /// Spatial hotspot vertices.
    pub n_location: usize,
    /// Keyword vertices.
    pub n_word: usize,
    /// User vertices.
    pub n_user: usize,
    /// Edge counts by type.
    pub edges_per_type: Vec<(EdgeType, usize)>,
}

impl GraphStats {
    /// Total vertices.
    pub fn n_nodes(&self) -> usize {
        self.n_time + self.n_location + self.n_word + self.n_user
    }

    /// Total edges.
    pub fn n_edges(&self) -> usize {
        self.edges_per_type.iter().map(|(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> ActivityGraph {
        // 2 times, 2 locations, 3 words, 1 user.
        let space = NodeSpace {
            n_time: 2,
            n_location: 2,
            n_word: 3,
            n_user: 1,
        };
        let t0 = space.node(NodeType::Time, 0);
        let l0 = space.node(NodeType::Location, 0);
        let w0 = space.node(NodeType::Word, 0);
        let w1 = space.node(NodeType::Word, 1);
        let u0 = space.node(NodeType::User, 0);
        let mut maps: HashMap<EdgeType, HashMap<(NodeId, NodeId), f64>> = HashMap::new();
        maps.entry(EdgeType::TL).or_default().insert((t0, l0), 3.0);
        maps.entry(EdgeType::WW).or_default().insert((w0, w1), 1.0);
        maps.entry(EdgeType::UW).or_default().insert((u0, w0), 2.0);
        maps.entry(EdgeType::UT).or_default().insert((u0, t0), 4.0);
        ActivityGraph::from_maps(space, maps)
    }

    #[test]
    fn counts_and_presence() {
        let g = tiny_graph();
        assert_eq!(g.n_nodes(), 8);
        assert_eq!(g.n_edges(), 4);
        assert!(g.edges(EdgeType::TL).is_some());
        assert!(g.edges(EdgeType::LW).is_none());
        assert_eq!(
            g.present_types(),
            vec![EdgeType::TL, EdgeType::WW, EdgeType::UT, EdgeType::UW]
        );
    }

    #[test]
    fn weighted_degrees() {
        let g = tiny_graph();
        let space = *g.space();
        let t0 = space.node(NodeType::Time, 0);
        assert_eq!(g.weighted_degree(t0, EdgeType::TL), 3.0);
        assert_eq!(g.weighted_degree(t0, EdgeType::UT), 4.0);
        assert_eq!(g.weighted_degree(t0, EdgeType::WW), 0.0);
    }

    #[test]
    fn strongest_user_prefers_highest_weight() {
        let g = tiny_graph();
        let space = *g.space();
        let t0 = space.node(NodeType::Time, 0);
        let w0 = space.node(NodeType::Word, 0);
        let u0 = space.node(NodeType::User, 0);
        assert_eq!(g.strongest_user_of(t0), Some(u0));
        assert_eq!(g.strongest_user_of(w0), Some(u0));
        let w2 = space.node(NodeType::Word, 2);
        assert_eq!(g.strongest_user_of(w2), None);
    }

    #[test]
    fn stats_totals() {
        let g = tiny_graph();
        let s = g.stats();
        assert_eq!(s.n_nodes(), 8);
        assert_eq!(s.n_edges(), 4);
        assert_eq!(s.n_word, 3);
    }

    #[test]
    fn total_weight() {
        let g = tiny_graph();
        assert_eq!(g.edges(EdgeType::TL).unwrap().total_weight(), 3.0);
    }
}
