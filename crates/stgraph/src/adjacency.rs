//! Weighted edge lists and CSR adjacency.
//!
//! Each edge type of the activity graph stores its (undirected) edges once
//! in a canonical list plus a symmetric CSR view for neighbor scans
//! (meta-path walks, degree computation, initialization).

use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// An undirected weighted edge between global node ids.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint (canonical order: the edge type's first node type).
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Aggregated co-occurrence weight.
    pub weight: f64,
}

/// Compressed sparse row view over an undirected edge list.
///
/// Rows are indexed by global node id over the *whole* node space, so
/// lookups need no per-type translation; nodes not touched by the edge
/// type simply have empty rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    weights: Vec<f64>,
}

impl Csr {
    /// Builds the symmetric CSR of `edges` over `n_nodes` rows.
    pub fn build(n_nodes: usize, edges: &[Edge]) -> Self {
        let mut degree = vec![0u32; n_nodes];
        for e in edges {
            degree[e.a.idx()] += 1;
            degree[e.b.idx()] += 1;
        }
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n_nodes].to_vec();
        let mut neighbors = vec![NodeId(0); acc as usize];
        let mut weights = vec![0.0f64; acc as usize];
        for e in edges {
            let ca = cursor[e.a.idx()] as usize;
            neighbors[ca] = e.b;
            weights[ca] = e.weight;
            cursor[e.a.idx()] += 1;
            let cb = cursor[e.b.idx()] as usize;
            neighbors[cb] = e.a;
            weights[cb] = e.weight;
            cursor[e.b.idx()] += 1;
        }
        Self {
            offsets,
            neighbors,
            weights,
        }
    }

    /// Number of rows (nodes).
    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbors of `node` with weights.
    pub fn row(&self, node: NodeId) -> (&[NodeId], &[f64]) {
        let lo = self.offsets[node.idx()] as usize;
        let hi = self.offsets[node.idx() + 1] as usize;
        (&self.neighbors[lo..hi], &self.weights[lo..hi])
    }

    /// Number of incident edge endpoints at `node` (its unweighted degree
    /// within this edge type).
    pub fn degree(&self, node: NodeId) -> usize {
        (self.offsets[node.idx() + 1] - self.offsets[node.idx()]) as usize
    }

    /// Sum of incident edge weights at `node` (`d_i^e` of Eq. 3).
    pub fn weighted_degree(&self, node: NodeId) -> f64 {
        let (_, w) = self.row(node);
        w.iter().sum()
    }

    /// The neighbor of `node` with the maximum edge weight, if any.
    pub fn max_weight_neighbor(&self, node: NodeId) -> Option<(NodeId, f64)> {
        let (ns, ws) = self.row(node);
        ns.iter()
            .zip(ws)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(&n, &w)| (n, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        vec![
            Edge {
                a: NodeId(0),
                b: NodeId(1),
                weight: 2.0,
            },
            Edge {
                a: NodeId(0),
                b: NodeId(2),
                weight: 1.0,
            },
            Edge {
                a: NodeId(1),
                b: NodeId(2),
                weight: 5.0,
            },
        ]
    }

    #[test]
    fn csr_is_symmetric() {
        let csr = Csr::build(4, &edges());
        assert_eq!(csr.n_rows(), 4);
        let (n0, w0) = csr.row(NodeId(0));
        assert_eq!(n0, &[NodeId(1), NodeId(2)]);
        assert_eq!(w0, &[2.0, 1.0]);
        let (n2, _) = csr.row(NodeId(2));
        assert_eq!(n2.len(), 2);
        assert!(n2.contains(&NodeId(0)) && n2.contains(&NodeId(1)));
        // Node 3 untouched.
        assert_eq!(csr.degree(NodeId(3)), 0);
        assert_eq!(csr.row(NodeId(3)).0.len(), 0);
    }

    #[test]
    fn degrees_and_weighted_degrees() {
        let csr = Csr::build(4, &edges());
        assert_eq!(csr.degree(NodeId(0)), 2);
        assert_eq!(csr.weighted_degree(NodeId(0)), 3.0);
        assert_eq!(csr.weighted_degree(NodeId(1)), 7.0);
        assert_eq!(csr.weighted_degree(NodeId(3)), 0.0);
    }

    #[test]
    fn max_weight_neighbor() {
        let csr = Csr::build(4, &edges());
        assert_eq!(csr.max_weight_neighbor(NodeId(0)), Some((NodeId(1), 2.0)));
        assert_eq!(csr.max_weight_neighbor(NodeId(2)), Some((NodeId(1), 5.0)));
        assert_eq!(csr.max_weight_neighbor(NodeId(3)), None);
    }

    #[test]
    fn empty_edge_list() {
        let csr = Csr::build(3, &[]);
        for i in 0..3 {
            assert_eq!(csr.degree(NodeId(i)), 0);
        }
    }
}
