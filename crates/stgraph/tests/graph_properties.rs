//! Property tests for graph construction: the activity graph built from
//! arbitrary small corpora satisfies Definition 1's structural invariants.

use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::{Corpus, GeoPoint, KeywordId, Record, RecordId, UserId, Vocabulary};
use proptest::prelude::*;
use stgraph::{ActivityGraphBuilder, BuildOptions, EdgeType};

/// A compact record tuple: (user, lat-cell, lon-cell, hour, keywords,
/// mention).
type Row = (u8, u8, u8, u8, Vec<u8>, Option<u8>);

/// Builds a corpus from compact tuples.
fn corpus_from(rows: Vec<Row>, n_users: u32, vocab_size: u8) -> Corpus {
    let mut vocab = Vocabulary::new();
    for i in 0..vocab_size.max(1) {
        vocab.intern(&format!("kw{i}"));
    }
    let records: Vec<Record> = rows
        .into_iter()
        .enumerate()
        .map(|(i, (user, latc, lonc, hour, kws, mention))| Record {
            id: RecordId::from(i),
            user: UserId(user as u32 % n_users),
            timestamp: hour as i64 % 24 * 3600,
            location: GeoPoint::new(
                (latc % 8) as f64 * 0.1,
                (lonc % 8) as f64 * 0.1,
            ),
            keywords: kws
                .into_iter()
                .map(|k| KeywordId(k as u32 % vocab_size.max(1) as u32))
                .collect(),
            mentions: mention
                .map(|m| vec![UserId(m as u32 % n_users)])
                .unwrap_or_default(),
        })
        .collect();
    Corpus::new("prop", records, vocab, n_users).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn activity_graph_invariants(
        rows in prop::collection::vec(
            (0u8..6, 0u8..8, 0u8..8, 0u8..24,
             prop::collection::vec(0u8..12, 1..6),
             prop::option::of(0u8..6)),
            1..40,
        )
    ) {
        let corpus = corpus_from(rows, 6, 12);
        let ids: Vec<RecordId> = (0..corpus.len()).map(RecordId::from).collect();
        let points: Vec<GeoPoint> = corpus.records().iter().map(|r| r.location).collect();
        let seconds: Vec<f64> =
            corpus.records().iter().map(|r| r.second_of_day()).collect();
        let spatial =
            SpatialHotspots::detect(&points, MeanShiftParams::with_bandwidth(0.05), 1);
        let temporal =
            TemporalHotspots::detect(&seconds, MeanShiftParams::with_bandwidth(3600.0), 1);
        let builder =
            ActivityGraphBuilder::new(&corpus, &spatial, &temporal, BuildOptions::default());
        let (graph, units) = builder.build(&ids);
        let space = graph.space();

        // Unit table covers every record.
        prop_assert_eq!(units.len(), corpus.len());

        // Every edge connects the endpoint types its edge type declares,
        // and weights are positive integers ≤ record count.
        for ty in EdgeType::ALL {
            let Some(te) = graph.edges(ty) else { continue };
            let (ta, tb) = ty.endpoints();
            for e in &te.edges {
                prop_assert_eq!(space.type_of(e.a), ta);
                prop_assert_eq!(space.type_of(e.b), tb);
                prop_assert!(e.weight >= 1.0);
                prop_assert!(e.weight <= corpus.len() as f64);
                prop_assert!((e.weight - e.weight.round()).abs() < 1e-9);
                if ty == EdgeType::WW {
                    prop_assert!(e.a < e.b, "WW edges stored canonically");
                } else {
                    prop_assert_ne!(e.a, e.b);
                }
            }
        }

        // TL total weight counts records exactly.
        let tl = graph.edges(EdgeType::TL).map_or(0.0, |t| t.total_weight());
        prop_assert_eq!(tl as usize, corpus.len());

        // The UT weight equals records plus extra links from mentions of
        // other users (each mention adds one user-unit connection).
        let ut = graph.edges(EdgeType::UT).map_or(0.0, |t| t.total_weight());
        let expected_ut: usize = corpus
            .records()
            .iter()
            .map(|r| 1 + r.mentions.iter().filter(|&&m| m != r.user).count())
            .sum();
        prop_assert_eq!(ut as usize, expected_ut);
    }
}
