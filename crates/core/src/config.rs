//! ACTOR hyper-parameters (§6.1.3).

use embed::SgdParams;
use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// Full configuration of the ACTOR pipeline.
///
/// Defaults follow §6.1.3 (`η = 0.02`, `K = 1`, `m = 256`,
/// `MaxEpoch = 100`) with the embedding dimension reduced from 300 to 128
/// to fit the laptop-scale corpora (DESIGN.md §3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorConfig {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Learning rate `η`.
    pub learning_rate: f32,
    /// Negative samples `K`.
    pub negatives: usize,
    /// Mini-batch size `m` of Algorithm 1 (edges sampled per edge type per
    /// epoch step).
    pub batch_size: usize,
    /// `MaxEpoch`.
    pub max_epochs: usize,
    /// Batches per edge type per epoch. Algorithm 1 reads as one batch per
    /// type per epoch; with realistic graph sizes the authors' effective
    /// sample count must be far larger, so this multiplier sets how many
    /// `m`-sized batches each type receives each epoch.
    pub batches_per_type: usize,
    /// Hogwild worker threads.
    pub threads: usize,
    /// Mean-shift bandwidth for spatial hotspots, degrees.
    pub spatial_bandwidth: f64,
    /// Mean-shift bandwidth for temporal hotspots, seconds.
    pub temporal_bandwidth: f64,
    /// Circular period of the temporal units in seconds: 86 400 for the
    /// paper's time-of-day hotspots, 604 800 for weekly rhythms.
    pub temporal_period: f64,
    /// Minimum records per hotspot.
    pub min_hotspot_support: usize,
    /// LINE samples for the user-graph pre-training (line 3).
    pub pretrain_samples: u64,
    /// Train the inter-record objective (`false` = ACTOR w/o inter, §6.3).
    pub use_inter: bool,
    /// Use the bag-of-words intra-record structure (`false` = ACTOR w/o
    /// intra: words are treated as individual units, §6.3).
    pub use_intra_bag: bool,
    /// Connect mentioned users (not just authors) to record units.
    pub include_mentioned_users: bool,
    /// Scale of the pre-trained user vector copied into each unit's
    /// initial center (Algorithm 1 line 4). `1.0` = the paper's verbatim
    /// copy; `0.0` = random initialization (hierarchy still trains the
    /// inter edges).
    pub init_scale: f32,
    /// Degree exponent of the negative-sampling noise distribution
    /// (`P(v) ∝ d_v^power`; 0.75 is the word2vec/LINE standard the
    /// paper's `d_v^4` abbreviates — see DESIGN.md §2).
    pub negative_power: f64,
    /// Anneal the learning rate linearly to 10 % of `learning_rate` over
    /// the sample budget (LINE's schedule). Disable for the design
    /// ablation.
    pub anneal: bool,
    /// L2 ceiling on any single SGD row update (`0.0` disables clipping).
    /// The default of 5.0 sits orders of magnitude above healthy updates,
    /// so it never perturbs a converging run — it only bounds the damage
    /// of a diverging one until the divergence detector steps in.
    pub grad_clip: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ActorConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            learning_rate: 0.02,
            negatives: 1,
            batch_size: 256,
            max_epochs: 100,
            batches_per_type: 40,
            threads: 1,
            spatial_bandwidth: 0.008,
            temporal_bandwidth: 1800.0,
            temporal_period: mobility::SECONDS_PER_DAY as f64,
            min_hotspot_support: 3,
            pretrain_samples: 2_000_000,
            use_inter: true,
            use_intra_bag: true,
            include_mentioned_users: true,
            init_scale: 1.0,
            negative_power: 0.75,
            anneal: true,
            grad_clip: 5.0,
            seed: 0xAC7012,
        }
    }
}

impl ActorConfig {
    /// A fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            dim: 32,
            max_epochs: 20,
            batches_per_type: 10,
            pretrain_samples: 100_000,
            ..Self::default()
        }
    }

    /// SGD parameters derived from this config.
    pub fn sgd(&self) -> SgdParams {
        SgdParams {
            learning_rate: self.learning_rate,
            negatives: self.negatives,
            grad_clip: self.grad_clip,
        }
    }

    /// Total edge samples per edge type over the whole run.
    pub fn samples_per_type(&self) -> u64 {
        (self.batch_size * self.batches_per_type * self.max_epochs) as u64
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dim == 0 {
            return Err(ConfigError::ZeroDim);
        }
        if self.learning_rate.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ConfigError::NonPositiveLearningRate {
                got: self.learning_rate,
            });
        }
        if self.batch_size == 0 || self.max_epochs == 0 || self.batches_per_type == 0 {
            return Err(ConfigError::ZeroBatching);
        }
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.spatial_bandwidth.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || self.temporal_bandwidth.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            return Err(ConfigError::NonPositiveBandwidth {
                spatial: self.spatial_bandwidth,
                temporal: self.temporal_bandwidth,
            });
        }
        if self.temporal_period.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ConfigError::NonPositivePeriod {
                got: self.temporal_period,
            });
        }
        if self.temporal_bandwidth * 2.0 >= self.temporal_period {
            return Err(ConfigError::BandwidthExceedsPeriod {
                bandwidth: self.temporal_bandwidth,
                period: self.temporal_period,
            });
        }
        if !(self.grad_clip.is_finite() && self.grad_clip >= 0.0) {
            return Err(ConfigError::InvalidGradClip {
                got: self.grad_clip,
            });
        }
        if !(0.0..=2.0).contains(&self.negative_power) {
            return Err(ConfigError::NegativePowerOutOfRange {
                got: self.negative_power,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ActorConfig::default();
        assert_eq!(c.learning_rate, 0.02);
        assert_eq!(c.negatives, 1);
        assert_eq!(c.batch_size, 256);
        assert_eq!(c.max_epochs, 100);
        c.validate().unwrap();
    }

    #[test]
    fn fast_config_is_valid() {
        ActorConfig::fast().validate().unwrap();
    }

    #[test]
    fn samples_per_type_multiplies_out() {
        let c = ActorConfig {
            batch_size: 10,
            batches_per_type: 3,
            max_epochs: 7,
            ..ActorConfig::default()
        };
        assert_eq!(c.samples_per_type(), 210);
    }

    #[test]
    fn validate_reports_typed_variants() {
        let c = ActorConfig {
            // circular kernel wraps
            temporal_bandwidth: ActorConfig::default().temporal_period,
            ..ActorConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::BandwidthExceedsPeriod {
                bandwidth: c.temporal_bandwidth,
                period: c.temporal_period,
            })
        );
        let c = ActorConfig {
            negative_power: 2.5,
            ..ActorConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::NegativePowerOutOfRange { got: 2.5 })
        );
    }

    #[test]
    fn validate_rejects_degenerates() {
        for f in [
            |c: &mut ActorConfig| c.dim = 0,
            |c: &mut ActorConfig| c.learning_rate = 0.0,
            |c: &mut ActorConfig| c.batch_size = 0,
            |c: &mut ActorConfig| c.max_epochs = 0,
            |c: &mut ActorConfig| c.batches_per_type = 0,
            |c: &mut ActorConfig| c.threads = 0,
            |c: &mut ActorConfig| c.spatial_bandwidth = -1.0,
            |c: &mut ActorConfig| c.temporal_bandwidth = 0.0,
            |c: &mut ActorConfig| c.grad_clip = f32::NAN,
            |c: &mut ActorConfig| c.grad_clip = -1.0,
        ] {
            let mut c = ActorConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }
}
