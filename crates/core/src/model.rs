//! The trained ACTOR model and its cross-modal query API (§3, §6.2.1).

use std::sync::Arc;

use embed::math::{cosine, mean_of};
use embed::EmbeddingStore;
use hotspot::{SpatialHotspots, TemporalHotspots};
use mobility::{GeoPoint, KeywordId, Timestamp, UserId, Vocabulary};
use stgraph::{NodeId, NodeSpace, NodeType};

use crate::config::ActorConfig;

/// The immutable components of a trained model: the node layout, the
/// detected hotspots, the vocabulary, and the training configuration.
///
/// Training mutates embedding *rows*, never these — they are fixed the
/// moment `prepare` runs. Splitting them out of [`TrainedModel`] behind an
/// `Arc` means publishing, snapshotting, and checkpointing share one copy
/// instead of deep-cloning hotspot tables and vocabularies alongside every
/// store: after `prepare` builds them once, they are never copied again.
#[derive(Debug)]
pub struct ModelArtifacts {
    pub(crate) space: NodeSpace,
    pub(crate) spatial: SpatialHotspots,
    pub(crate) temporal: TemporalHotspots,
    pub(crate) vocab: Vocabulary,
    pub(crate) config: ActorConfig,
}

impl ModelArtifacts {
    /// Assembles the immutable artifact set.
    pub fn new(
        space: NodeSpace,
        spatial: SpatialHotspots,
        temporal: TemporalHotspots,
        vocab: Vocabulary,
        config: ActorConfig,
    ) -> Self {
        Self {
            space,
            spatial,
            temporal,
            vocab,
            config,
        }
    }

    /// The node layout.
    pub fn space(&self) -> &NodeSpace {
        &self.space
    }

    /// Detected spatial hotspots.
    pub fn spatial_hotspots(&self) -> &SpatialHotspots {
        &self.spatial
    }

    /// Detected temporal hotspots.
    pub fn temporal_hotspots(&self) -> &TemporalHotspots {
        &self.temporal
    }

    /// The training vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &ActorConfig {
        &self.config
    }

    /// Vertex for a raw location: its nearest spatial hotspot.
    pub fn location_node(&self, p: GeoPoint) -> NodeId {
        self.space.node(NodeType::Location, self.spatial.assign(p).0)
    }

    /// Vertex for a raw timestamp: its nearest temporal hotspot (wrapped
    /// by the detector's period — daily by default, weekly if the model
    /// was trained with `temporal_period = SECONDS_PER_WEEK`).
    pub fn time_node(&self, t: Timestamp) -> NodeId {
        self.space
            .node(NodeType::Time, self.temporal.assign_timestamp(t).0)
    }

    /// Vertex for a second-of-day value.
    pub fn time_of_day_node(&self, seconds: f64) -> NodeId {
        self.space.node(NodeType::Time, self.temporal.assign(seconds).0)
    }

    /// Vertex for a keyword id.
    pub fn word_node(&self, w: KeywordId) -> NodeId {
        self.space.node(NodeType::Word, w.0)
    }

    /// Vertex for a user id, if users were embedded.
    pub fn user_node(&self, u: UserId) -> Option<NodeId> {
        (u.0 < self.space.n_user).then(|| self.space.node(NodeType::User, u.0))
    }
}

/// A trained cross-modal embedding model.
///
/// Every spatial hotspot, temporal hotspot, keyword, and user owns a
/// center vector; queries map raw modalities (a point, a timestamp, a bag
/// of words) onto unit vectors and rank candidates by cosine similarity,
/// exactly the prediction procedure of §6.2.1.
///
/// Structurally the model is an `Arc<`[`ModelArtifacts`]`>` (shared,
/// immutable) plus the mutable [`EmbeddingStore`]. `Clone` deep-copies
/// only the store — the artifacts are reference-shared — which is what
/// lets a frozen copy coexist with a training original at the cost of the
/// embedding rows alone.
#[derive(Clone)]
pub struct TrainedModel {
    pub(crate) artifacts: Arc<ModelArtifacts>,
    pub(crate) store: EmbeddingStore,
}

impl TrainedModel {
    /// Assembles a model from parts.
    ///
    /// Used by the baseline trainers (LINE, CrossMap, metapath2vec), which
    /// share ACTOR's hotspot-and-graph substrate and scoring rule but
    /// produce their stores through different training objectives.
    pub fn from_parts(
        store: EmbeddingStore,
        space: NodeSpace,
        spatial: SpatialHotspots,
        temporal: TemporalHotspots,
        vocab: Vocabulary,
        config: ActorConfig,
    ) -> Self {
        Self::from_shared(
            Arc::new(ModelArtifacts::new(space, spatial, temporal, vocab, config)),
            store,
        )
    }

    /// Assembles a model around an already-shared artifact set (the
    /// zero-copy constructor the training pipeline and delta publishers
    /// use).
    pub fn from_shared(artifacts: Arc<ModelArtifacts>, store: EmbeddingStore) -> Self {
        assert_eq!(
            store.n_nodes(),
            artifacts.space.len(),
            "store/space size mismatch"
        );
        Self { artifacts, store }
    }

    /// The shared immutable artifacts.
    pub fn artifacts(&self) -> &Arc<ModelArtifacts> {
        &self.artifacts
    }

    /// The embedding store (centers + contexts).
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// Mutable access to the embedding store (streaming updaters, tests,
    /// and benches that simulate them; touched rows are dirty-tracked as
    /// usual).
    pub fn store_mut(&mut self) -> &mut EmbeddingStore {
        &mut self.store
    }

    /// The node layout.
    pub fn space(&self) -> &NodeSpace {
        &self.artifacts.space
    }

    /// Detected spatial hotspots.
    pub fn spatial_hotspots(&self) -> &SpatialHotspots {
        &self.artifacts.spatial
    }

    /// Detected temporal hotspots.
    pub fn temporal_hotspots(&self) -> &TemporalHotspots {
        &self.artifacts.temporal
    }

    /// The training vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.artifacts.vocab
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &ActorConfig {
        &self.artifacts.config
    }

    /// Center vector of a graph vertex.
    pub fn vector(&self, node: NodeId) -> &[f32] {
        self.store.centers.row(node.idx())
    }

    /// Vertex for a raw location: its nearest spatial hotspot.
    pub fn location_node(&self, p: GeoPoint) -> NodeId {
        self.artifacts.location_node(p)
    }

    /// Vertex for a raw timestamp (see [`ModelArtifacts::time_node`]).
    pub fn time_node(&self, t: Timestamp) -> NodeId {
        self.artifacts.time_node(t)
    }

    /// Vertex for a second-of-day value.
    pub fn time_of_day_node(&self, seconds: f64) -> NodeId {
        self.artifacts.time_of_day_node(seconds)
    }

    /// Vertex for a keyword id.
    pub fn word_node(&self, w: KeywordId) -> NodeId {
        self.artifacts.word_node(w)
    }

    /// Vertex for a user id, if users were embedded.
    pub fn user_node(&self, u: UserId) -> Option<NodeId> {
        self.artifacts.user_node(u)
    }

    /// Mean center vector of a bag of keywords (the text representation
    /// used at query time; zeros for an empty bag).
    pub fn text_vector(&self, words: &[KeywordId]) -> Vec<f32> {
        let rows: Vec<&[f32]> = words
            .iter()
            .map(|w| self.vector(self.word_node(*w)))
            .collect();
        mean_of(&rows, self.store.dim())
    }

    /// Mean of the given vectors: the query representation when several
    /// modalities are observed (§6.2.1 averages the observed units).
    pub fn query_vector(&self, parts: &[&[f32]]) -> Vec<f32> {
        mean_of(parts, self.store.dim())
    }

    /// Cosine score of `candidate` against a prepared query vector.
    pub fn score(&self, query: &[f32], candidate: NodeId) -> f64 {
        cosine(query, self.vector(candidate))
    }

    /// Top-`k` vertices of `ty` by cosine similarity to `query`
    /// (the neighbor-search operation of §6.4).
    pub fn nearest_of_type(&self, query: &[f32], ty: NodeType, k: usize) -> Vec<(NodeId, f64)> {
        let mut scored: Vec<(NodeId, f64)> = self
            .artifacts
            .space
            .nodes_of(ty)
            .map(|n| (n, cosine(query, self.vector(n))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite cosines"));
        scored.truncate(k);
        scored
    }

    /// Like [`TrainedModel::nearest_of_type`] for keywords, returning the
    /// words themselves — convenient for the Figs. 9–11 style reports.
    pub fn nearest_words(&self, query: &[f32], k: usize) -> Vec<(String, f64)> {
        self.nearest_of_type(query, NodeType::Word, k)
            .into_iter()
            .map(|(n, s)| {
                let kw = KeywordId(self.artifacts.space.local_of(n));
                (self.artifacts.vocab.word(kw).to_string(), s)
            })
            .collect()
    }

    /// Ranks candidate locations for a (time, text) query, best first,
    /// returning `(candidate index, score)` pairs — the §3 "location
    /// prediction" problem as a one-call API.
    pub fn rank_locations(
        &self,
        t: Timestamp,
        words: &[KeywordId],
        candidates: &[GeoPoint],
    ) -> Vec<(usize, f64)> {
        let tv = self.vector(self.time_node(t)).to_vec();
        let wv = self.text_vector(words);
        let query = self.query_vector(&[&tv, &wv]);
        let scores = candidates
            .iter()
            .map(|&p| self.score(&query, self.location_node(p)));
        rank_desc(scores)
    }

    /// Ranks candidate timestamps for a (location, text) query, best
    /// first — the §3 "time prediction" problem.
    pub fn rank_times(
        &self,
        location: GeoPoint,
        words: &[KeywordId],
        candidates: &[Timestamp],
    ) -> Vec<(usize, f64)> {
        let lv = self.vector(self.location_node(location)).to_vec();
        let wv = self.text_vector(words);
        let query = self.query_vector(&[&lv, &wv]);
        let scores = candidates
            .iter()
            .map(|&t| self.score(&query, self.time_node(t)));
        rank_desc(scores)
    }

    /// Ranks candidate texts for a (time, location) query, best first —
    /// the §3 "activity prediction" problem.
    pub fn rank_texts(
        &self,
        t: Timestamp,
        location: GeoPoint,
        candidates: &[Vec<KeywordId>],
    ) -> Vec<(usize, f64)> {
        let tv = self.vector(self.time_node(t)).to_vec();
        let lv = self.vector(self.location_node(location)).to_vec();
        let query = self.query_vector(&[&tv, &lv]);
        let scores = candidates
            .iter()
            .map(|words| cosine(&query, &self.text_vector(words)));
        rank_desc(scores)
    }

    /// A user's activity profile: the keywords most aligned with the
    /// user's embedding (empty if the user was not embedded or never
    /// interacted). Powers "who is this user" style queries.
    pub fn user_profile(&self, user: UserId, k: usize) -> Vec<(String, f64)> {
        match self.user_node(user) {
            Some(node) => {
                let uv = self.vector(node).to_vec();
                self.nearest_words(&uv, k)
            }
            None => Vec::new(),
        }
    }
}

/// Sorts scored candidates descending, keeping original indices.
fn rank_desc(scores: impl Iterator<Item = f64>) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = scores.enumerate().collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    out
}

/// Per-modality decomposition of a cross-modal score (see
/// [`TrainedModel::explain_location`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreExplanation {
    /// Cosine of the candidate against the observed *time* unit alone.
    pub time_alignment: f64,
    /// Cosine of the candidate against the observed *text* alone.
    pub text_alignment: f64,
    /// Cosine against the combined (mean) query — the score used for
    /// ranking.
    pub combined: f64,
}

impl TrainedModel {
    /// Decomposes a location score into its per-modality parts: how much
    /// the candidate agrees with the query's time unit versus its text.
    /// Useful when debugging a surprising ranking ("the place matched the
    /// hour but not the words").
    pub fn explain_location(
        &self,
        t: Timestamp,
        words: &[KeywordId],
        candidate: GeoPoint,
    ) -> ScoreExplanation {
        let tv = self.vector(self.time_node(t)).to_vec();
        let wv = self.text_vector(words);
        let cand = self.vector(self.location_node(candidate));
        let query = self.query_vector(&[&tv, &wv]);
        ScoreExplanation {
            time_alignment: cosine(&tv, cand),
            text_alignment: cosine(&wv, cand),
            combined: cosine(&query, cand),
        }
    }
}

#[cfg(test)]
mod tests {
    // The model is exercised end-to-end in `pipeline::tests` (constructing
    // a meaningful TrainedModel requires a fitted pipeline); unit-level
    // checks of the pure helpers live here via a hand-built model.
    use super::*;
    use hotspot::MeanShiftParams;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_model() -> TrainedModel {
        let spatial = SpatialHotspots::detect(
            &[
                GeoPoint::new(0.0, 0.0),
                GeoPoint::new(0.0, 0.001),
                GeoPoint::new(1.0, 1.0),
                GeoPoint::new(1.0, 1.001),
            ],
            MeanShiftParams::with_bandwidth(0.05),
            1,
        );
        let temporal = TemporalHotspots::detect(
            &[3600.0, 3700.0, 72000.0, 72100.0],
            MeanShiftParams::with_bandwidth(1800.0),
            1,
        );
        let mut vocab = Vocabulary::new();
        vocab.intern("alpha");
        vocab.intern("bravo");
        let space = NodeSpace {
            n_time: temporal.len() as u32,
            n_location: spatial.len() as u32,
            n_word: 2,
            n_user: 1,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let store = EmbeddingStore::init(space.len(), 8, &mut rng);
        TrainedModel::from_parts(store, space, spatial, temporal, vocab, ActorConfig::fast())
    }

    #[test]
    fn clone_shares_artifacts_and_copies_the_store() {
        let mut m = tiny_model();
        let frozen = m.clone();
        assert!(Arc::ptr_eq(m.artifacts(), frozen.artifacts()));
        // Mutating the original's store must not reach the clone.
        let before = frozen.vector(NodeId(0)).to_vec();
        m.store_mut().centers.row_mut(0)[0] += 1.0;
        assert_eq!(frozen.vector(NodeId(0)), before.as_slice());
        assert_ne!(m.vector(NodeId(0)), before.as_slice());
    }

    #[test]
    fn raw_modality_lookups_assign_to_hotspots() {
        let m = tiny_model();
        let near_origin = m.location_node(GeoPoint::new(0.01, 0.01));
        let near_one = m.location_node(GeoPoint::new(0.99, 0.99));
        assert_ne!(near_origin, near_one);
        assert_eq!(m.space().type_of(near_origin), NodeType::Location);

        let morning = m.time_of_day_node(3650.0);
        let evening = m.time_of_day_node(71900.0);
        assert_ne!(morning, evening);
    }

    #[test]
    fn time_node_uses_second_of_day() {
        let m = tiny_model();
        let a = m.time_node(3600); // 01:00 on day zero
        let b = m.time_node(86_400 + 3600); // 01:00 next day
        assert_eq!(a, b);
    }

    #[test]
    fn text_vector_is_mean_of_word_vectors() {
        let m = tiny_model();
        let w0 = KeywordId(0);
        let w1 = KeywordId(1);
        let tv = m.text_vector(&[w0, w1]);
        let v0 = m.vector(m.word_node(w0));
        let v1 = m.vector(m.word_node(w1));
        for i in 0..tv.len() {
            assert!((tv[i] - 0.5 * (v0[i] + v1[i])).abs() < 1e-6);
        }
        assert_eq!(m.text_vector(&[]), vec![0.0; 8]);
    }

    #[test]
    fn nearest_of_type_returns_sorted_scores() {
        let m = tiny_model();
        let query = m.vector(m.word_node(KeywordId(0))).to_vec();
        let top = m.nearest_of_type(&query, NodeType::Word, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        // The word itself is its own nearest neighbor.
        assert_eq!(top[0].0, m.word_node(KeywordId(0)));
        let words = m.nearest_words(&query, 1);
        assert_eq!(words[0].0, "alpha");
    }

    #[test]
    fn user_node_bounds() {
        let m = tiny_model();
        assert!(m.user_node(UserId(0)).is_some());
        assert!(m.user_node(UserId(1)).is_none());
    }

    #[test]
    fn rank_apis_return_permutations_sorted_by_score() {
        let m = tiny_model();
        let candidates = [
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(0.01, 0.0),
        ];
        let ranked = m.rank_locations(3600, &[KeywordId(0)], &candidates);
        assert_eq!(ranked.len(), 3);
        let mut idx: Vec<usize> = ranked.iter().map(|&(i, _)| i).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }

        let times = [3600i64, 72_000];
        let ranked = m.rank_times(GeoPoint::new(0.0, 0.0), &[KeywordId(1)], &times);
        assert_eq!(ranked.len(), 2);

        let texts = vec![vec![KeywordId(0)], vec![KeywordId(1)], vec![]];
        let ranked = m.rank_texts(3600, GeoPoint::new(0.0, 0.0), &texts);
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn explain_location_decomposes_the_score() {
        let m = tiny_model();
        let e = m.explain_location(3600, &[KeywordId(0)], GeoPoint::new(0.0, 0.0));
        for v in [e.time_alignment, e.text_alignment, e.combined] {
            assert!(v.is_finite());
            assert!((-1.0..=1.0).contains(&v));
        }
        // The combined score matches score_location's public value.
        // (score_location lives in the eval crate's trait impl; here we
        // recompute it through the same primitives.)
        let tv = m.vector(m.time_node(3600)).to_vec();
        let wv = m.text_vector(&[KeywordId(0)]);
        let q = m.query_vector(&[&tv, &wv]);
        let direct = m.score(&q, m.location_node(GeoPoint::new(0.0, 0.0)));
        assert!((e.combined - direct).abs() < 1e-12);
    }

    #[test]
    fn user_profile_is_empty_for_unknown_users() {
        let m = tiny_model();
        assert!(m.user_profile(UserId(9), 5).is_empty());
        let profile = m.user_profile(UserId(0), 2);
        assert_eq!(profile.len(), 2);
    }
}
