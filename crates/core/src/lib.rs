//! ACTOR: spatiotemporal activity modeling via hierarchical cross-modal
//! embedding — the paper's primary contribution (§5).
//!
//! The pipeline (Algorithm 1):
//!
//! 1. detect spatial and temporal hotspots with mean-shift (line 1),
//! 2. construct the activity graph and the user interaction graph (line 2),
//! 3. pre-train the user interaction graph with LINE (line 3),
//! 4. initialize every activity-graph unit from its strongest user's
//!    pre-trained embedding (line 4),
//! 5. alternate negative-sampling SGD over the inter-record
//!    (`M_inter = {UT, UW, UL}`) and intra-record
//!    (`M_intra = {TL, LW, WT, WW}`) meta-graph edge types (lines 5–11),
//!    with the intra-record textual side represented by the *sum* of the
//!    record's keyword embeddings (footnote 4).
//!
//! The result is a [`TrainedModel`] mapping every spatial, temporal, and
//! textual unit (plus users) into one latent space where cross-modal
//! cosine similarity answers the activity / location / time prediction
//! queries of §3.

pub mod ablation;
pub mod config;
pub mod error;
pub mod model;
pub mod online;
pub mod persist;
pub mod pipeline;
pub mod publish;
pub mod resilient;

pub use ablation::Variant;
pub use config::ActorConfig;
pub use embed::StoreDelta;
pub use error::{ConfigError, FitError, PersistError};
pub use model::{ModelArtifacts, TrainedModel};
pub use online::{OnlineActor, OnlineParams};
pub use persist::ModelMeta;
pub use pipeline::{fit, FitReport};
pub use publish::{fit_resume_with_sink, fit_with_sink, ModelSink, NullSink};
pub use resilient::{fit_checkpointed, fit_resume, ResilienceOptions, ResilienceReport};
