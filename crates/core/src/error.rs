//! Pipeline error types.
//!
//! Hand-rolled enums (the workspace carries no `thiserror`): each variant
//! captures the offending values so callers can report or branch without
//! parsing strings.

use std::fmt;

/// A rejected [`crate::ActorConfig`] (see [`crate::ActorConfig::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `dim == 0`.
    ZeroDim,
    /// `learning_rate` is zero, negative, or NaN.
    NonPositiveLearningRate {
        /// The rejected rate.
        got: f32,
    },
    /// One of `batch_size`, `max_epochs`, `batches_per_type` is zero.
    ZeroBatching,
    /// `threads == 0`.
    ZeroThreads,
    /// A mean-shift bandwidth is zero, negative, or NaN.
    NonPositiveBandwidth {
        /// Spatial bandwidth, degrees.
        spatial: f64,
        /// Temporal bandwidth, seconds.
        temporal: f64,
    },
    /// `temporal_period` is zero, negative, or NaN.
    NonPositivePeriod {
        /// The rejected period.
        got: f64,
    },
    /// `2·temporal_bandwidth >= temporal_period`: the circular kernel
    /// would wrap onto itself and every record lands in one hotspot.
    BandwidthExceedsPeriod {
        /// Temporal bandwidth, seconds.
        bandwidth: f64,
        /// Circular period, seconds.
        period: f64,
    },
    /// `negative_power` outside `[0, 2]`.
    NegativePowerOutOfRange {
        /// The rejected exponent.
        got: f64,
    },
    /// `grad_clip` is NaN, infinite, or negative (`0.0` = disabled is
    /// fine).
    InvalidGradClip {
        /// The rejected ceiling.
        got: f32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroDim => write!(f, "dim must be positive"),
            Self::NonPositiveLearningRate { got } => {
                write!(f, "learning rate must be positive, got {got}")
            }
            Self::ZeroBatching => write!(f, "batching parameters must be positive"),
            Self::ZeroThreads => write!(f, "threads must be positive"),
            Self::NonPositiveBandwidth { spatial, temporal } => write!(
                f,
                "bandwidths must be positive, got spatial {spatial} / temporal {temporal}"
            ),
            Self::NonPositivePeriod { got } => {
                write!(f, "temporal period must be positive, got {got}")
            }
            Self::BandwidthExceedsPeriod { bandwidth, period } => write!(
                f,
                "temporal bandwidth {bandwidth} must be well below the period {period}"
            ),
            Self::NegativePowerOutOfRange { got } => {
                write!(f, "negative_power must be in [0, 2], got {got}")
            }
            Self::InvalidGradClip { got } => {
                write!(f, "grad_clip must be finite and non-negative, got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A failed [`crate::fit`] run.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The configuration failed validation before anything ran.
    Config(ConfigError),
    /// The training split has no records.
    EmptyTrainingSplit,
    /// A checkpoint could not be written or restored.
    Checkpoint(resilience::CheckpointError),
    /// A (possibly injected) worker failure interrupted training; the
    /// cursors name the last completed segment boundary so a
    /// [`crate::fit_resume`] can pick up from the checkpoint taken there.
    Interrupted {
        /// Epochs fully completed before the failure.
        epoch: usize,
        /// Weighted samples completed before the failure.
        samples: u64,
    },
    /// Training kept diverging after exhausting the retry budget.
    Diverged {
        /// Epoch of the segment that diverged last.
        epoch: usize,
        /// Retries spent before giving up.
        retries: u32,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid config: {e}"),
            Self::EmptyTrainingSplit => write!(f, "training split is empty"),
            Self::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            Self::Interrupted { epoch, samples } => write!(
                f,
                "training interrupted after epoch {epoch} ({samples} samples); resume from the latest checkpoint"
            ),
            Self::Diverged { epoch, retries } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} retries"
            ),
        }
    }
}

impl std::error::Error for FitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Checkpoint(e) => Some(e),
            Self::EmptyTrainingSplit | Self::Interrupted { .. } | Self::Diverged { .. } => None,
        }
    }
}

impl From<ConfigError> for FitError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<resilience::CheckpointError> for FitError {
    fn from(e: resilience::CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// A failed model save/load (see [`crate::persist`]).
///
/// Load never panics: every length is bounds-checked against the payload
/// and every count against a sane ceiling, so truncated or malicious
/// envelopes are reported, not crashed on.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The envelope does not start with the expected magic bytes.
    BadMagic,
    /// The payload ended before a required field.
    Truncated {
        /// What was being read.
        reading: &'static str,
        /// Bytes needed to continue.
        need: usize,
        /// Bytes actually left.
        have: usize,
    },
    /// A length or count field implies more data than the payload holds
    /// (or overflows the address space) — a corrupt or malicious header.
    ImplausibleLength {
        /// The field in question.
        field: &'static str,
        /// The claimed value.
        claimed: u64,
    },
    /// A UTF-8 string field failed to decode.
    BadString {
        /// The field in question.
        field: &'static str,
    },
    /// The embedding-store section failed to decode.
    Store {
        /// The store decoder's message.
        detail: String,
    },
    /// The restored parts are mutually inconsistent (e.g. the embedding
    /// store does not match the declared unit space).
    Inconsistent {
        /// What disagreed.
        detail: String,
    },
    /// Trailing bytes after a complete envelope.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad magic: not an ACTOR model envelope"),
            Self::Truncated {
                reading,
                need,
                have,
            } => write!(
                f,
                "truncated envelope while reading {reading}: need {need} bytes, have {have}"
            ),
            Self::ImplausibleLength { field, claimed } => {
                write!(f, "implausible {field}: claims {claimed}")
            }
            Self::BadString { field } => write!(f, "invalid UTF-8 in {field}"),
            Self::Store { detail } => write!(f, "embedding store section: {detail}"),
            Self::Inconsistent { detail } => write!(f, "inconsistent model parts: {detail}"),
            Self::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after envelope")
            }
        }
    }
}

impl std::error::Error for PersistError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_the_offending_value() {
        let e = ConfigError::NegativePowerOutOfRange { got: 3.5 };
        assert_eq!(e.to_string(), "negative_power must be in [0, 2], got 3.5");
        let e = ConfigError::NonPositiveLearningRate { got: -0.1 };
        assert!(e.to_string().contains("-0.1"));
    }

    #[test]
    fn fit_error_chains_to_config_error() {
        let e = FitError::from(ConfigError::ZeroDim);
        assert_eq!(e.to_string(), "invalid config: dim must be positive");
        let source = e.source().expect("config source");
        assert_eq!(source.to_string(), "dim must be positive");
        assert!(FitError::EmptyTrainingSplit.source().is_none());
    }
}
