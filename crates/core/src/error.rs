//! Pipeline error types.
//!
//! Hand-rolled enums (the workspace carries no `thiserror`): each variant
//! captures the offending values so callers can report or branch without
//! parsing strings.

use std::fmt;

/// A rejected [`crate::ActorConfig`] (see [`crate::ActorConfig::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `dim == 0`.
    ZeroDim,
    /// `learning_rate` is zero, negative, or NaN.
    NonPositiveLearningRate {
        /// The rejected rate.
        got: f32,
    },
    /// One of `batch_size`, `max_epochs`, `batches_per_type` is zero.
    ZeroBatching,
    /// `threads == 0`.
    ZeroThreads,
    /// A mean-shift bandwidth is zero, negative, or NaN.
    NonPositiveBandwidth {
        /// Spatial bandwidth, degrees.
        spatial: f64,
        /// Temporal bandwidth, seconds.
        temporal: f64,
    },
    /// `temporal_period` is zero, negative, or NaN.
    NonPositivePeriod {
        /// The rejected period.
        got: f64,
    },
    /// `2·temporal_bandwidth >= temporal_period`: the circular kernel
    /// would wrap onto itself and every record lands in one hotspot.
    BandwidthExceedsPeriod {
        /// Temporal bandwidth, seconds.
        bandwidth: f64,
        /// Circular period, seconds.
        period: f64,
    },
    /// `negative_power` outside `[0, 2]`.
    NegativePowerOutOfRange {
        /// The rejected exponent.
        got: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroDim => write!(f, "dim must be positive"),
            Self::NonPositiveLearningRate { got } => {
                write!(f, "learning rate must be positive, got {got}")
            }
            Self::ZeroBatching => write!(f, "batching parameters must be positive"),
            Self::ZeroThreads => write!(f, "threads must be positive"),
            Self::NonPositiveBandwidth { spatial, temporal } => write!(
                f,
                "bandwidths must be positive, got spatial {spatial} / temporal {temporal}"
            ),
            Self::NonPositivePeriod { got } => {
                write!(f, "temporal period must be positive, got {got}")
            }
            Self::BandwidthExceedsPeriod { bandwidth, period } => write!(
                f,
                "temporal bandwidth {bandwidth} must be well below the period {period}"
            ),
            Self::NegativePowerOutOfRange { got } => {
                write!(f, "negative_power must be in [0, 2], got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A failed [`crate::fit`] run.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The configuration failed validation before anything ran.
    Config(ConfigError),
    /// The training split has no records.
    EmptyTrainingSplit,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid config: {e}"),
            Self::EmptyTrainingSplit => write!(f, "training split is empty"),
        }
    }
}

impl std::error::Error for FitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::EmptyTrainingSplit => None,
        }
    }
}

impl From<ConfigError> for FitError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_the_offending_value() {
        let e = ConfigError::NegativePowerOutOfRange { got: 3.5 };
        assert_eq!(e.to_string(), "negative_power must be in [0, 2], got 3.5");
        let e = ConfigError::NonPositiveLearningRate { got: -0.1 };
        assert!(e.to_string().contains("-0.1"));
    }

    #[test]
    fn fit_error_chains_to_config_error() {
        let e = FitError::from(ConfigError::ZeroDim);
        assert_eq!(e.to_string(), "invalid config: dim must be positive");
        let source = e.source().expect("config source");
        assert_eq!(source.to_string(), "dim must be positive");
        assert!(FitError::EmptyTrainingSplit.source().is_none());
    }
}
