//! Online (streaming) updates — the ReAct-style extension.
//!
//! The paper's authors followed CrossMap with ReAct ("online multimodal
//! embedding for recency-aware spatiotemporal activity modeling", their
//! reference \[8\]). This module brings the same capability to ACTOR as an
//! extension: a fitted [`TrainedModel`] keeps learning from a stream of
//! new records with small SGD steps plus replay over a recency buffer, so
//! embeddings track drifting activity patterns without a full refit.
//!
//! Scope of the extension (documented limitations, mirroring §4.3):
//! hotspots are *not* re-detected — new records are assigned to their
//! closest existing spatial/temporal hotspots, exactly the rule the paper
//! uses for unseen data points; unseen keywords or users are skipped.

use std::collections::VecDeque;

use embed::{NegativeSamplingUpdate, SgdParams};
use mobility::{GeoPoint, Record};
use rand::seq::IndexedRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};
use stgraph::{NodeId, NodeType};

use crate::model::TrainedModel;
use crate::publish::{record_publish, ModelSink};

/// Streaming-update parameters.
#[derive(Debug, Clone, Copy)]
pub struct OnlineParams {
    /// Learning rate for streaming steps (smaller than batch training —
    /// each record is seen once).
    pub learning_rate: f32,
    /// Negative samples per step.
    pub negatives: usize,
    /// SGD passes over each incoming record's unit pairs.
    pub steps_per_record: usize,
    /// Replayed buffer records per incoming record (recency replay).
    pub replay: usize,
    /// Recency buffer capacity.
    pub buffer: usize,
    /// L2 ceiling on any single streaming SGD update (`0.0` = off). The
    /// stream is untrusted input, so the ceiling is on by default: one
    /// adversarial record can at most nudge a row by `grad_clip`.
    pub grad_clip: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OnlineParams {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            negatives: 2,
            steps_per_record: 2,
            replay: 4,
            buffer: 4096,
            grad_clip: 5.0,
            seed: 0x051,
        }
    }
}

/// Units of one streamed record under the model's node space.
#[derive(Debug, Clone)]
struct StreamUnits {
    time: NodeId,
    location: NodeId,
    words: Vec<NodeId>,
    user: Option<NodeId>,
}

/// A model wrapper that keeps learning from streamed records.
pub struct OnlineActor {
    model: TrainedModel,
    params: OnlineParams,
    updater: NegativeSamplingUpdate,
    rng: StdRng,
    buffer: VecDeque<StreamUnits>,
    /// Nodes of each type observed in the stream, for negative sampling.
    seen: [Vec<NodeId>; 4],
    observed: u64,
    skipped_words: u64,
    skipped_records: u64,
    /// Snapshot sink plus publication cadence in observed records.
    sink: Option<(std::sync::Arc<dyn ModelSink>, u64)>,
    /// Store generation the sink last caught up to; rows stamped after it
    /// form the next delta publish.
    synced_gen: u64,
}

impl OnlineActor {
    /// Wraps a fitted model for streaming updates.
    pub fn new(model: TrainedModel, params: OnlineParams) -> Self {
        let dim = model.store().dim();
        Self {
            updater: NegativeSamplingUpdate::new(
                dim,
                SgdParams {
                    learning_rate: params.learning_rate,
                    negatives: params.negatives,
                    grad_clip: params.grad_clip,
                },
            ),
            rng: StdRng::seed_from_u64(params.seed),
            buffer: VecDeque::with_capacity(params.buffer),
            seen: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            observed: 0,
            skipped_words: 0,
            skipped_records: 0,
            sink: None,
            synced_gen: 0,
            model,
            params,
        }
    }

    /// Publishes the continuously updated model to `sink` every `every`
    /// successfully observed records (and once in full immediately, so the
    /// sink is never behind the wrapped model). Cadence publishes are
    /// *deltas*: only the store rows the stream actually touched since the
    /// last publish go through [`ModelSink::publish_delta`], so a serving
    /// engine tracks a live stream without ever copying the full model.
    ///
    /// Panics if `every` is zero.
    pub fn attach_sink(&mut self, sink: std::sync::Arc<dyn ModelSink>, every: u64) {
        assert!(every > 0, "publication cadence must be positive");
        // Close the open generation *before* the full publish: every row
        // stamped so far is covered by this snapshot, and anything touched
        // afterwards lands in the first delta.
        self.synced_gen = self.model.store().close_generation();
        record_publish(2 * self.model.store().n_nodes());
        sink.publish(&self.model);
        self.sink = Some((sink, every));
    }

    /// The wrapped (continuously updated) model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Records observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Keyword tokens skipped because they were unknown at fit time.
    pub fn skipped_words(&self) -> u64 {
        self.skipped_words
    }

    /// Whole records rejected by [`OnlineActor::observe`] as unusable.
    pub fn skipped_records(&self) -> u64 {
        self.skipped_records
    }

    /// Consumes the wrapper, returning the updated model.
    pub fn into_model(self) -> TrainedModel {
        self.model
    }

    fn remember(&mut self, node: NodeId) {
        let ty = self.model.space().type_of(node).index();
        // Bounded dedup-free reservoir: occasional duplicates only skew
        // negatives toward frequent nodes, which is the degree-biased
        // noise distribution anyway.
        if self.seen[ty].len() < 65_536 {
            self.seen[ty].push(node);
        } else {
            let i = self.rng.random_range(0..self.seen[ty].len());
            self.seen[ty][i] = node;
        }
    }

    fn assign(&mut self, record: &Record) -> StreamUnits {
        let time = self.model.time_node(record.timestamp);
        let location = self.model.location_node(record.location);
        let mut words = Vec::with_capacity(record.keywords.len());
        let n_word = self.model.space().n_word;
        for &k in &record.keywords {
            if k.0 < n_word {
                words.push(self.model.word_node(k));
            } else {
                self.skipped_words += 1;
            }
        }
        words.sort_unstable();
        words.dedup();
        let user = self.model.user_node(record.user);
        StreamUnits {
            time,
            location,
            words,
            user,
        }
    }

    /// Whether a streamed record can be applied to the model at all:
    /// finite in-range coordinates, a user known at fit time, and at
    /// least one keyword surviving the vocabulary filter. The stream is
    /// untrusted, so anything else is rejected rather than folded into
    /// hotspot/user assignment where it would corrupt nearest-neighbor
    /// lookups (NaN poisons every distance comparison).
    fn admissible(&self, record: &Record) -> bool {
        let GeoPoint { lat, lon } = record.location;
        lat.is_finite()
            && lon.is_finite()
            && (-90.0..=90.0).contains(&lat)
            && (-180.0..=180.0).contains(&lon)
            && record.user.0 < self.model.space().n_user
    }

    /// Observes one record: assigns its units, applies SGD steps for its
    /// intra-record (and author) pairs, replays a few buffered records,
    /// and pushes it into the recency buffer.
    ///
    /// Returns `false` (and counts the record in
    /// [`OnlineActor::skipped_records`]) when the record is unusable —
    /// non-finite or out-of-range coordinates, a user unseen at fit time,
    /// or no keywords left after the vocabulary filter. The model is
    /// untouched in that case.
    pub fn observe(&mut self, record: &Record) -> bool {
        if !self.admissible(record) {
            self.skipped_records += 1;
            return false;
        }
        let units = self.assign(record);
        if units.words.is_empty() {
            self.skipped_records += 1;
            return false;
        }
        for node in std::iter::once(units.time)
            .chain([units.location])
            .chain(units.words.iter().copied())
            .chain(units.user)
        {
            self.remember(node);
        }

        for _ in 0..self.params.steps_per_record {
            self.train_units_owned(&units);
        }
        for _ in 0..self.params.replay {
            if self.buffer.is_empty() {
                break;
            }
            let i = self.rng.random_range(0..self.buffer.len());
            let replayed = self.buffer[i].clone();
            self.train_units_owned(&replayed);
        }

        if self.buffer.len() == self.params.buffer {
            self.buffer.pop_front();
        }
        self.buffer.push_back(units);
        self.observed += 1;
        if let Some((sink, every)) = &self.sink {
            if self.observed.is_multiple_of(*every) {
                let delta = self.model.store().drain_dirty(self.synced_gen);
                record_publish(delta.dirty_rows());
                sink.publish_delta(&self.model, &delta);
                self.synced_gen = delta.generation;
            }
        }
        true
    }

    /// One pass of pair updates for a record's units.
    fn train_units_owned(&mut self, units: &StreamUnits) {
        let store = self.model.store();
        // Borrow split: negatives need `seen` and `rng`, the updater needs
        // `updater`; pull what we need into locals.
        let seen = &self.seen;
        let rng = &mut self.rng;
        let upd = &mut self.updater;

        let neg_of = |ty: NodeType, rng: &mut StdRng| -> Option<usize> {
            let pool = &seen[ty.index()];
            pool.choose(rng).map(|n| n.idx())
        };

        // T ↔ L.
        if let Some(n) = neg_of(NodeType::Location, rng) {
            upd.step(store, units.time.idx(), units.location.idx(), rng, |_| n);
        }
        if let Some(n) = neg_of(NodeType::Time, rng) {
            upd.step(store, units.location.idx(), units.time.idx(), rng, |_| n);
        }
        if !units.words.is_empty() {
            let bag: Vec<usize> = units.words.iter().map(|w| w.idx()).collect();
            // bag → L, bag → T (footnote-4 style).
            if let Some(n) = neg_of(NodeType::Location, rng) {
                upd.step_bag(store, &bag, units.location.idx(), rng, |_| n);
            }
            if let Some(n) = neg_of(NodeType::Time, rng) {
                upd.step_bag(store, &bag, units.time.idx(), rng, |_| n);
            }
            // One word pair.
            if bag.len() >= 2 {
                if let Some(n) = neg_of(NodeType::Word, rng) {
                    let i = rng.random_range(0..bag.len());
                    let mut j = rng.random_range(0..bag.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    upd.step(store, bag[i], bag[j], rng, |_| n);
                }
            }
            // Author ↔ units (inter-record layer).
            if let Some(user) = units.user {
                if let Some(n) = neg_of(NodeType::Word, rng) {
                    let w = *bag.choose(rng).expect("non-empty bag");
                    upd.step(store, user.idx(), w, rng, |_| n);
                }
                if let Some(n) = neg_of(NodeType::Location, rng) {
                    upd.step(store, user.idx(), units.location.idx(), rng, |_| n);
                }
                if let Some(n) = neg_of(NodeType::Time, rng) {
                    upd.step(store, user.idx(), units.time.idx(), rng, |_| n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ActorConfig;
    use crate::pipeline::fit;
    use embed::math::cosine;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, GeoPoint, SplitSpec};

    fn fitted() -> (mobility::Corpus, CorpusSplit, TrainedModel) {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(80)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let (model, _) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
        (corpus, split, model)
    }

    #[test]
    fn observing_stream_updates_counters() {
        let (corpus, split, model) = fitted();
        let mut online = OnlineActor::new(model, OnlineParams::default());
        for &rid in split.valid.iter() {
            online.observe(corpus.record(rid));
        }
        assert_eq!(online.observed(), split.valid.len() as u64);
        assert_eq!(online.skipped_words(), 0);
    }

    #[test]
    fn stream_pulls_cooccurring_units_together() {
        let (corpus, _, model) = fitted();
        // A synthetic drift: the word "beach" suddenly co-occurs with a
        // specific off-pattern time (3 am) and one location.
        let v = corpus.vocab();
        let Some(beach) = v.get("beach") else {
            // The small 4sq preset keeps only 20 themes; beach is theme 0
            // and always present.
            panic!("beach missing");
        };
        let target_second = 3.0 * 3600.0;
        let loc = GeoPoint::new(40.7, -73.9);
        let before = {
            let t = model.time_of_day_node(target_second);
            cosine(
                model.vector(model.word_node(beach)),
                model.vector(t),
            )
        };
        let mut online = OnlineActor::new(
            model,
            OnlineParams {
                steps_per_record: 4,
                replay: 0,
                ..OnlineParams::default()
            },
        );
        for i in 0..800 {
            let rec = Record {
                id: mobility::RecordId(i),
                user: mobility::UserId(0),
                timestamp: mobility::synth::EPOCH_BASE + (target_second as i64) + i as i64,
                location: loc,
                keywords: vec![beach],
                mentions: vec![],
            };
            online.observe(&rec);
        }
        let model = online.into_model();
        let t = model.time_of_day_node(target_second);
        let after = cosine(model.vector(model.word_node(beach)), model.vector(t));
        assert!(
            after > before,
            "streaming should align beach with 03:00: {before} -> {after}"
        );
    }

    #[test]
    fn attached_sink_receives_snapshots_on_cadence() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        struct Count(AtomicU64);
        impl crate::publish::ModelSink for Count {
            fn publish(&self, _m: &TrainedModel) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let (corpus, split, model) = fitted();
        let mut online = OnlineActor::new(model, OnlineParams::default());
        let sink = Arc::new(Count(AtomicU64::new(0)));
        online.attach_sink(sink.clone(), 10);
        assert_eq!(sink.0.load(Ordering::SeqCst), 1, "immediate publish");
        let mut accepted = 0u64;
        for &rid in split.valid.iter() {
            if online.observe(corpus.record(rid)) {
                accepted += 1;
            }
        }
        assert_eq!(sink.0.load(Ordering::SeqCst), 1 + accepted / 10);
    }

    #[test]
    fn cadence_publishes_are_deltas_with_zero_full_model_copies() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        #[derive(Default)]
        struct Split {
            full: AtomicU64,
            deltas: AtomicU64,
            delta_rows: AtomicU64,
        }
        impl crate::publish::ModelSink for Split {
            fn publish(&self, _m: &TrainedModel) {
                self.full.fetch_add(1, Ordering::SeqCst);
            }
            fn publish_delta(&self, _m: &TrainedModel, delta: &embed::StoreDelta) {
                self.deltas.fetch_add(1, Ordering::SeqCst);
                self.delta_rows
                    .fetch_add(delta.dirty_rows() as u64, Ordering::SeqCst);
            }
        }

        let (corpus, split, model) = fitted();
        let n_nodes = model.space().len();
        let mut online = OnlineActor::new(model, OnlineParams::default());
        let sink = Arc::new(Split::default());
        online.attach_sink(sink.clone(), 10);
        assert_eq!(sink.full.load(Ordering::SeqCst), 1, "one full catch-up");
        let mut accepted = 0u64;
        for &rid in split.valid.iter() {
            if online.observe(corpus.record(rid)) {
                accepted += 1;
            }
        }
        assert!(accepted >= 20, "need a few cadence windows");
        // Steady state: every cadence publish went through the delta path.
        assert_eq!(sink.full.load(Ordering::SeqCst), 1);
        assert_eq!(sink.deltas.load(Ordering::SeqCst), accepted / 10);
        let rows = sink.delta_rows.load(Ordering::SeqCst);
        assert!(rows > 0, "the stream touches rows");
        assert!(
            rows < sink.deltas.load(Ordering::SeqCst) * 2 * n_nodes as u64,
            "deltas must be narrower than full republishes: {rows}"
        );
    }

    #[test]
    fn buffer_is_bounded() {
        let (corpus, split, model) = fitted();
        let mut online = OnlineActor::new(
            model,
            OnlineParams {
                buffer: 16,
                ..OnlineParams::default()
            },
        );
        for &rid in split.valid.iter().chain(split.test.iter()) {
            online.observe(corpus.record(rid));
        }
        assert!(online.buffer.len() <= 16);
    }

    #[test]
    fn corrupt_stream_records_are_skipped_and_model_stays_finite() {
        let (corpus, _, model) = fitted();
        let beach = corpus.vocab().get("beach").expect("beach in vocab");
        let n_user = model.space().n_user;
        let snapshot: Vec<Vec<f32>> = (0..model.space().len())
            .map(|i| model.store().centers.row(i).to_vec())
            .collect();
        let mut online = OnlineActor::new(model, OnlineParams::default());
        let base = Record {
            id: mobility::RecordId(0),
            user: mobility::UserId(0),
            timestamp: mobility::synth::EPOCH_BASE + 3600,
            location: GeoPoint::new(40.7, -73.9),
            keywords: vec![beach],
            mentions: vec![],
        };
        let bad = [
            // NaN latitude.
            Record {
                location: GeoPoint::new(f64::NAN, -73.9),
                ..base.clone()
            },
            // Infinite longitude.
            Record {
                location: GeoPoint::new(40.7, f64::INFINITY),
                ..base.clone()
            },
            // Coordinates far out of range.
            Record {
                location: GeoPoint::new(1234.0, -73.9),
                ..base.clone()
            },
            // User unseen at fit time.
            Record {
                user: mobility::UserId(n_user + 10),
                ..base.clone()
            },
            // No keywords at all.
            Record {
                keywords: vec![],
                ..base.clone()
            },
            // Only out-of-vocabulary keywords.
            Record {
                keywords: vec![mobility::KeywordId(u32::MAX)],
                ..base.clone()
            },
        ];
        for rec in &bad {
            assert!(!online.observe(rec), "should reject {rec:?}");
        }
        assert_eq!(online.observed(), 0);
        assert_eq!(online.skipped_records(), bad.len() as u64);
        // Rejected records must not have touched a single embedding row.
        let model = online.into_model();
        for (i, row) in snapshot.iter().enumerate() {
            assert_eq!(model.store().centers.row(i), row.as_slice(), "row {i}");
        }
    }

    #[test]
    fn valid_record_after_corrupt_burst_still_learns() {
        let (corpus, _, model) = fitted();
        let beach = corpus.vocab().get("beach").expect("beach in vocab");
        let mut online = OnlineActor::new(model, OnlineParams::default());
        let good = Record {
            id: mobility::RecordId(1),
            user: mobility::UserId(0),
            timestamp: mobility::synth::EPOCH_BASE + 3600,
            location: GeoPoint::new(40.7, -73.9),
            keywords: vec![beach],
            mentions: vec![],
        };
        let poisoned = Record {
            location: GeoPoint::new(f64::NAN, f64::NAN),
            ..good.clone()
        };
        for _ in 0..50 {
            online.observe(&poisoned);
        }
        assert!(online.observe(&good));
        assert_eq!(online.observed(), 1);
        assert_eq!(online.skipped_records(), 50);
        let model = online.into_model();
        for i in (0..model.space().len()).step_by(17) {
            assert!(model.store().centers.row(i).iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn vectors_stay_finite_under_streaming() {
        let (corpus, split, model) = fitted();
        let mut online = OnlineActor::new(model, OnlineParams::default());
        for &rid in split.test.iter() {
            online.observe(corpus.record(rid));
        }
        let model = online.into_model();
        for i in (0..model.space().len()).step_by(31) {
            assert!(model.store().centers.row(i).iter().all(|x| x.is_finite()));
        }
    }
}
