//! Ablation variants of §6.3.

use serde::{Deserialize, Serialize};

use crate::config::ActorConfig;

/// The three models compared in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// ACTOR-complete.
    Complete,
    /// ACTOR w/o inter: no user-layer pre-training, no `M_inter` training.
    WithoutInter,
    /// ACTOR w/o intra: words treated as individual textual units (no
    /// bag-of-words sum).
    WithoutIntra,
}

impl Variant {
    /// All variants in Table 4 row order.
    pub const ALL: [Variant; 3] = [
        Variant::WithoutInter,
        Variant::WithoutIntra,
        Variant::Complete,
    ];

    /// Applies the variant's switches to a base configuration.
    pub fn apply(self, mut config: ActorConfig) -> ActorConfig {
        match self {
            Variant::Complete => {}
            Variant::WithoutInter => {
                config.use_inter = false;
            }
            Variant::WithoutIntra => {
                config.use_intra_bag = false;
            }
        }
        config
    }

    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Complete => "ACTOR-complete",
            Variant::WithoutInter => "ACTOR w/o inter",
            Variant::WithoutIntra => "ACTOR w/o intra",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_changes_nothing() {
        let base = ActorConfig::default();
        let c = Variant::Complete.apply(base.clone());
        assert!(c.use_inter && c.use_intra_bag);
        assert_eq!(c.dim, base.dim);
    }

    #[test]
    fn without_inter_disables_inter_only() {
        let c = Variant::WithoutInter.apply(ActorConfig::default());
        assert!(!c.use_inter);
        assert!(c.use_intra_bag);
    }

    #[test]
    fn without_intra_disables_bag_only() {
        let c = Variant::WithoutIntra.apply(ActorConfig::default());
        assert!(c.use_inter);
        assert!(!c.use_intra_bag);
    }

    #[test]
    fn labels_are_distinct() {
        let set: std::collections::HashSet<_> =
            Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(set.len(), 3);
    }
}
