//! Snapshot publication: the hook that connects training to serving.
//!
//! A serving layer (see `crates/serve`) wants to pick up fresh models the
//! moment training produces them — at the end of a batch fit, after a
//! checkpoint-restored resume, or every N records of a streaming update —
//! without `core` depending on any particular serving implementation.
//! [`ModelSink`] is that seam: anything that can absorb a finished
//! [`TrainedModel`] implements it, and the training entry points accept
//! one.

use mobility::{Corpus, RecordId};

use crate::config::ActorConfig;
use crate::error::FitError;
use crate::model::TrainedModel;
use crate::pipeline::{fit, FitReport};
use crate::resilient::{fit_resume, ResilienceOptions, ResilienceReport};

/// A destination for freshly trained models.
///
/// Implementations must tolerate being called from whatever thread runs
/// training and should do their heavy lifting (index builds, snapshot
/// swaps) without blocking for long — `publish` sits on the training
/// thread's critical path.
pub trait ModelSink: Send + Sync {
    /// Absorbs a finished model. The sink receives a borrow and copies
    /// what it needs (`TrainedModel` is `Clone`); training retains
    /// ownership and may keep mutating its copy afterwards.
    fn publish(&self, model: &TrainedModel);
}

/// A sink that drops every model; useful as a default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ModelSink for NullSink {
    fn publish(&self, _model: &TrainedModel) {}
}

/// [`fit`](crate::pipeline::fit), then publish the finished model to
/// `sink` before returning it — so a query engine starts answering from
/// the new model in the same breath the training call completes.
pub fn fit_with_sink(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    sink: &dyn ModelSink,
) -> Result<(TrainedModel, FitReport), FitError> {
    let (model, report) = fit(corpus, train_ids, config)?;
    sink.publish(&model);
    Ok((model, report))
}

/// [`fit_resume`](crate::resilient::fit_resume), then publish the
/// recovered-and-finished model to `sink` — the restart path of a serving
/// deployment: crash, resume from the newest intact checkpoint, republish.
pub fn fit_resume_with_sink(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    opts: &ResilienceOptions,
    sink: &dyn ModelSink,
) -> Result<(TrainedModel, FitReport, ResilienceReport), FitError> {
    let (model, report, resilience) = fit_resume(corpus, train_ids, config, opts)?;
    sink.publish(&model);
    Ok((model, report, resilience))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingSink {
        published: AtomicUsize,
        nodes_seen: AtomicUsize,
    }

    impl ModelSink for CountingSink {
        fn publish(&self, model: &TrainedModel) {
            self.published.fetch_add(1, Ordering::SeqCst);
            self.nodes_seen.store(model.space().len(), Ordering::SeqCst);
        }
    }

    #[test]
    fn fit_with_sink_publishes_the_finished_model() {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(5)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let sink = CountingSink {
            published: AtomicUsize::new(0),
            nodes_seen: AtomicUsize::new(0),
        };
        let (model, _) =
            fit_with_sink(&corpus, &split.train, &ActorConfig::fast(), &sink).unwrap();
        assert_eq!(sink.published.load(Ordering::SeqCst), 1);
        assert_eq!(sink.nodes_seen.load(Ordering::SeqCst), model.space().len());
    }

    #[test]
    fn cloned_model_is_independent_of_the_original() {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(6)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let (mut model, _) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
        let frozen = model.clone();
        let before: Vec<f32> = frozen.store().centers.row(0).to_vec();
        // Mutate the original; the clone must not move.
        model.store.centers.row_mut(0).fill(123.0);
        assert_eq!(frozen.store().centers.row(0), before.as_slice());
        assert!(model.store().centers.row(0).iter().all(|&x| x == 123.0));
    }
}
