//! Snapshot publication: the hook that connects training to serving.
//!
//! A serving layer (see `crates/serve`) wants to pick up fresh models the
//! moment training produces them — at the end of a batch fit, after a
//! checkpoint-restored resume, or every N records of a streaming update —
//! without `core` depending on any particular serving implementation.
//! [`ModelSink`] is that seam: anything that can absorb a finished
//! [`TrainedModel`] implements it, and the training entry points accept
//! one.

use embed::StoreDelta;
use mobility::{Corpus, RecordId};

use crate::config::ActorConfig;
use crate::error::FitError;
use crate::model::TrainedModel;
use crate::pipeline::{fit, FitReport};
use crate::resilient::{fit_resume, ResilienceOptions, ResilienceReport};

/// A destination for freshly trained models.
///
/// Implementations must tolerate being called from whatever thread runs
/// training and should do their heavy lifting (index builds, snapshot
/// swaps) without blocking for long — `publish` sits on the training
/// thread's critical path.
///
/// Both methods receive a borrow; the sink copies what it needs and
/// training retains ownership. Because the model is artifacts + store
/// (see [`crate::ModelArtifacts`]), a sink that keeps the `Arc` from a
/// previous publish can recognize an unchanged artifact set by pointer
/// and reuse everything derived from it.
pub trait ModelSink: Send + Sync {
    /// Absorbs a finished model in full.
    fn publish(&self, model: &TrainedModel);

    /// Absorbs an incrementally updated model: only the store rows listed
    /// in `delta` changed since this sink last saw `model` (same artifact
    /// `Arc`, same shape). Publishers obtain the delta from
    /// [`embed::EmbeddingStore::drain_dirty`] between training steps.
    ///
    /// The default forwards to [`ModelSink::publish`], so sinks without an
    /// incremental path stay correct — just not cheap.
    fn publish_delta(&self, model: &TrainedModel, delta: &StoreDelta) {
        let _ = delta;
        self.publish(model);
    }
}

/// A sink that drops every model; useful as a default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ModelSink for NullSink {
    fn publish(&self, _model: &TrainedModel) {}
}

/// Records one publish in the obs registry: `core.publish.count` counts
/// publishes of either form, `core.publish.dirty_rows` accumulates the
/// store rows actually shipped (all rows for a full publish, the delta's
/// row count for an incremental one).
pub(crate) fn record_publish(dirty_rows: usize) {
    obs::counter("core.publish.count").incr();
    obs::counter("core.publish.dirty_rows").add(dirty_rows as u64);
}

/// [`fit`](crate::pipeline::fit), then publish the finished model to
/// `sink` before returning it — so a query engine starts answering from
/// the new model in the same breath the training call completes.
pub fn fit_with_sink(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    sink: &dyn ModelSink,
) -> Result<(TrainedModel, FitReport), FitError> {
    let (model, report) = fit(corpus, train_ids, config)?;
    record_publish(2 * model.store().n_nodes());
    sink.publish(&model);
    Ok((model, report))
}

/// [`fit_resume`](crate::resilient::fit_resume), then publish the
/// recovered-and-finished model to `sink` — the restart path of a serving
/// deployment: crash, resume from the newest intact checkpoint, republish.
pub fn fit_resume_with_sink(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    opts: &ResilienceOptions,
    sink: &dyn ModelSink,
) -> Result<(TrainedModel, FitReport, ResilienceReport), FitError> {
    let (model, report, resilience) = fit_resume(corpus, train_ids, config, opts)?;
    record_publish(2 * model.store().n_nodes());
    sink.publish(&model);
    Ok((model, report, resilience))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingSink {
        published: AtomicUsize,
        nodes_seen: AtomicUsize,
    }

    impl ModelSink for CountingSink {
        fn publish(&self, model: &TrainedModel) {
            self.published.fetch_add(1, Ordering::SeqCst);
            self.nodes_seen.store(model.space().len(), Ordering::SeqCst);
        }
    }

    #[test]
    fn fit_with_sink_publishes_the_finished_model() {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(5)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let sink = CountingSink {
            published: AtomicUsize::new(0),
            nodes_seen: AtomicUsize::new(0),
        };
        let (model, _) =
            fit_with_sink(&corpus, &split.train, &ActorConfig::fast(), &sink).unwrap();
        assert_eq!(sink.published.load(Ordering::SeqCst), 1);
        assert_eq!(sink.nodes_seen.load(Ordering::SeqCst), model.space().len());
    }

    #[test]
    fn delta_publish_carries_only_dirty_rows() {
        struct DeltaSink {
            full: AtomicUsize,
            delta_rows: AtomicUsize,
        }
        impl ModelSink for DeltaSink {
            fn publish(&self, _model: &TrainedModel) {
                self.full.fetch_add(1, Ordering::SeqCst);
            }
            fn publish_delta(&self, _model: &TrainedModel, delta: &StoreDelta) {
                self.delta_rows.fetch_add(delta.dirty_rows(), Ordering::SeqCst);
            }
        }

        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(6)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let (mut model, _) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
        let sink = DeltaSink {
            full: AtomicUsize::new(0),
            delta_rows: AtomicUsize::new(0),
        };

        // Sync point, then touch exactly two center rows.
        let sync = model.store().close_generation();
        model.store_mut().centers.row_mut(0).fill(123.0);
        model.store_mut().centers.row_mut(3).fill(-1.0);
        let delta = model.store().drain_dirty(sync);
        sink.publish_delta(&model, &delta);
        assert_eq!(sink.delta_rows.load(Ordering::SeqCst), 2);
        assert_eq!(sink.full.load(Ordering::SeqCst), 0, "no full-model publish");

        // A sink without an incremental path falls back to a full publish.
        struct FullOnly(AtomicUsize);
        impl ModelSink for FullOnly {
            fn publish(&self, _model: &TrainedModel) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let fallback = FullOnly(AtomicUsize::new(0));
        fallback.publish_delta(&model, &delta);
        assert_eq!(fallback.0.load(Ordering::SeqCst), 1);
    }
}
