//! Trained-model persistence.
//!
//! A [`TrainedModel`] mixes large dense matrices (saved as raw
//! little-endian bytes via [`embed::Matrix::to_bytes`]) with small
//! structured metadata (hotspot centers, vocabulary, configuration —
//! saved as serde-serializable [`ModelMeta`]). The container format is a
//! single buffer: a magic header, a length-prefixed JSON-agnostic
//! metadata blob produced by the caller's serde format of choice, then
//! the embedding-store bytes.
//!
//! The crate deliberately does not pick a serde wire format (none is in
//! the approved dependency set); [`TrainedModel::to_parts`] and
//! [`TrainedModel::from_saved_parts`] expose the split so callers can
//! pair [`ModelMeta`] with any format, while
//! [`TrainedModel::save_bincode_like`] / [`TrainedModel::load_bincode_like`] provide a
//! self-contained binary envelope using `bytes` only.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use embed::EmbeddingStore;
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::{GeoPoint, Vocabulary};
use serde::{Deserialize, Serialize};
use stgraph::NodeSpace;

use crate::config::ActorConfig;
use crate::model::TrainedModel;

/// Serializable metadata of a trained model (everything except the
/// embedding matrices).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Node layout.
    pub space: NodeSpace,
    /// Spatial hotspot centers.
    pub spatial_centers: Vec<GeoPoint>,
    /// Temporal hotspot centers (seconds within the period).
    pub temporal_centers: Vec<f64>,
    /// Circular period of the temporal units, in seconds.
    pub temporal_period: f64,
    /// The vocabulary.
    pub vocab: Vocabulary,
    /// Training configuration.
    pub config: ActorConfig,
}

/// Magic prefix of the self-contained envelope.
const MAGIC: &[u8; 8] = b"ACTORST1";

impl TrainedModel {
    /// Splits the model into serializable metadata plus the store bytes.
    pub fn to_parts(&self) -> (ModelMeta, Bytes) {
        let meta = ModelMeta {
            space: *self.space(),
            spatial_centers: self.spatial_hotspots().centers().to_vec(),
            temporal_centers: self.temporal_hotspots().centers().to_vec(),
            temporal_period: self.temporal_hotspots().period(),
            vocab: self.vocab().clone(),
            config: self.config().clone(),
        };
        (meta, self.store().to_bytes())
    }

    /// Rebuilds a model from [`TrainedModel::to_parts`] output.
    ///
    /// Hotspot assignment indices are reconstructed from the saved
    /// centers (detection is not re-run; counts are not preserved, they
    /// are irrelevant to inference).
    pub fn from_saved_parts(meta: ModelMeta, store_bytes: Bytes) -> Result<Self, String> {
        let store = EmbeddingStore::from_bytes(store_bytes)?;
        if store.n_nodes() != meta.space.len() {
            return Err(format!(
                "store has {} rows but node space expects {}",
                store.n_nodes(),
                meta.space.len()
            ));
        }
        if meta.spatial_centers.is_empty() || meta.temporal_centers.is_empty() {
            return Err("saved model must have at least one hotspot per modality".into());
        }
        if meta.spatial_centers.len() != meta.space.n_location as usize
            || meta.temporal_centers.len() != meta.space.n_time as usize
        {
            return Err("hotspot counts disagree with the node space".into());
        }
        let spatial = SpatialHotspots::from_centers(
            &meta.spatial_centers,
            MeanShiftParams::with_bandwidth(meta.config.spatial_bandwidth),
        );
        let temporal = TemporalHotspots::from_centers_with_period(
            &meta.temporal_centers,
            meta.temporal_period,
        );
        Ok(TrainedModel::from_parts(
            store,
            meta.space,
            spatial,
            temporal,
            meta.vocab,
            meta.config,
        ))
    }

    /// Serializes the whole model into one self-contained binary buffer.
    ///
    /// Metadata is encoded with a minimal internal binary encoding (no
    /// external format crate); see [`TrainedModel::load_bincode_like`].
    pub fn save_bincode_like(&self) -> Bytes {
        let (meta, store) = self.to_parts();
        let meta_bytes = encode_meta(&meta);
        let mut buf = BytesMut::with_capacity(16 + meta_bytes.len() + store.len());
        buf.put_slice(MAGIC);
        buf.put_u64_le(meta_bytes.len() as u64);
        buf.put_slice(&meta_bytes);
        buf.put_slice(&store);
        buf.freeze()
    }

    /// Loads a model saved by [`TrainedModel::save_bincode_like`].
    pub fn load_bincode_like(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.len() < 16 || &bytes[..8] != MAGIC {
            return Err("not an ACTORST1 model buffer".into());
        }
        bytes.advance(8);
        let meta_len = bytes.get_u64_le() as usize;
        if bytes.len() < meta_len {
            return Err("metadata truncated".into());
        }
        let meta_bytes = bytes.split_to(meta_len);
        let meta = decode_meta(meta_bytes)?;
        Self::from_saved_parts(meta, bytes)
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(bytes: &mut Bytes) -> Result<String, String> {
    if bytes.len() < 4 {
        return Err("string header truncated".into());
    }
    let len = bytes.get_u32_le() as usize;
    if bytes.len() < len {
        return Err("string body truncated".into());
    }
    let raw = bytes.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|e| e.to_string())
}

fn encode_meta(meta: &ModelMeta) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(meta.space.n_time);
    buf.put_u32_le(meta.space.n_location);
    buf.put_u32_le(meta.space.n_word);
    buf.put_u32_le(meta.space.n_user);

    buf.put_u64_le(meta.spatial_centers.len() as u64);
    for c in &meta.spatial_centers {
        buf.put_f64_le(c.lat);
        buf.put_f64_le(c.lon);
    }
    buf.put_u64_le(meta.temporal_centers.len() as u64);
    for &t in &meta.temporal_centers {
        buf.put_f64_le(t);
    }
    buf.put_f64_le(meta.temporal_period);

    buf.put_u64_le(meta.vocab.len() as u64);
    for (_, word, count) in meta.vocab.iter() {
        put_str(&mut buf, word);
        buf.put_u64_le(count);
    }

    // Config: the fields inference needs.
    let c = &meta.config;
    buf.put_u64_le(c.dim as u64);
    buf.put_f32_le(c.learning_rate);
    buf.put_u64_le(c.negatives as u64);
    buf.put_f64_le(c.spatial_bandwidth);
    buf.put_f64_le(c.temporal_bandwidth);
    buf.put_u64_le(c.seed);
    buf.freeze()
}

fn decode_meta(mut bytes: Bytes) -> Result<ModelMeta, String> {
    let need = |bytes: &Bytes, n: usize| -> Result<(), String> {
        if bytes.len() < n {
            Err("metadata truncated".into())
        } else {
            Ok(())
        }
    };
    need(&bytes, 16)?;
    let space = NodeSpace {
        n_time: bytes.get_u32_le(),
        n_location: bytes.get_u32_le(),
        n_word: bytes.get_u32_le(),
        n_user: bytes.get_u32_le(),
    };
    need(&bytes, 8)?;
    let n_spatial = bytes.get_u64_le() as usize;
    need(&bytes, n_spatial * 16)?;
    let spatial_centers = (0..n_spatial)
        .map(|_| GeoPoint::new(bytes.get_f64_le(), bytes.get_f64_le()))
        .collect();
    need(&bytes, 8)?;
    let n_temporal = bytes.get_u64_le() as usize;
    need(&bytes, n_temporal * 8)?;
    let temporal_centers = (0..n_temporal).map(|_| bytes.get_f64_le()).collect();
    need(&bytes, 8)?;
    let temporal_period = bytes.get_f64_le();

    need(&bytes, 8)?;
    let n_words = bytes.get_u64_le() as usize;
    let mut vocab = Vocabulary::new();
    for _ in 0..n_words {
        let word = get_str(&mut bytes)?;
        need(&bytes, 8)?;
        let count = bytes.get_u64_le();
        let id = vocab
            .intern(&word)
            .ok_or_else(|| format!("saved vocabulary contains invalid word {word:?}"))?;
        // intern set count to 1; restore the saved count.
        for _ in 1..count {
            vocab.bump(id);
        }
    }

    need(&bytes, 8 + 4 + 8 + 8 + 8 + 8)?;
    let config = ActorConfig {
        dim: bytes.get_u64_le() as usize,
        learning_rate: bytes.get_f32_le(),
        negatives: bytes.get_u64_le() as usize,
        spatial_bandwidth: bytes.get_f64_le(),
        temporal_bandwidth: bytes.get_f64_le(),
        seed: bytes.get_u64_le(),
        ..ActorConfig::default()
    };

    Ok(ModelMeta {
        space,
        spatial_centers,
        temporal_centers,
        temporal_period,
        vocab,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::fit;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn model() -> TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(50)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        fit(&corpus, &split.train, &ActorConfig::fast()).unwrap().0
    }

    #[test]
    fn envelope_round_trip_preserves_inference() {
        let m = model();
        let buf = m.save_bincode_like();
        let loaded = TrainedModel::load_bincode_like(buf).unwrap();

        assert_eq!(loaded.space(), m.space());
        assert_eq!(loaded.vocab().len(), m.vocab().len());
        // Same vectors.
        for i in (0..m.space().len()).step_by(41) {
            assert_eq!(loaded.store().centers.row(i), m.store().centers.row(i));
        }
        // Same hotspot assignment behaviour.
        let p = mobility::GeoPoint::new(40.7, -73.95);
        assert_eq!(loaded.location_node(p), m.location_node(p));
        assert_eq!(
            loaded.time_of_day_node(7_000.0),
            m.time_of_day_node(7_000.0)
        );
        // Same query results.
        let kw = m.vocab().get("coffee");
        if let Some(kw) = kw {
            let q = m.vector(m.word_node(kw)).to_vec();
            assert_eq!(
                m.nearest_words(&q, 5),
                loaded.nearest_words(&q, 5)
            );
        }
    }

    #[test]
    fn vocabulary_counts_survive() {
        let m = model();
        let buf = m.save_bincode_like();
        let loaded = TrainedModel::load_bincode_like(buf).unwrap();
        for (id, word, count) in m.vocab().iter() {
            let lid = loaded.vocab().get(word).expect("word survives");
            assert_eq!(lid, id, "ids must be stable for node lookups");
            assert_eq!(loaded.vocab().count(lid), count);
        }
    }

    #[test]
    fn load_rejects_garbage_and_truncation() {
        let m = model();
        let buf = m.save_bincode_like();
        assert!(TrainedModel::load_bincode_like(Bytes::from_static(b"nope")).is_err());
        assert!(TrainedModel::load_bincode_like(buf.slice(0..20)).is_err());
        let mut wrong_magic = buf.to_vec();
        wrong_magic[0] = b'X';
        assert!(TrainedModel::load_bincode_like(Bytes::from(wrong_magic)).is_err());
    }

    #[test]
    fn parts_reject_mismatched_store() {
        let m = model();
        let (meta, _) = m.to_parts();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
        let wrong = EmbeddingStore::init(3, 4, &mut rng);
        assert!(TrainedModel::from_saved_parts(meta, wrong.to_bytes()).is_err());
    }
}
