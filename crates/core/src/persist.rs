//! Trained-model persistence.
//!
//! A [`TrainedModel`] mixes large dense matrices (saved as raw
//! little-endian bytes via [`embed::Matrix::to_bytes`]) with small
//! structured metadata (hotspot centers, vocabulary, configuration —
//! saved as serde-serializable [`ModelMeta`]). The container format is a
//! single buffer: a magic header, a length-prefixed JSON-agnostic
//! metadata blob produced by the caller's serde format of choice, then
//! the embedding-store bytes.
//!
//! The crate deliberately does not pick a serde wire format (none is in
//! the approved dependency set); [`TrainedModel::to_parts`] and
//! [`TrainedModel::from_saved_parts`] expose the split so callers can
//! pair [`ModelMeta`] with any format, while
//! [`TrainedModel::save_bincode_like`] / [`TrainedModel::load_bincode_like`] provide a
//! self-contained binary envelope using `bytes` only.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use embed::EmbeddingStore;
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::{GeoPoint, Vocabulary};
use serde::{Deserialize, Serialize};
use stgraph::NodeSpace;

use crate::config::ActorConfig;
use crate::error::PersistError;
use crate::model::TrainedModel;

/// Serializable metadata of a trained model (everything except the
/// embedding matrices).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Node layout.
    pub space: NodeSpace,
    /// Spatial hotspot centers.
    pub spatial_centers: Vec<GeoPoint>,
    /// Temporal hotspot centers (seconds within the period).
    pub temporal_centers: Vec<f64>,
    /// Circular period of the temporal units, in seconds.
    pub temporal_period: f64,
    /// The vocabulary.
    pub vocab: Vocabulary,
    /// Training configuration.
    pub config: ActorConfig,
}

/// Magic prefix of the self-contained envelope.
const MAGIC: &[u8; 8] = b"ACTORST1";

impl TrainedModel {
    /// Splits the model into serializable metadata plus the store bytes.
    pub fn to_parts(&self) -> (ModelMeta, Bytes) {
        let meta = ModelMeta {
            space: *self.space(),
            spatial_centers: self.spatial_hotspots().centers().to_vec(),
            temporal_centers: self.temporal_hotspots().centers().to_vec(),
            temporal_period: self.temporal_hotspots().period(),
            vocab: self.vocab().clone(),
            config: self.config().clone(),
        };
        (meta, self.store().to_bytes())
    }

    /// Rebuilds a model from [`TrainedModel::to_parts`] output.
    ///
    /// Hotspot assignment indices are reconstructed from the saved
    /// centers (detection is not re-run; counts are not preserved, they
    /// are irrelevant to inference).
    pub fn from_saved_parts(meta: ModelMeta, store_bytes: Bytes) -> Result<Self, PersistError> {
        let store = EmbeddingStore::from_bytes(store_bytes)
            .map_err(|detail| PersistError::Store { detail })?;
        if store.n_nodes() != meta.space.len() {
            return Err(PersistError::Inconsistent {
                detail: format!(
                    "store has {} rows but node space expects {}",
                    store.n_nodes(),
                    meta.space.len()
                ),
            });
        }
        if meta.spatial_centers.is_empty() || meta.temporal_centers.is_empty() {
            return Err(PersistError::Inconsistent {
                detail: "saved model must have at least one hotspot per modality".into(),
            });
        }
        if meta.spatial_centers.len() != meta.space.n_location as usize
            || meta.temporal_centers.len() != meta.space.n_time as usize
        {
            return Err(PersistError::Inconsistent {
                detail: "hotspot counts disagree with the node space".into(),
            });
        }
        let spatial = SpatialHotspots::from_centers(
            &meta.spatial_centers,
            MeanShiftParams::with_bandwidth(meta.config.spatial_bandwidth),
        );
        let temporal = TemporalHotspots::from_centers_with_period(
            &meta.temporal_centers,
            meta.temporal_period,
        );
        Ok(TrainedModel::from_parts(
            store,
            meta.space,
            spatial,
            temporal,
            meta.vocab,
            meta.config,
        ))
    }

    /// Serializes the whole model into one self-contained binary buffer.
    ///
    /// Metadata is encoded with a minimal internal binary encoding (no
    /// external format crate); see [`TrainedModel::load_bincode_like`].
    pub fn save_bincode_like(&self) -> Bytes {
        let (meta, store) = self.to_parts();
        let meta_bytes = encode_meta(&meta);
        let mut buf = BytesMut::with_capacity(16 + meta_bytes.len() + store.len());
        buf.put_slice(MAGIC);
        buf.put_u64_le(meta_bytes.len() as u64);
        buf.put_slice(&meta_bytes);
        buf.put_slice(&store);
        buf.freeze()
    }

    /// Loads a model saved by [`TrainedModel::save_bincode_like`].
    ///
    /// The envelope is treated as untrusted input: every length and
    /// count is checked against the bytes actually present before any
    /// allocation or loop sized by it, so truncated, bit-flipped, or
    /// malicious buffers return a [`PersistError`] instead of panicking
    /// or exhausting memory.
    pub fn load_bincode_like(mut bytes: Bytes) -> Result<Self, PersistError> {
        if bytes.len() < 8 || &bytes[..8] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        bytes.advance(8);
        if bytes.len() < 8 {
            return Err(PersistError::Truncated {
                reading: "metadata length",
                need: 8,
                have: bytes.len(),
            });
        }
        let meta_len64 = bytes.get_u64_le();
        let meta_len = usize::try_from(meta_len64)
            .ok()
            .filter(|&n| n <= bytes.len())
            .ok_or(PersistError::ImplausibleLength {
                field: "metadata length",
                claimed: meta_len64,
            })?;
        let meta_bytes = bytes.split_to(meta_len);
        let meta = decode_meta(meta_bytes)?;
        Self::from_saved_parts(meta, bytes)
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(bytes: &mut Bytes, field: &'static str) -> Result<String, PersistError> {
    if bytes.len() < 4 {
        return Err(PersistError::Truncated {
            reading: field,
            need: 4,
            have: bytes.len(),
        });
    }
    let len = bytes.get_u32_le() as usize;
    if bytes.len() < len {
        return Err(PersistError::Truncated {
            reading: field,
            need: len,
            have: bytes.len(),
        });
    }
    let raw = bytes.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| PersistError::BadString { field })
}

fn encode_meta(meta: &ModelMeta) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(meta.space.n_time);
    buf.put_u32_le(meta.space.n_location);
    buf.put_u32_le(meta.space.n_word);
    buf.put_u32_le(meta.space.n_user);

    buf.put_u64_le(meta.spatial_centers.len() as u64);
    for c in &meta.spatial_centers {
        buf.put_f64_le(c.lat);
        buf.put_f64_le(c.lon);
    }
    buf.put_u64_le(meta.temporal_centers.len() as u64);
    for &t in &meta.temporal_centers {
        buf.put_f64_le(t);
    }
    buf.put_f64_le(meta.temporal_period);

    buf.put_u64_le(meta.vocab.len() as u64);
    for (_, word, count) in meta.vocab.iter() {
        put_str(&mut buf, word);
        buf.put_u64_le(count);
    }

    // Config: the fields inference needs.
    let c = &meta.config;
    buf.put_u64_le(c.dim as u64);
    buf.put_f32_le(c.learning_rate);
    buf.put_u64_le(c.negatives as u64);
    buf.put_f64_le(c.spatial_bandwidth);
    buf.put_f64_le(c.temporal_bandwidth);
    buf.put_f32_le(c.grad_clip);
    buf.put_u64_le(c.seed);
    buf.freeze()
}

/// Bounds-checks `n` bytes remaining before a fixed-width read.
fn need(bytes: &Bytes, reading: &'static str, n: usize) -> Result<(), PersistError> {
    if bytes.len() < n {
        Err(PersistError::Truncated {
            reading,
            need: n,
            have: bytes.len(),
        })
    } else {
        Ok(())
    }
}

/// Reads a `u64` element count and verifies the payload actually holds
/// `count × elem_size` more bytes *before* any allocation or loop uses
/// the count. The multiplication is checked: a count near `u64::MAX`
/// must not wrap into a small number and pass the length test.
fn get_count(
    bytes: &mut Bytes,
    field: &'static str,
    elem_size: usize,
) -> Result<usize, PersistError> {
    need(bytes, field, 8)?;
    let claimed = bytes.get_u64_le();
    let implausible = PersistError::ImplausibleLength { field, claimed };
    let count = usize::try_from(claimed).map_err(|_| implausible.clone())?;
    let total = count.checked_mul(elem_size).ok_or(implausible.clone())?;
    if total > bytes.len() {
        return Err(implausible);
    }
    Ok(count)
}

fn decode_meta(mut bytes: Bytes) -> Result<ModelMeta, PersistError> {
    need(&bytes, "node space", 16)?;
    let space = NodeSpace {
        n_time: bytes.get_u32_le(),
        n_location: bytes.get_u32_le(),
        n_word: bytes.get_u32_le(),
        n_user: bytes.get_u32_le(),
    };
    let n_spatial = get_count(&mut bytes, "spatial center count", 16)?;
    let spatial_centers = (0..n_spatial)
        .map(|_| GeoPoint::new(bytes.get_f64_le(), bytes.get_f64_le()))
        .collect();
    let n_temporal = get_count(&mut bytes, "temporal center count", 8)?;
    let temporal_centers = (0..n_temporal).map(|_| bytes.get_f64_le()).collect();
    need(&bytes, "temporal period", 8)?;
    let temporal_period = bytes.get_f64_le();

    // Each vocabulary entry is at least 12 bytes (string header + count),
    // which bounds the loop by the payload size.
    let n_words = get_count(&mut bytes, "vocabulary count", 12)?;
    let mut vocab = Vocabulary::new();
    for _ in 0..n_words {
        let word = get_str(&mut bytes, "vocabulary word")?;
        need(&bytes, "vocabulary word count", 8)?;
        let count = bytes.get_u64_le();
        let id = vocab
            .intern(&word)
            .ok_or(PersistError::Inconsistent {
                detail: format!("saved vocabulary contains invalid word {word:?}"),
            })?;
        // intern set count to 1; restore the rest in O(1) — the count is
        // attacker-controlled, so no count-sized loops.
        vocab.bump_by(id, count.saturating_sub(1));
    }

    need(&bytes, "config", 8 + 4 + 8 + 8 + 8 + 4 + 8)?;
    let config = ActorConfig {
        dim: bytes.get_u64_le() as usize,
        learning_rate: bytes.get_f32_le(),
        negatives: bytes.get_u64_le() as usize,
        spatial_bandwidth: bytes.get_f64_le(),
        temporal_bandwidth: bytes.get_f64_le(),
        grad_clip: bytes.get_f32_le(),
        seed: bytes.get_u64_le(),
        ..ActorConfig::default()
    };
    if !bytes.is_empty() {
        return Err(PersistError::TrailingBytes { extra: bytes.len() });
    }

    Ok(ModelMeta {
        space,
        spatial_centers,
        temporal_centers,
        temporal_period,
        vocab,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::fit;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn model() -> TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(50)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        fit(&corpus, &split.train, &ActorConfig::fast()).unwrap().0
    }

    #[test]
    fn envelope_round_trip_preserves_inference() {
        let m = model();
        let buf = m.save_bincode_like();
        let loaded = TrainedModel::load_bincode_like(buf).unwrap();

        assert_eq!(loaded.space(), m.space());
        assert_eq!(loaded.vocab().len(), m.vocab().len());
        // Same vectors.
        for i in (0..m.space().len()).step_by(41) {
            assert_eq!(loaded.store().centers.row(i), m.store().centers.row(i));
        }
        // Same hotspot assignment behaviour.
        let p = mobility::GeoPoint::new(40.7, -73.95);
        assert_eq!(loaded.location_node(p), m.location_node(p));
        assert_eq!(
            loaded.time_of_day_node(7_000.0),
            m.time_of_day_node(7_000.0)
        );
        // Same query results.
        let kw = m.vocab().get("coffee");
        if let Some(kw) = kw {
            let q = m.vector(m.word_node(kw)).to_vec();
            assert_eq!(
                m.nearest_words(&q, 5),
                loaded.nearest_words(&q, 5)
            );
        }
    }

    #[test]
    fn vocabulary_counts_survive() {
        let m = model();
        let buf = m.save_bincode_like();
        let loaded = TrainedModel::load_bincode_like(buf).unwrap();
        for (id, word, count) in m.vocab().iter() {
            let lid = loaded.vocab().get(word).expect("word survives");
            assert_eq!(lid, id, "ids must be stable for node lookups");
            assert_eq!(loaded.vocab().count(lid), count);
        }
    }

    #[test]
    fn load_rejects_garbage_and_truncation() {
        let m = model();
        let buf = m.save_bincode_like();
        assert!(TrainedModel::load_bincode_like(Bytes::from_static(b"nope")).is_err());
        assert!(TrainedModel::load_bincode_like(buf.slice(0..20)).is_err());
        let mut wrong_magic = buf.to_vec();
        wrong_magic[0] = b'X';
        assert!(TrainedModel::load_bincode_like(Bytes::from(wrong_magic)).is_err());
    }

    #[test]
    fn every_truncation_of_the_envelope_errors_without_panicking() {
        let m = model();
        let buf = m.save_bincode_like();
        // Exhaustive truncation over the structured prefix, then strided
        // over the (large, homogeneous) matrix tail.
        let dense_prefix = 4096.min(buf.len());
        let cuts = (0..dense_prefix).chain((dense_prefix..buf.len()).step_by(997));
        for cut in cuts {
            let r = TrainedModel::load_bincode_like(buf.slice(0..cut));
            assert!(r.is_err(), "truncation at {cut} of {} must fail", buf.len());
        }
        // The untruncated buffer still loads.
        TrainedModel::load_bincode_like(buf).unwrap();
    }

    #[test]
    fn hostile_length_fields_are_rejected_not_allocated() {
        let m = model();
        let base = m.save_bincode_like();
        // Metadata length claiming more than the buffer holds.
        let mut evil = base.to_vec();
        evil[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            TrainedModel::load_bincode_like(Bytes::from(evil)).err(),
            Some(PersistError::ImplausibleLength {
                field: "metadata length",
                claimed: u64::MAX,
            })
        );
        // Spatial-center count near u64::MAX: the checked multiply must
        // catch the wrap instead of allocating.
        let mut evil = base.to_vec();
        let spatial_count_at = 16 + 16; // magic + meta_len, then node space
        evil[spatial_count_at..spatial_count_at + 8]
            .copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let r = TrainedModel::load_bincode_like(Bytes::from(evil)).err();
        assert!(
            matches!(
                r,
                Some(PersistError::ImplausibleLength {
                    field: "spatial center count",
                    ..
                })
            ),
            "{r:?}"
        );
        // Vocabulary count pointing past the payload (the classic
        // count-sized-loop DoS) is rejected up front.
        let (meta, store) = m.to_parts();
        let mut meta_bytes = super::encode_meta(&meta).to_vec();
        let vocab_count_at = 16 // node space
            + 8 + meta.spatial_centers.len() * 16
            + 8 + meta.temporal_centers.len() * 8
            + 8; // period
        meta_bytes[vocab_count_at..vocab_count_at + 8]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u64_le(meta_bytes.len() as u64);
        buf.put_slice(&meta_bytes);
        buf.put_slice(&store);
        let r = TrainedModel::load_bincode_like(buf.freeze()).err();
        assert!(
            matches!(
                r,
                Some(PersistError::ImplausibleLength {
                    field: "vocabulary count",
                    ..
                })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn random_bit_flips_never_panic_the_loader() {
        let m = model();
        let base = m.save_bincode_like();
        for round in 0..64 {
            let mut flipped = base.to_vec();
            resilience::FaultPlan::new(plan_seed(round)).flip_bytes(&mut flipped, 5);
            // Any outcome but a panic is acceptable: some flips only touch
            // float payloads and still load.
            let _ = TrainedModel::load_bincode_like(Bytes::from(flipped));
        }

        fn plan_seed(round: u64) -> u64 {
            0xBADC_0DE0 ^ (round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }

    #[test]
    fn grad_clip_survives_the_envelope() {
        let m = model();
        let buf = m.save_bincode_like();
        let loaded = TrainedModel::load_bincode_like(buf).unwrap();
        assert_eq!(loaded.config().grad_clip, m.config().grad_clip);
    }

    #[test]
    fn parts_reject_mismatched_store() {
        let m = model();
        let (meta, _) = m.to_parts();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
        let wrong = EmbeddingStore::init(3, 4, &mut rng);
        assert!(TrainedModel::from_saved_parts(meta, wrong.to_bytes()).is_err());
    }
}
