//! Checkpointed and resumable fitting — the resilience driver.
//!
//! [`fit_checkpointed`] runs Algorithm 1 exactly like [`crate::fit`], but
//! cuts the SGD loop (lines 5–11) into segments at the cadence of a
//! [`CheckpointPolicy`] and seals an atomic, CRC-verified snapshot of the
//! embedding store after every segment. [`fit_resume`] restarts an
//! interrupted run from the newest intact snapshot, walking backwards
//! past truncated or bit-flipped files, and replays the remaining
//! segments with the same per-segment seeds — a single-threaded resumed
//! run is bit-identical to the uninterrupted checkpointed run.
//!
//! The driver also watches each segment's mean loss with a
//! [`DivergenceDetector`]: on divergence it restores the newest
//! checkpoint and retries the segment with the learning rate backed off
//! per [`RetryPolicy`], failing with [`FitError::Diverged`] once the
//! budget is exhausted. Stages 1–4 (hotspots, graphs, pre-training,
//! init) are deterministic given `(corpus, config)` and are re-derived on
//! resume rather than checkpointed — only the mutable embedding store,
//! its dirty-tracking generation cursor, and the epoch cursor go to disk;
//! the immutable [`crate::ModelArtifacts`] are rebuilt by `prepare`.

use std::path::PathBuf;

use embed::EmbeddingStore;
use mobility::{Corpus, RecordId};
use resilience::{
    CheckpointError, CheckpointMeta, CheckpointPolicy, CheckpointStore, DivergenceDetector,
    FaultPlan, RetryPolicy, Verdict,
};

use crate::config::ActorConfig;
use crate::error::FitError;
use crate::model::TrainedModel;
use crate::pipeline::{mean_trace, new_trace, prepare, train_epoch_range, FitReport};

/// Where and how a resilient fit checkpoints, retries, and (in tests)
/// fails on purpose.
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// Directory the checkpoint files live in (created on first write).
    pub dir: PathBuf,
    /// Snapshot cadence. A disabled policy still writes the epoch-0 seed
    /// checkpoint and one final checkpoint, so divergence recovery and
    /// post-crash resume always have a restore target.
    pub policy: CheckpointPolicy,
    /// Divergence backoff budget.
    pub retry: RetryPolicy,
    /// Optional deterministic fault plan; a run consults
    /// [`FaultPlan::should_fail`] at every segment boundary *after*
    /// sealing that boundary's checkpoint, simulating a worker dying
    /// mid-run without losing the snapshot.
    pub fault: Option<FaultPlan>,
    /// Divergence detector override. `None` derives the absolute ceiling
    /// from the config: a fully saturated update costs
    /// ≈ `(1 + negatives)·16.1` nats (the sigmoid table clamps at
    /// σ = 1e-7), and a segment mean halfway to saturation means the
    /// model is pinned, not learning.
    pub divergence: Option<DivergenceDetector>,
}

impl ResilienceOptions {
    /// Default policies rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            policy: CheckpointPolicy::default(),
            retry: RetryPolicy::default(),
            fault: None,
            divergence: None,
        }
    }
}

/// What the resilience machinery did during one (attempted) fit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceReport {
    /// Checkpoints sealed, including the epoch-0 seed checkpoint.
    pub checkpoints_written: usize,
    /// The checkpoint this run resumed from, when [`fit_resume`] found
    /// an intact one.
    pub resumed_from: Option<CheckpointMeta>,
    /// Checkpoint restores performed after divergence verdicts.
    pub restores: u32,
    /// Divergence retries spent.
    pub retries: u32,
    /// Learning-rate scale in effect when training finished (`1.0`
    /// unless divergence backoff shrank it).
    pub final_lr_scale: f32,
}

/// [`crate::fit`] with checkpointing, divergence backoff, and fault
/// injection. Starts from scratch: stale checkpoints in
/// [`ResilienceOptions::dir`] are cleared first so a fresh run can never
/// restore another run's state.
pub fn fit_checkpointed(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    opts: &ResilienceOptions,
) -> Result<(TrainedModel, FitReport, ResilienceReport), FitError> {
    run_resilient(corpus, train_ids, config, opts, false)
}

/// Resumes an interrupted [`fit_checkpointed`] run from the newest intact
/// checkpoint in [`ResilienceOptions::dir`], then trains the remaining
/// epochs under the same policies. Falls back to a from-scratch run when
/// no usable checkpoint exists (none written yet, all corrupt, or written
/// under a different seed).
pub fn fit_resume(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    opts: &ResilienceOptions,
) -> Result<(TrainedModel, FitReport, ResilienceReport), FitError> {
    run_resilient(corpus, train_ids, config, opts, true)
}

/// Weighted samples one training epoch performs: each of the
/// `batches_per_type` rounds draws a `7·batch_size` weighted budget (one
/// `batch_size` batch per meta-graph edge type).
pub(crate) fn samples_per_epoch(config: &ActorConfig) -> u64 {
    7 * config.batch_size as u64 * config.batches_per_type as u64
}

fn payload_error(detail: String) -> FitError {
    FitError::Checkpoint(CheckpointError::Io {
        context: "decode checkpoint payload".to_string(),
        detail,
    })
}

/// Seals and fsyncs snapshots on a background thread so the (disk-bound)
/// checkpoint write overlaps the next training segment instead of
/// stalling it. Writes are serialized — submitting joins the previous
/// write first — and the driver joins explicitly before anything that
/// needs the file on disk: a divergence restore, a simulated worker
/// death, or returning to the caller. A failed write therefore surfaces
/// (as [`FitError::Checkpoint`]) at the next submit/join instead of the
/// moment it happened.
struct AsyncWriter {
    store: CheckpointStore,
    pending: Option<std::thread::JoinHandle<Result<(), CheckpointError>>>,
}

impl AsyncWriter {
    fn new(store: CheckpointStore) -> Self {
        Self {
            store,
            pending: None,
        }
    }

    /// Lands the in-flight write, if any.
    fn join(&mut self) -> Result<(), FitError> {
        if let Some(handle) = self.pending.take() {
            handle
                .join()
                .map_err(|_| payload_error("checkpoint writer thread panicked".to_string()))?
                .map_err(FitError::Checkpoint)?;
        }
        Ok(())
    }

    /// Queues one snapshot write; `payload` is the caller's own copy of
    /// the store (taken on the training thread, so the segment that
    /// follows cannot race with the serialization).
    fn submit(&mut self, meta: CheckpointMeta, payload: bytes::Bytes) -> Result<(), FitError> {
        self.join()?;
        let store = self.store.clone();
        self.pending = Some(std::thread::spawn(move || {
            store.write(&meta, &payload).map(|_| ())
        }));
        Ok(())
    }
}

fn run_resilient(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    opts: &ResilienceOptions,
    resume: bool,
) -> Result<(TrainedModel, FitReport, ResilienceReport), FitError> {
    config.validate()?;
    if train_ids.is_empty() {
        return Err(FitError::EmptyTrainingSplit);
    }
    let baseline = obs::snapshot();
    let fit_span = obs::span!("core.fit");
    let mut prep = prepare(corpus, train_ids, config);

    let ckpts = CheckpointStore::new(&opts.dir, opts.policy.keep);
    if !resume {
        ckpts.clear();
    }
    let spe = samples_per_epoch(config);
    // Segment length in epochs; a disabled policy trains in one segment.
    let interval = opts
        .policy
        .interval_epochs(spe)
        .unwrap_or(config.max_epochs)
        .max(1);
    let written_counter = obs::counter("core.resilience.checkpoints");
    let restored_counter = obs::counter("core.resilience.restores");

    let mut report = ResilienceReport {
        final_lr_scale: 1.0,
        ..ResilienceReport::default()
    };
    let mut epoch = 0usize;
    let mut lr_scale = 1.0f32;

    // Checkpoint payloads are `[generation: u64 LE][store bytes]`: the
    // store's dirty-tracking generation cursor rides along so a resumed
    // run's publish sync points stay monotonic with the original run's.
    let restore_store = |payload: Vec<u8>, current: &EmbeddingStore| -> Result<EmbeddingStore, FitError> {
        if payload.len() < 8 {
            return Err(payload_error("checkpoint payload truncated".to_string()));
        }
        let generation = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let restored = EmbeddingStore::from_bytes(bytes::Bytes::from(payload).slice(8..))
            .map_err(payload_error)?;
        if restored.n_nodes() != current.n_nodes() || restored.dim() != current.dim() {
            return Err(payload_error(format!(
                "checkpoint shape {}x{} does not match this corpus/config ({}x{})",
                restored.n_nodes(),
                restored.dim(),
                current.n_nodes(),
                current.dim()
            )));
        }
        restored.set_generation(generation);
        Ok(restored)
    };

    if resume {
        if let Some((meta, payload)) = ckpts.latest_valid() {
            // A checkpoint from a different seed or a longer schedule is
            // another run's state — ignore it and start fresh.
            if meta.seed == config.seed && (meta.epoch as usize) <= config.max_epochs {
                prep.store = restore_store(payload, &prep.store)?;
                epoch = meta.epoch as usize;
                lr_scale = meta.lr_scale;
                report.resumed_from = Some(meta);
                restored_counter.incr();
            }
        }
    }

    let mut writer = AsyncWriter::new(ckpts.clone());
    let write_checkpoint =
        |writer: &mut AsyncWriter, epoch: usize, lr_scale: f32, store: &EmbeddingStore| {
            let meta = CheckpointMeta {
                epoch: epoch as u64,
                samples: epoch as u64 * spe,
                seed: config.seed,
                lr_scale,
            };
            let body = store.to_bytes();
            let mut payload = bytes::BytesMut::with_capacity(8 + body.len());
            bytes::BufMut::put_u64_le(&mut payload, store.generation());
            bytes::BufMut::put_slice(&mut payload, &body);
            writer.submit(meta, payload.freeze())
        };

    // Seed checkpoint: divergence recovery and post-crash resume have a
    // restore target even if the very first segment blows up.
    if report.resumed_from.is_none() {
        write_checkpoint(&mut writer, 0, lr_scale, &prep.store)?;
        report.checkpoints_written += 1;
        written_counter.incr();
    }

    let mut detector = opts.divergence.clone().unwrap_or_else(|| {
        let ceiling = (1 + config.negatives) as f64 * 16.1 * 0.5;
        DivergenceDetector::new(4.0, ceiling)
    });
    let mut trace = new_trace();
    let mut attempt = 0u32;
    let train_span = obs::span!("core.fit.train");
    while epoch < config.max_epochs {
        let seg_end = (epoch + interval).min(config.max_epochs);
        // Snapshot the trace so a diverged (and retried) segment does not
        // pollute the loss curve with its blown-up updates.
        let trace_before = trace.clone();
        let stats = train_epoch_range(&prep, config, epoch, seg_end, lr_scale, &mut trace);
        // A segment with zero updates (degenerate split) reports a mean
        // loss of 0.0; feeding that to the detector would poison its
        // best-loss window, so treat it as trivially healthy.
        let verdict = if stats.updates == 0 {
            Verdict::Healthy
        } else {
            detector.observe(stats.mean_loss)
        };
        match verdict {
            Verdict::Healthy => {
                epoch = seg_end;
                write_checkpoint(&mut writer, epoch, lr_scale, &prep.store)?;
                report.checkpoints_written += 1;
                written_counter.incr();
                if let Some(plan) = &opts.fault {
                    let samples = epoch as u64 * spe;
                    if plan.should_fail(samples) {
                        // Land the boundary snapshot before simulating the
                        // death: a real SIGKILL can only lose work *after*
                        // the last completed write.
                        writer.join()?;
                        return Err(FitError::Interrupted { epoch, samples });
                    }
                }
            }
            Verdict::Diverged(_) => {
                attempt += 1;
                let Some(scale) = opts.retry.scale_for_attempt(attempt) else {
                    return Err(FitError::Diverged {
                        epoch,
                        retries: opts.retry.max_retries,
                    });
                };
                lr_scale = scale;
                trace = trace_before;
                // The restore target may still be in flight on the writer
                // thread; land it before reading the directory.
                writer.join()?;
                let Some((meta, payload)) = ckpts.latest_valid() else {
                    return Err(payload_error(
                        "no intact checkpoint to restore after divergence".to_string(),
                    ));
                };
                prep.store = restore_store(payload, &prep.store)?;
                epoch = meta.epoch as usize;
                report.restores += 1;
                report.retries += 1;
                restored_counter.incr();
            }
        }
    }
    writer.join()?;
    let train_seconds = train_span.finish().as_secs_f64();
    let total_seconds = fit_span.finish().as_secs_f64();
    report.final_lr_scale = lr_scale;

    let fit_report = FitReport {
        n_spatial: prep.artifacts.spatial_hotspots().len(),
        n_temporal: prep.artifacts.temporal_hotspots().len(),
        n_nodes: prep.graph.n_nodes(),
        n_edges: prep.graph.n_edges(),
        n_user_edges: prep.n_user_edges,
        pretrained: prep.pretrained,
        train_seconds,
        loss_trace: mean_trace(&trace),
        total_seconds,
        telemetry: obs::RunTelemetry::since(&baseline),
    };
    Ok((prep.into_model(), fit_report, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "actor-resilient-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_setup(seed: u64) -> (Corpus, Vec<RecordId>, ActorConfig) {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(seed)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let mut config = ActorConfig::fast();
        config.seed = seed;
        config.threads = 1;
        (corpus, split.train, config)
    }

    fn centers_of(model: &TrainedModel) -> Vec<f32> {
        (0..model.space().len())
            .flat_map(|i| model.store().centers.row(i).to_vec())
            .collect()
    }

    #[test]
    fn checkpointed_fit_writes_cadenced_snapshots() {
        let (corpus, train, mut config) = small_setup(31);
        config.max_epochs = 6;
        let dir = tmp_dir("cadence");
        let mut opts = ResilienceOptions::new(&dir);
        opts.policy = CheckpointPolicy::every_epochs(2);
        let (_, fit_report, res) = fit_checkpointed(&corpus, &train, &config, &opts).unwrap();
        // Seed checkpoint + epochs 2, 4, 6.
        assert_eq!(res.checkpoints_written, 4);
        assert_eq!(res.retries, 0);
        assert_eq!(res.final_lr_scale, 1.0);
        assert_eq!(fit_report.loss_trace.len(), 20);
        let ckpts = CheckpointStore::new(&dir, opts.policy.keep);
        let (meta, _) = ckpts.latest_valid().unwrap();
        assert_eq!(meta.epoch, 6);
        assert_eq!(meta.samples, 6 * samples_per_epoch(&config));
        assert_eq!(meta.seed, config.seed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_segment_checkpointed_fit_matches_plain_fit_exactly() {
        // A disabled policy trains epochs [0, max) as one segment with
        // the historical seed, so the model must be bit-identical to
        // crate::fit's.
        let (corpus, train, config) = small_setup(32);
        let dir = tmp_dir("identity");
        let mut opts = ResilienceOptions::new(&dir);
        opts.policy = CheckpointPolicy::disabled();
        let (plain, _) = crate::pipeline::fit(&corpus, &train, &config).unwrap();
        let (ckpt, _, _) = fit_checkpointed(&corpus, &train, &config, &opts).unwrap();
        assert_eq!(centers_of(&plain), centers_of(&ckpt));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_worker_failure_interrupts_at_a_checkpoint_boundary() {
        let (corpus, train, mut config) = small_setup(33);
        config.max_epochs = 6;
        let dir = tmp_dir("interrupt");
        let mut opts = ResilienceOptions::new(&dir);
        opts.policy = CheckpointPolicy::every_epochs(2);
        let spe = samples_per_epoch(&config);
        opts.fault = Some(FaultPlan::new(9).with_worker_failure_after(3 * spe));
        let err = fit_checkpointed(&corpus, &train, &config, &opts).err();
        // 3 epochs of samples are first surpassed at the epoch-4 boundary.
        assert_eq!(
            err,
            Some(FitError::Interrupted {
                epoch: 4,
                samples: 4 * spe
            })
        );
        // The boundary checkpoint was sealed before the simulated death.
        let ckpts = CheckpointStore::new(&dir, opts.policy.keep);
        assert_eq!(ckpts.latest_valid().unwrap().0.epoch, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_continues_from_the_interruption() {
        let (corpus, train, mut config) = small_setup(34);
        config.max_epochs = 6;
        let dir = tmp_dir("resume");
        let mut opts = ResilienceOptions::new(&dir);
        opts.policy = CheckpointPolicy::every_epochs(2);
        let spe = samples_per_epoch(&config);
        opts.fault = Some(FaultPlan::new(9).with_worker_failure_after(3 * spe));
        assert!(fit_checkpointed(&corpus, &train, &config, &opts).is_err());

        let mut resume_opts = opts.clone();
        resume_opts.fault = None;
        let (resumed, _, res) = fit_resume(&corpus, &train, &config, &resume_opts).unwrap();
        assert_eq!(res.resumed_from.unwrap().epoch, 4);

        // Single-threaded, the resumed model is bit-identical to an
        // uninterrupted checkpointed run (same segments, same seeds).
        let dir2 = tmp_dir("resume-ref");
        let mut ref_opts = resume_opts.clone();
        ref_opts.dir = dir2.clone();
        let (uninterrupted, _, _) = fit_checkpointed(&corpus, &train, &config, &ref_opts).unwrap();
        assert_eq!(centers_of(&resumed), centers_of(&uninterrupted));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn resume_with_no_checkpoints_starts_fresh() {
        let (corpus, train, mut config) = small_setup(35);
        config.max_epochs = 2;
        let dir = tmp_dir("fresh");
        let opts = ResilienceOptions::new(&dir);
        let (_, _, res) = fit_resume(&corpus, &train, &config, &opts).unwrap();
        assert!(res.resumed_from.is_none());
        assert!(res.checkpoints_written >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_ignores_checkpoints_from_another_seed() {
        let (corpus, train, mut config) = small_setup(36);
        config.max_epochs = 2;
        let dir = tmp_dir("foreign-seed");
        let opts = ResilienceOptions::new(&dir);
        fit_checkpointed(&corpus, &train, &config, &opts).unwrap();
        let mut other = config.clone();
        other.seed = config.seed + 1;
        let (_, _, res) = fit_resume(&corpus, &train, &other, &opts).unwrap();
        assert!(res.resumed_from.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergent_training_backs_off_and_recovers() {
        let (corpus, train, mut config) = small_setup(37);
        config.max_epochs = 4;
        // An absurd learning rate with clipping off pins the loss at a
        // saturated plateau (≈ 6 nats/update, the sigmoid table clamp)
        // that a healthy run never approaches — the tightened ceiling
        // below catches it. Pre-training is disabled so the blow-up
        // happens inside the (retryable) SGD loop, not in stage 3.
        config.learning_rate = 500.0;
        config.grad_clip = 0.0;
        config.use_inter = false;
        let dir = tmp_dir("diverge");
        let mut opts = ResilienceOptions::new(&dir);
        opts.policy = CheckpointPolicy::every_epochs(1);
        opts.divergence = Some(DivergenceDetector::new(4.0, 4.0));
        opts.retry = RetryPolicy {
            max_retries: 8,
            backoff: 0.001,
            min_scale: 1e-6,
        };
        let (model, _, res) = fit_checkpointed(&corpus, &train, &config, &opts).unwrap();
        assert!(res.retries > 0, "{res:?}");
        assert_eq!(res.restores, res.retries);
        assert!(res.final_lr_scale < 1.0);
        for i in 0..model.space().len() {
            assert!(model.store().centers.row(i).iter().all(|x| x.is_finite()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retry_budget_is_a_typed_error() {
        let (corpus, train, mut config) = small_setup(38);
        config.max_epochs = 2;
        config.learning_rate = 500.0;
        config.grad_clip = 0.0;
        config.use_inter = false;
        let dir = tmp_dir("exhaust");
        let mut opts = ResilienceOptions::new(&dir);
        opts.policy = CheckpointPolicy::every_epochs(1);
        opts.divergence = Some(DivergenceDetector::new(4.0, 4.0));
        // Backoff barely backs off, so every retry diverges again.
        opts.retry = RetryPolicy {
            max_retries: 2,
            backoff: 0.999,
            min_scale: 0.9,
        };
        let err = fit_checkpointed(&corpus, &train, &config, &opts).err();
        assert!(
            matches!(err, Some(FitError::Diverged { retries: 2, .. })),
            "{err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
