//! The end-to-end ACTOR fitting pipeline (Algorithm 1).

use std::sync::Arc;

use embed::hogwild;
use embed::{EmbeddingStore, LineOrder, LineParams, LineTrainer, NegativeSamplingUpdate};
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::{Corpus, GeoPoint, RecordId};
use rand::seq::IndexedRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};
use stgraph::build::RecordUnits;
use stgraph::{
    ActivityGraph, ActivityGraphBuilder, BuildOptions, EdgeSampler, EdgeType, EdgeTypeMap,
    NegativeTable, NodeType, NodeTypeMap, UserGraph,
};

use crate::config::ActorConfig;
use crate::error::FitError;
use crate::model::{ModelArtifacts, TrainedModel};

/// Diagnostics emitted by [`fit`].
///
/// The structural counts and stage timings are a convenience view over
/// the run's [`obs`] telemetry: timings come from the `core.fit.*` spans
/// and the full span tree / counter set rides along in
/// [`FitReport::telemetry`] (render it with
/// [`obs::RunTelemetry::render_tree`] or serialize it with
/// [`obs::RunTelemetry::to_json`]).
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Detected spatial hotspots.
    pub n_spatial: usize,
    /// Detected temporal hotspots.
    pub n_temporal: usize,
    /// Activity graph vertices.
    pub n_nodes: usize,
    /// Activity graph edges.
    pub n_edges: usize,
    /// User interaction graph edges.
    pub n_user_edges: usize,
    /// Whether the user layer was pre-trained (line 3 ran).
    pub pretrained: bool,
    /// Wall-clock seconds spent in the SGD loop (lines 5–11).
    pub train_seconds: f64,
    /// Mean per-update loss in 20 progress buckets across training
    /// (negative log-likelihood of Eq. 7); a decreasing curve is the
    /// convergence diagnostic.
    pub loss_trace: Vec<f64>,
    /// Total wall-clock seconds of the whole fit.
    pub total_seconds: f64,
    /// Everything the telemetry registry recorded during this fit:
    /// the nested `core.fit.*` span tree plus the counters and histograms
    /// flushed by the lower layers (hotspot, stgraph, embed).
    pub telemetry: obs::RunTelemetry,
}

/// Fits ACTOR on the training split of `corpus`.
///
/// Each Algorithm-1 stage runs under an [`obs`] span (`core.fit.hotspot`,
/// `.graph`, `.pretrain`, `.train` nested in `core.fit`), so a live
/// [`obs::Reporter`] shows where a long fit currently is and the returned
/// [`FitReport::telemetry`] carries the per-stage breakdown.
pub fn fit(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
) -> Result<(TrainedModel, FitReport), FitError> {
    config.validate()?;
    if train_ids.is_empty() {
        return Err(FitError::EmptyTrainingSplit);
    }
    let baseline = obs::snapshot();
    let fit_span = obs::span!("core.fit");
    let prep = prepare(corpus, train_ids, config);

    let train_span = obs::span!("core.fit.train");
    let mut trace = new_trace();
    train_epoch_range(&prep, config, 0, config.max_epochs, 1.0, &mut trace);
    let train_seconds = train_span.finish().as_secs_f64();
    let total_seconds = fit_span.finish().as_secs_f64();

    let report = FitReport {
        n_spatial: prep.artifacts.spatial.len(),
        n_temporal: prep.artifacts.temporal.len(),
        n_nodes: prep.graph.n_nodes(),
        n_edges: prep.graph.n_edges(),
        n_user_edges: prep.n_user_edges,
        pretrained: prep.pretrained,
        train_seconds,
        loss_trace: mean_trace(&trace),
        total_seconds,
        telemetry: obs::RunTelemetry::since(&baseline),
    };
    Ok((prep.into_model(), report))
}

/// Everything Algorithm-1 lines 1–4 produce: the shared immutable
/// [`ModelArtifacts`] (hotspots, layout, vocab, config — built here,
/// never copied again), the initialized embedding store, and the training
/// context (graph, samplers, negative tables) that lines 5–11 consume.
///
/// Splitting preparation from training lets the resilience driver
/// ([`crate::fit_checkpointed`]) run the SGD loop as a sequence of
/// checkpointed segments over one shared `Prepared` — and swap the store
/// for a restored snapshot between segments. The sampler / negative
/// tables live in dense [`EdgeTypeMap`]s: the SGD hot loop resolves them
/// per training step, and an array index beats hashing a
/// `(EdgeType, NodeType)` key there.
pub(crate) struct Prepared {
    pub artifacts: Arc<ModelArtifacts>,
    pub store: EmbeddingStore,
    pub graph: ActivityGraph,
    pub units: Vec<RecordUnits>,
    pub edge_samplers: EdgeTypeMap<EdgeSampler>,
    pub neg_tables: EdgeTypeMap<NodeTypeMap<NegativeTable>>,
    pub n_user_edges: usize,
    pub pretrained: bool,
}

impl Prepared {
    /// Consumes the prepared state into a [`TrainedModel`] — a move of
    /// the store and an `Arc` bump, no copies.
    pub(crate) fn into_model(self) -> TrainedModel {
        TrainedModel::from_shared(self.artifacts, self.store)
    }
}

/// Dense lookup of the negative table for `(ty, side)`.
#[inline]
fn neg_of(
    neg_tables: &EdgeTypeMap<NodeTypeMap<NegativeTable>>,
    ty: EdgeType,
    side: NodeType,
) -> Option<&NegativeTable> {
    neg_tables.get(ty)?.get(side)
}

/// Algorithm-1 lines 1–4 (hotspots, graphs, LINE pre-training, unit
/// initialization) plus the sampler and negative-table construction that
/// lines 5–11 draw from. Deterministic given `(corpus, train_ids,
/// config)` — resuming a run re-derives this state instead of
/// checkpointing it.
pub(crate) fn prepare(corpus: &Corpus, train_ids: &[RecordId], config: &ActorConfig) -> Prepared {
    // Line 1: hotspot detection.
    let hotspot_span = obs::span!("core.fit.hotspot");
    let points: Vec<GeoPoint> = train_ids
        .iter()
        .map(|&id| corpus.record(id).location)
        .collect();
    let seconds: Vec<f64> = train_ids
        .iter()
        .map(|&id| (corpus.record(id).timestamp as f64).rem_euclid(config.temporal_period))
        .collect();
    let spatial = SpatialHotspots::detect(
        &points,
        MeanShiftParams::with_bandwidth(config.spatial_bandwidth),
        config.min_hotspot_support,
    );
    let temporal = TemporalHotspots::detect_with_period(
        &seconds,
        config.temporal_period,
        MeanShiftParams::with_bandwidth(config.temporal_bandwidth),
        config.min_hotspot_support,
    );
    hotspot_span.finish();

    // Line 2: graph construction.
    let graph_span = obs::span!("core.fit.graph");
    let builder = ActivityGraphBuilder::new(
        corpus,
        &spatial,
        &temporal,
        BuildOptions {
            include_users: true,
            include_mentioned_users: config.include_mentioned_users,
        },
    );
    let (graph, units) = builder.build(train_ids);
    let user_graph = UserGraph::build(corpus, train_ids);
    let space = *graph.space();
    graph_span.finish();

    // Line 3: pre-train the user layer with LINE (second order).
    let pretrain_span = obs::span!("core.fit.pretrain");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut store = EmbeddingStore::init(space.len(), config.dim, &mut rng);
    let mut pretrained = false;
    if config.use_inter && !user_graph.is_empty() {
        let edges: Vec<(u32, u32, f64)> = user_graph
            .edges()
            .iter()
            .map(|&(a, b, w)| (a.0, b.0, w))
            .collect();
        if let Some(line) = LineTrainer::new(user_graph.n_users() as usize, &edges) {
            // Cap pre-training at ~100 samples per user edge: skip-gram
            // norms grow with oversampling, and outsized user vectors
            // would dominate the line-4 initialization of every unit.
            let samples = config
                .pretrain_samples
                .min(100 * user_graph.n_edges() as u64);
            let user_store = line.train(LineParams {
                dim: config.dim,
                samples,
                threads: config.threads,
                sgd: config.sgd(),
                order: LineOrder::Second,
                seed: config.seed ^ 0x11E,
            });
            pretrained = true;

            // Copy user embeddings into the joint store (users keep their
            // pre-trained vectors; isolated users keep random init — the
            // "random vector" rule of §5.2.1).
            let user_off = space.offset(NodeType::User) as usize;
            for u in user_graph.connected_users() {
                store
                    .centers
                    .set_row(user_off + u.idx(), user_store.centers.row(u.idx()));
                store
                    .contexts
                    .set_row(user_off + u.idx(), user_store.contexts.row(u.idx()));
            }

            // Line 4: initialize each unit's *center* from its strongest
            // user, keeping the unit's own small noise so
            // identical-initialized units remain distinguishable. Contexts
            // stay zero (the word2vec convention) — seeding them too would
            // plant a large shared component that the annealed learning
            // rate never fully washes out.
            if config.init_scale != 0.0 {
                for ty in [NodeType::Time, NodeType::Location, NodeType::Word] {
                    for node in space.nodes_of(ty) {
                        if let Some(user_node) = graph.strongest_user_of(node) {
                            let user_center = store.centers.row(user_node.idx()).to_vec();
                            let row = store.centers.row_mut(node.idx());
                            for (x, &u) in row.iter_mut().zip(&user_center) {
                                *x += config.init_scale * u;
                            }
                        }
                    }
                }
            }
        }
    }
    pretrain_span.finish();

    // Samplers for lines 5–11, in dense per-type tables. The per-type
    // alias and negative tables are independent of one another, so the
    // seven types build in parallel; results come back in `ALL` order and
    // are inserted serially, matching the single-threaded layout exactly.
    let sampler_span = obs::span!("core.fit.samplers");
    let built = par::par_map(&EdgeType::ALL, |_, &ty| {
        let sampler = EdgeSampler::new(&graph, ty);
        let (a, b) = ty.endpoints();
        let negs: Vec<(NodeType, NegativeTable)> = [a, b]
            .into_iter()
            .filter_map(|side| {
                NegativeTable::with_power(&graph, ty, side, config.negative_power)
                    .map(|t| (side, t))
            })
            .collect();
        (sampler, negs)
    });
    let mut edge_samplers: EdgeTypeMap<EdgeSampler> = EdgeTypeMap::new();
    let mut neg_tables: EdgeTypeMap<NodeTypeMap<NegativeTable>> = EdgeTypeMap::new();
    for (ty, (sampler, negs)) in EdgeType::ALL.into_iter().zip(built) {
        if let Some(s) = sampler {
            edge_samplers.insert(ty, s);
        }
        for (side, t) in negs {
            neg_tables
                .get_or_insert_with(ty, NodeTypeMap::new)
                .insert(side, t);
        }
    }
    sampler_span.finish();

    let artifacts = Arc::new(ModelArtifacts::new(
        space,
        spatial,
        temporal,
        corpus.vocab().clone(),
        config.clone(),
    ));

    Prepared {
        artifacts,
        store,
        graph,
        units,
        edge_samplers,
        neg_tables,
        n_user_edges: user_graph.n_edges(),
        pretrained,
    }
}

/// Number of progress buckets in [`FitReport::loss_trace`].
pub(crate) const TRACE_BUCKETS: usize = 20;

/// A fresh `(loss sum, update count)` trace accumulator.
pub(crate) fn new_trace() -> Vec<(f64, u64)> {
    vec![(0.0, 0); TRACE_BUCKETS]
}

/// Collapses a trace accumulator into per-bucket mean losses.
pub(crate) fn mean_trace(trace: &[(f64, u64)]) -> Vec<f64> {
    trace
        .iter()
        .map(|&(sum, n)| if n == 0 { 0.0 } else { sum / n as f64 })
        .collect()
}

/// Aggregate SGD statistics of one trained segment.
pub(crate) struct SegmentStats {
    /// Mean per-update loss across the segment (`0.0` when nothing ran);
    /// the resilience driver feeds this to its divergence detector.
    pub mean_loss: f64,
    /// Pair updates performed in the segment.
    pub updates: u64,
}

/// Per-thread bucket merge target plus segment loss totals.
struct TraceMerge {
    buckets: Vec<(f64, u64)>,
    loss: f64,
    updates: u64,
}

/// Lines 5–11: alternate inter-record and intra-record mini-batches over
/// epochs `[epoch_start, epoch_end)` of a `config.max_epochs` schedule.
///
/// Per-type batch sizes follow each type's share of the total edge weight:
/// Eq. 6 sums the *weighted* objectives `J_e = -Σ a_ij log p`, so a type
/// holding 40 % of the co-occurrence mass receives 40 % of the samples
/// (Algorithm 1's fixed `m` per type is read as the inner-loop batch
/// mechanism, not as an equal-weight prior over edge types).
///
/// Work is split as `epochs × batches_per_type` rounds distributed over
/// Hogwild threads, so the total sample budget is independent of the
/// thread count (required by the weak-scaling experiment, Fig. 12c).
/// Annealing progress and trace buckets are computed against the *whole*
/// schedule, so a run cut into checkpointed segments anneals exactly like
/// an uninterrupted one. `lr_scale` multiplies the learning rate
/// throughout the segment (the divergence-retry backoff; `1.0` is a
/// bit-exact no-op).
pub(crate) fn train_epoch_range(
    prep: &Prepared,
    config: &ActorConfig,
    epoch_start: usize,
    epoch_end: usize,
    lr_scale: f32,
    trace: &mut [(f64, u64)],
) -> SegmentStats {
    let total_epochs = config.max_epochs;
    debug_assert!(epoch_start <= epoch_end && epoch_end <= total_epochs);
    let span_epochs = epoch_end - epoch_start;
    let store = &prep.store;
    let graph = &prep.graph;
    let units = prep.units.as_slice();
    let edge_samplers = &prep.edge_samplers;
    let neg_tables = &prep.neg_tables;

    let merged = parking_lot::Mutex::new(TraceMerge {
        buckets: new_trace(),
        loss: 0.0,
        updates: 0,
    });
    // Live-throughput counter, flushed once per round (~7m updates) so the
    // SGD hot path never touches shared state.
    let updates_done = obs::counter("core.train.updates");
    let rounds = (span_epochs * config.batches_per_type) as u64;
    let m = config.batch_size;

    // Weight shares over the trained edge types (Eq. 6's implicit mix).
    let type_weight = |ty: EdgeType| -> f64 {
        graph.edges(ty).map_or(0.0, |te| te.total_weight())
    };
    let inter_w: f64 = if config.use_inter {
        EdgeType::INTER.iter().map(|&t| type_weight(t)).sum()
    } else {
        0.0
    };
    let intra_w: f64 = EdgeType::INTRA.iter().map(|&t| type_weight(t)).sum();
    let total_w = (inter_w + intra_w).max(1e-12);
    // Round budget: 7m weighted samples, as if all seven types ran an
    // m-sized batch. Each bag draw performs ~7 pair updates, so the
    // record-sample count is scaled down accordingly.
    let round_budget = 7.0 * m as f64;
    let inter_batches: Vec<(EdgeType, usize)> = EdgeType::INTER
        .iter()
        .map(|&t| {
            let share = if config.use_inter { type_weight(t) / total_w } else { 0.0 };
            (t, (round_budget * share).round() as usize)
        })
        .collect();
    let intra_share = intra_w / total_w;
    const BAG_UPDATES_PER_DRAW: f64 = 7.0;
    let bag_draws = (round_budget * intra_share / BAG_UPDATES_PER_DRAW).round() as usize;
    let intra_batches: Vec<(EdgeType, usize)> = EdgeType::INTRA
        .iter()
        .map(|&t| (t, (round_budget * type_weight(t) / total_w).round() as usize))
        .collect();

    // Per-segment Hogwild seed. A segment starting at epoch 0 reproduces
    // the historical whole-run stream (`seed ^ 0xAC7`, the golden-ratio
    // term multiplies to zero), so plain `fit` is bit-identical to the
    // pre-resilience pipeline; later segments decorrelate from it.
    let seed =
        (config.seed ^ 0xAC7) ^ (epoch_start as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let whole_run = epoch_start == 0 && epoch_end == total_epochs;

    hogwild::run(config.threads, rounds, seed, |_, rng, n| {
        let mut upd = NegativeSamplingUpdate::new(config.dim, config.sgd());
        let lr0 = config.learning_rate;
        if lr_scale != 1.0 {
            // Applies the backoff even when annealing is off (the loop
            // below never calls set_learning_rate then).
            upd.set_learning_rate(lr_scale * lr0);
        }
        let mut local = vec![(0.0f64, 0u64); TRACE_BUCKETS];
        for round in 0..n {
            // Linear annealing to 10% of η over the *whole-run* budget:
            // this thread's local round sits at global fraction
            // (e₀·n + span·round) / (E·n). The whole-run case uses the
            // reduced form round/n, which is the historical f32 sequence
            // bit for bit.
            if config.anneal && n > 0 {
                let progress = if whole_run {
                    round as f32 / n as f32
                } else {
                    ((epoch_start as f64
                        + span_epochs as f64 * (round as f64 / n as f64))
                        / total_epochs as f64) as f32
                };
                upd.set_learning_rate(lr_scale * (lr0 * (1.0 - 0.9 * progress)));
            }
            // Trace bucket from the same global fraction, in integer
            // arithmetic (the shared factors cancel exactly, so the
            // whole-run case matches the historical `round·B / n`).
            let num = epoch_start as u64 * n + span_epochs as u64 * round;
            let den = (total_epochs as u64 * n).max(1);
            let bucket =
                ((num * TRACE_BUCKETS as u64 / den) as usize).min(TRACE_BUCKETS - 1);
            let mut round_loss = 0.0f64;
            let mut round_updates = 0u64;
            // Inter-record meta-graph batches (line 6–8).
            if config.use_inter {
                for &(ty, count) in &inter_batches {
                    if let Some(sampler) = edge_samplers.get(ty) {
                        for _ in 0..count {
                            round_loss +=
                                train_edge(store, sampler, ty, neg_tables, &mut upd, rng);
                            round_updates += 1;
                        }
                    }
                }
            }
            // Intra-record meta-graph batches (line 9–11).
            if config.use_intra_bag {
                for _ in 0..bag_draws {
                    let (l, u) = train_record_bag(store, units, neg_tables, &mut upd, rng);
                    round_loss += l;
                    round_updates += u;
                }
            } else {
                for &(ty, count) in &intra_batches {
                    if let Some(sampler) = edge_samplers.get(ty) {
                        for _ in 0..count {
                            round_loss +=
                                train_edge(store, sampler, ty, neg_tables, &mut upd, rng);
                            round_updates += 1;
                        }
                    }
                }
            }
            local[bucket].0 += round_loss;
            local[bucket].1 += round_updates;
            updates_done.add(round_updates);
        }
        let mut merge = merged.lock();
        for (m, &(sum, count)) in merge.buckets.iter_mut().zip(&local) {
            m.0 += sum;
            m.1 += count;
        }
        merge.loss += local.iter().map(|&(sum, _)| sum).sum::<f64>();
        merge.updates += local.iter().map(|&(_, count)| count).sum::<u64>();
    });
    let merge = merged.into_inner();
    for (t, &(sum, count)) in trace.iter_mut().zip(&merge.buckets) {
        t.0 += sum;
        t.1 += count;
    }
    SegmentStats {
        mean_loss: if merge.updates == 0 {
            0.0
        } else {
            merge.loss / merge.updates as f64
        },
        updates: merge.updates,
    }
}

/// One plain edge update with a random direction flip; returns the loss.
fn train_edge(
    store: &EmbeddingStore,
    sampler: &EdgeSampler,
    ty: EdgeType,
    neg_tables: &EdgeTypeMap<NodeTypeMap<NegativeTable>>,
    upd: &mut NegativeSamplingUpdate,
    rng: &mut StdRng,
) -> f64 {
    let (mut a, mut b) = sampler.sample(rng);
    let (ta, tb) = ty.endpoints();
    let mut ctx_side = tb;
    if ta != tb && rng.random::<bool>() {
        std::mem::swap(&mut a, &mut b);
        ctx_side = ta;
    }
    if let Some(neg) = neg_of(neg_tables, ty, ctx_side) {
        upd.step(store, a.idx(), b.idx(), rng, |r| neg.sample(r).idx())
    } else {
        0.0
    }
}

/// One intra-record update with the bag-of-words textual representation
/// (footnote 4): sample a record, then train its T–L pair, its bag→L and
/// bag→T alignments (plus reverse word-context updates), and W–W pairs.
/// Returns `(loss sum, update count)`.
fn train_record_bag(
    store: &EmbeddingStore,
    units: &[RecordUnits],
    neg_tables: &EdgeTypeMap<NodeTypeMap<NegativeTable>>,
    upd: &mut NegativeSamplingUpdate,
    rng: &mut StdRng,
) -> (f64, u64) {
    let Some(rec) = units.choose(rng) else {
        return (0.0, 0);
    };
    let bag: Vec<usize> = rec.words.iter().map(|w| w.idx()).collect();
    let mut loss = 0.0f64;
    let mut updates = 0u64;

    // TL (both directions, random order).
    if let Some(neg) = neg_of(neg_tables, EdgeType::TL, NodeType::Location) {
        loss += upd.step(store, rec.time.idx(), rec.location.idx(), rng, |r| {
            neg.sample(r).idx()
        });
        updates += 1;
    }
    if let Some(neg) = neg_of(neg_tables, EdgeType::TL, NodeType::Time) {
        loss += upd.step(store, rec.location.idx(), rec.time.idx(), rng, |r| {
            neg.sample(r).idx()
        });
        updates += 1;
    }

    if !bag.is_empty() {
        // LW: bag → location, location → one word.
        if let Some(neg) = neg_of(neg_tables, EdgeType::LW, NodeType::Location) {
            loss += upd.step_bag(store, &bag, rec.location.idx(), rng, |r| neg.sample(r).idx());
            updates += 1;
        }
        if let Some(neg) = neg_of(neg_tables, EdgeType::LW, NodeType::Word) {
            let w = *bag.choose(rng).expect("non-empty bag");
            loss += upd.step(store, rec.location.idx(), w, rng, |r| neg.sample(r).idx());
            updates += 1;
        }
        // WT: bag → time, time → one word.
        if let Some(neg) = neg_of(neg_tables, EdgeType::WT, NodeType::Time) {
            loss += upd.step_bag(store, &bag, rec.time.idx(), rng, |r| neg.sample(r).idx());
            updates += 1;
        }
        if let Some(neg) = neg_of(neg_tables, EdgeType::WT, NodeType::Word) {
            let w = *bag.choose(rng).expect("non-empty bag");
            loss += upd.step(store, rec.time.idx(), w, rng, |r| neg.sample(r).idx());
            updates += 1;
        }
        // WW: up to three random ordered pairs — the record's word-pair
        // mass grows quadratically in its length, so a single pair would
        // under-train the heaviest intra edge class.
        if bag.len() >= 2 {
            if let Some(neg) = neg_of(neg_tables, EdgeType::WW, NodeType::Word) {
                let n_pairs = (bag.len() * (bag.len() - 1) / 2).min(3);
                for _ in 0..n_pairs {
                    let i = rng.random_range(0..bag.len());
                    let mut j = rng.random_range(0..bag.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    loss += upd.step(store, bag[i], bag[j], rng, |r| neg.sample(r).idx());
                    updates += 1;
                }
            }
        }
    }
    (loss, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use embed::math::cosine;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::CorpusSplit;
    use mobility::SplitSpec;

    fn fit_small(seed: u64, tweak: impl FnOnce(&mut ActorConfig)) -> (TrainedModel, FitReport) {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(seed)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let mut config = ActorConfig::fast();
        config.seed = seed;
        tweak(&mut config);
        fit(&corpus, &split.train, &config).unwrap()
    }

    #[test]
    fn fit_produces_sane_report() {
        let (model, report) = fit_small(1, |_| {});
        assert!(report.n_spatial > 3, "{report:?}");
        assert!(report.n_temporal >= 2, "{report:?}");
        assert!(report.n_edges > 100);
        assert!(report.n_user_edges > 0);
        assert!(report.pretrained);
        assert_eq!(model.space().n_word as usize, model.vocab().len());
    }

    #[test]
    fn loss_trace_decreases() {
        let (_, report) = fit_small(12, |c| {
            c.max_epochs = 40;
        });
        assert_eq!(report.loss_trace.len(), 20);
        assert!(report.loss_trace.iter().all(|&l| l.is_finite() && l >= 0.0));
        // The mean loss over the last quarter must sit below the first
        // quarter — SGD converges.
        let first: f64 = report.loss_trace[..5].iter().sum::<f64>() / 5.0;
        let last: f64 = report.loss_trace[15..].iter().sum::<f64>() / 5.0;
        assert!(
            last < first,
            "loss should fall: first {first:.4} -> last {last:.4}"
        );
    }

    #[test]
    fn fit_rejects_empty_training_split() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(2)).unwrap();
        let Err(err) = fit(&corpus, &[], &ActorConfig::fast()) else {
            panic!("empty split accepted");
        };
        assert_eq!(err, FitError::EmptyTrainingSplit);
    }

    #[test]
    fn fit_rejects_invalid_config_with_typed_error() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(2)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let mut config = ActorConfig::fast();
        config.dim = 0;
        let Err(err) = fit(&corpus, &split.train, &config) else {
            panic!("invalid config accepted");
        };
        assert_eq!(err, FitError::Config(crate::error::ConfigError::ZeroDim));
    }

    #[test]
    fn fit_report_exposes_stage_telemetry() {
        let (_, report) = fit_small(21, |_| {});
        let stage = |name: &str| {
            report
                .telemetry
                .spans
                .iter()
                .find(|s| s.name == "core.fit")
                .and_then(|root| root.children.iter().find(|c| c.name == name).cloned())
                .unwrap_or_else(|| panic!("span core.fit>{name} missing: {:?}", report.telemetry.spans))
        };
        // Every Algorithm-1 stage ran under the root span (counts can
        // exceed 1 when sibling tests fit concurrently — the registry is
        // process-global).
        for name in ["core.fit.hotspot", "core.fit.graph", "core.fit.pretrain", "core.fit.train"] {
            assert!(stage(name).count >= 1, "{name}");
        }
        // FitReport's timing fields are views over the same spans.
        let train = stage("core.fit.train");
        assert!(train.seconds + 0.05 >= report.train_seconds);
        assert!(report.total_seconds >= report.train_seconds);
        // The lower layers flushed their counters into the same capture.
        let counter = |name: &str| {
            report
                .telemetry
                .counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or(0)
        };
        assert!(counter("stgraph.records") > 0, "{:?}", report.telemetry.counters);
        assert!(counter("hotspot.meanshift.seeds") > 0);
        assert!(counter("core.train.updates") > 0);
        assert!(counter("embed.sgd.steps") >= counter("core.train.updates"));
    }

    #[test]
    fn embeddings_are_finite_after_training() {
        let (model, _) = fit_small(3, |_| {});
        for i in 0..model.space().len() {
            assert!(model
                .store()
                .centers
                .row(i)
                .iter()
                .all(|x| x.is_finite()));
        }
    }

    #[test]
    fn cooccurring_units_align() {
        // Words of the same theme should land closer together than words
        // of different themes (they co-occur in records). Averaged over
        // several pairs to be robust on the small test corpus.
        let (model, _) = fit_small(4, |c| {
            c.max_epochs = 60;
        });
        let v = model.vocab();
        let pairs = [("beach", "surf"), ("bar", "cocktail"), ("coffee", "latte")];
        let cross = [("beach", "cocktail"), ("bar", "latte"), ("coffee", "surf")];
        let mean_cos = |words: &[(&str, &str)]| -> f64 {
            let mut total = 0.0;
            for (a, b) in words {
                let (Some(a), Some(b)) = (v.get(a), v.get(b)) else {
                    panic!("theme words missing from vocab");
                };
                total += cosine(
                    model.vector(model.word_node(a)),
                    model.vector(model.word_node(b)),
                );
            }
            total / words.len() as f64
        };
        let same = mean_cos(&pairs);
        let diff = mean_cos(&cross);
        assert!(same > diff, "same-theme {same} vs cross-theme {diff}");
    }

    #[test]
    fn ablation_variants_fit() {
        let (_, r1) = fit_small(5, |c| c.use_inter = false);
        assert!(!r1.pretrained);
        let (_, r2) = fit_small(5, |c| c.use_intra_bag = false);
        assert!(r2.pretrained);
    }

    #[test]
    fn multithreaded_fit_works() {
        let (model, _) = fit_small(6, |c| c.threads = 3);
        assert!(model.vector(model.space().node(NodeType::Time, 0))[0].is_finite());
    }

    #[test]
    fn weekly_temporal_period_is_supported() {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(13)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let mut config = ActorConfig::fast();
        config.temporal_period = mobility::SECONDS_PER_WEEK as f64;
        config.temporal_bandwidth = 3.0 * 3600.0;
        let (model, report) = fit(&corpus, &split.train, &config).unwrap();
        assert!(report.n_temporal >= 1);
        assert_eq!(
            model.temporal_hotspots().period(),
            mobility::SECONDS_PER_WEEK as f64
        );
        // Timestamps a week apart map to the same weekly hotspot.
        let t = corpus.records()[0].timestamp;
        assert_eq!(
            model.time_node(t),
            model.time_node(t + mobility::SECONDS_PER_WEEK)
        );
    }

    #[test]
    fn mention_free_corpus_skips_pretraining() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(7)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let (_, report) = fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
        assert!(!report.pretrained);
        assert_eq!(report.n_user_edges, 0);
    }
}
