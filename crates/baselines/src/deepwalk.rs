//! DeepWalk / node2vec-style homogeneous random-walk baseline.
//!
//! Not part of the paper's Table 2 (its §2.2 discusses DeepWalk \[22\] and
//! node2vec \[23\] as homogeneous predecessors of metapath2vec), but
//! included as an extension so the walk-based family is complete: uniform
//! type-blind walks over the flattened activity graph with a node2vec
//! return-bias knob, then skip-gram with negative sampling.

use actor_core::TrainedModel;
use embed::hogwild;
use embed::{EmbeddingStore, NegativeSamplingUpdate, SgdParams};
use mobility::Corpus;
use rand::Rng;
use stgraph::AliasTable;

use crate::line_family::{flatten_edges, placeholder_config};
use crate::params::BaselineParams;
use crate::substrate::Substrate;
use crate::wrapper::EmbeddingBaseline;

/// DeepWalk/node2vec hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeepWalkParams {
    /// Walk length in vertices.
    pub walk_length: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negatives per pair.
    pub negatives: usize,
    /// node2vec return parameter `p` (probability mass of stepping back
    /// to the previous vertex is divided by this; 1.0 = plain DeepWalk).
    pub return_param: f64,
}

impl Default for DeepWalkParams {
    fn default() -> Self {
        Self {
            walk_length: 40,
            window: 5,
            negatives: 5,
            return_param: 1.0,
        }
    }
}

/// Flat CSR over the whole node space for unbiased weighted walks.
struct FlatAdjacency {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    alias: Vec<Option<AliasTable>>,
}

impl FlatAdjacency {
    fn build(n_nodes: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut degree = vec![0u32; n_nodes];
        for &(a, b, _) in edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n_nodes].to_vec();
        let mut neighbors = vec![0u32; acc as usize];
        let mut weights = vec![0.0f64; acc as usize];
        for &(a, b, w) in edges {
            neighbors[cursor[a as usize] as usize] = b;
            weights[cursor[a as usize] as usize] = w;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize] as usize] = a;
            weights[cursor[b as usize] as usize] = w;
            cursor[b as usize] += 1;
        }
        let alias = (0..n_nodes)
            .map(|i| {
                let lo = offsets[i] as usize;
                let hi = offsets[i + 1] as usize;
                AliasTable::new(&weights[lo..hi])
            })
            .collect();
        Self {
            offsets,
            neighbors,
            alias,
        }
    }

    fn step<R: Rng + ?Sized>(
        &self,
        from: u32,
        prev: Option<u32>,
        return_param: f64,
        rng: &mut R,
    ) -> Option<u32> {
        let lo = self.offsets[from as usize] as usize;
        let table = self.alias[from as usize].as_ref()?;
        let mut next = self.neighbors[lo + table.sample(rng)];
        // node2vec return bias: re-draw a back-step with probability
        // 1 − 1/p (rejection-style approximation of the p-biased walk).
        if let Some(prev) = prev {
            if next == prev && return_param > 1.0 {
                let keep = 1.0 / return_param;
                if rng.random::<f64>() > keep {
                    next = self.neighbors[lo + table.sample(rng)];
                }
            }
        }
        Some(next)
    }
}

/// Trains the walk baseline on the plain activity graph.
pub fn train_deepwalk(
    corpus: &Corpus,
    substrate: &Substrate,
    dw: &DeepWalkParams,
    params: &BaselineParams,
) -> EmbeddingBaseline {
    let graph = &substrate.graph_plain;
    let space = *graph.space();
    let edges = flatten_edges(graph);
    let adj = FlatAdjacency::build(space.len(), &edges);

    // Negative table by total degree^{3/4}.
    let mut deg = vec![0.0f64; space.len()];
    for &(a, b, w) in &edges {
        deg[a as usize] += w;
        deg[b as usize] += w;
    }
    let mut neg_nodes = Vec::new();
    let mut neg_weights = Vec::new();
    for (i, &d) in deg.iter().enumerate() {
        if d > 0.0 {
            neg_nodes.push(i);
            neg_weights.push(d.powf(stgraph::sampler::NEGATIVE_POWER));
        }
    }
    let neg_alias = AliasTable::new(&neg_weights).expect("graph has edges");
    let starts: Vec<u32> = neg_nodes.iter().map(|&i| i as u32).collect();

    let mut init_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(params.seed);
    let store = EmbeddingStore::init(space.len(), params.dim, &mut init_rng);

    let work_ratio = ((dw.negatives + 1) / (params.sgd.negatives + 1).max(1)).max(1) as u64;
    let pairs_per_walk = (dw.walk_length * dw.window) as u64 * work_ratio;
    let n_walks = (params.samples / pairs_per_walk).max(1);

    hogwild::run(params.threads, n_walks, params.seed ^ 0xd33b, |_, rng, n| {
        let sgd = SgdParams {
            negatives: dw.negatives,
            ..params.sgd
        };
        let mut upd = NegativeSamplingUpdate::new(params.dim, sgd);
        let lr0 = params.sgd.learning_rate;
        let mut walk: Vec<u32> = Vec::with_capacity(dw.walk_length);
        for walk_idx in 0..n {
            if n > 0 {
                let progress = walk_idx as f32 / n as f32;
                upd.set_learning_rate(lr0 * (1.0 - 0.9 * progress));
            }
            walk.clear();
            let mut cur = starts[rng.random_range(0..starts.len())];
            let mut prev = None;
            walk.push(cur);
            while walk.len() < dw.walk_length {
                match adj.step(cur, prev, dw.return_param, rng) {
                    Some(next) => {
                        prev = Some(cur);
                        walk.push(next);
                        cur = next;
                    }
                    None => break,
                }
            }
            for (i, &center) in walk.iter().enumerate() {
                let lo = i.saturating_sub(dw.window);
                let hi = (i + dw.window).min(walk.len() - 1);
                for (j, &context) in walk.iter().enumerate().take(hi + 1).skip(lo) {
                    if j == i {
                        continue;
                    }
                    upd.step(&store, center as usize, context as usize, rng, |r| {
                        neg_nodes[neg_alias.sample(r)]
                    });
                }
            }
        }
    });

    let model = TrainedModel::from_parts(
        store,
        space,
        substrate.spatial.clone(),
        substrate.temporal.clone(),
        corpus.vocab().clone(),
        placeholder_config(params),
    );
    let name = if dw.return_param == 1.0 {
        "DeepWalk"
    } else {
        "node2vec"
    };
    EmbeddingBaseline::new(name, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use evalkit::CrossModalModel;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn deepwalk_trains_and_clears_constant_floor() {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(70)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let mut params = BaselineParams::fast();
        // Walk pair budgets are divided by the gradient-work ratio, so
        // give the smoke test a little more headroom.
        params.samples = 600_000;
        let m = train_deepwalk(&corpus, &substrate, &DeepWalkParams::default(), &params);
        assert_eq!(m.name(), "DeepWalk");
        let mrr = evalkit::evaluate_mrr(
            &m,
            &corpus,
            &split.test,
            evalkit::PredictionTask::Location,
            &evalkit::EvalParams {
                max_queries: 40,
                ..Default::default()
            },
        );
        assert!(mrr > 0.25, "DeepWalk location MRR {mrr}");
    }

    #[test]
    fn node2vec_name_depends_on_return_param() {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(71)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let mut params = BaselineParams::fast();
        params.samples = 30_000;
        let m = train_deepwalk(
            &corpus,
            &substrate,
            &DeepWalkParams {
                return_param: 2.0,
                ..Default::default()
            },
            &params,
        );
        assert_eq!(m.name(), "node2vec");
    }

    #[test]
    fn flat_adjacency_walks_stay_in_graph() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(72)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let edges = flatten_edges(&substrate.graph_plain);
        let n = substrate.graph_plain.n_nodes();
        let adj = FlatAdjacency::build(n, &edges);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(5);
        let start = edges[0].0;
        let mut cur = start;
        let mut prev = None;
        for _ in 0..100 {
            match adj.step(cur, prev, 1.0, &mut rng) {
                Some(next) => {
                    assert!((next as usize) < n);
                    prev = Some(cur);
                    cur = next;
                }
                None => break,
            }
        }
    }

    #[test]
    fn isolated_node_has_no_step() {
        let adj = FlatAdjacency::build(3, &[(0, 1, 1.0)]);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
        assert!(adj.step(2, None, 1.0, &mut rng).is_none());
        assert_eq!(adj.step(0, None, 1.0, &mut rng), Some(1));
    }
}
