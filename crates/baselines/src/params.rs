//! Shared baseline hyper-parameters.

use embed::SgdParams;

/// Parameters shared by the embedding baselines; matched to ACTOR's
/// configuration so Table 2 is an apples-to-apples comparison.
#[derive(Debug, Clone, Copy)]
pub struct BaselineParams {
    /// Embedding dimension.
    pub dim: usize,
    /// Total edge samples.
    pub samples: u64,
    /// Hogwild threads.
    pub threads: usize,
    /// SGD step parameters.
    pub sgd: SgdParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        Self {
            dim: 128,
            samples: 4_000_000,
            threads: 1,
            sgd: SgdParams::default(),
            seed: 0xBA5E,
        }
    }
}

impl BaselineParams {
    /// Derives baseline parameters from an ACTOR configuration so both
    /// sides of a comparison get the same budget: the per-type budget of
    /// ACTOR times the number of edge types it trains.
    pub fn matched_to(config: &actor_core::ActorConfig) -> Self {
        Self {
            dim: config.dim,
            samples: config.samples_per_type() * 7,
            threads: config.threads,
            sgd: config.sgd(),
            seed: config.seed ^ 0xBA5E,
        }
    }

    /// Fast settings for tests.
    pub fn fast() -> Self {
        Self {
            dim: 32,
            samples: 150_000,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_budget_scales_with_actor() {
        let mut c = actor_core::ActorConfig::fast();
        c.batch_size = 10;
        c.batches_per_type = 2;
        c.max_epochs = 3;
        let p = BaselineParams::matched_to(&c);
        assert_eq!(p.samples, 10 * 2 * 3 * 7);
        assert_eq!(p.dim, c.dim);
    }
}
