//! CrossMap and CrossMap(U) baselines \[7\].
//!
//! CrossMap is the strongest competitor in Table 2: a type-aware
//! cross-modal embedding that models (a) co-occurrence within records and
//! (b) *spatiotemporal continuity* — adjacent regions and adjacent time
//! periods should embed nearby (the "neighborhood relationship" §4.2
//! contrasts against). It does **not** model user interactions or
//! high-order meta-graph structure, which is precisely the gap ACTOR
//! fills. CrossMap(U) additionally rotates over the user-to-unit edge
//! types on the augmented graph.

use std::collections::HashMap;

use actor_core::TrainedModel;
use embed::hogwild;
use embed::{EmbeddingStore, NegativeSamplingUpdate};
use mobility::{Corpus, SECONDS_PER_DAY};
use rand::Rng;
use stgraph::{EdgeSampler, EdgeType, NegativeTable, NodeType};

use crate::line_family::placeholder_config;
use crate::params::BaselineParams;
use crate::substrate::Substrate;
use crate::wrapper::EmbeddingBaseline;

/// Whether CrossMap sees the user-augmented graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossMapVariant {
    /// Original CrossMap on the plain activity graph.
    Plain,
    /// CrossMap(U): auxiliary user vertices and `UT/UW/UL` edge types.
    WithUsers,
}

impl CrossMapVariant {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            CrossMapVariant::Plain => "CrossMap",
            CrossMapVariant::WithUsers => "CrossMap(U)",
        }
    }
}

/// Index pairs for the continuity objective, one list per modality.
type SmoothingPairs = (Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Spatial/temporal adjacency pairs used for the continuity objective.
fn smoothing_pairs(substrate: &Substrate, space: &stgraph::NodeSpace) -> SmoothingPairs {
    // Temporal: each hotspot with its circular successor.
    let n_t = substrate.temporal.len();
    let mut t_pairs = Vec::with_capacity(n_t);
    for i in 0..n_t {
        let j = (i + 1) % n_t;
        if i != j {
            let a = space.node(NodeType::Time, i as u32).idx();
            let b = space.node(NodeType::Time, j as u32).idx();
            t_pairs.push((a, b));
        }
    }
    // Also link hotspots whose centers are within one hour.
    let centers = substrate.temporal.centers();
    for i in 0..n_t {
        for j in (i + 1)..n_t {
            let d = (centers[i] - centers[j]).abs();
            let circ = d.min(SECONDS_PER_DAY as f64 - d);
            if circ < 3600.0 && (i + 1) % n_t != j {
                t_pairs.push((
                    space.node(NodeType::Time, i as u32).idx(),
                    space.node(NodeType::Time, j as u32).idx(),
                ));
            }
        }
    }

    // Spatial: each hotspot with its 2 nearest neighbors.
    let centers = substrate.spatial.centers();
    let mut l_pairs = Vec::new();
    for (i, c) in centers.iter().enumerate() {
        let mut dists: Vec<(usize, f64)> = centers
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, p)| (j, c.dist2(p)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        for &(j, _) in dists.iter().take(2) {
            l_pairs.push((
                space.node(NodeType::Location, i as u32).idx(),
                space.node(NodeType::Location, j as u32).idx(),
            ));
        }
    }
    (t_pairs, l_pairs)
}

/// Trains a CrossMap baseline on the substrate.
pub fn train_crossmap(
    corpus: &Corpus,
    substrate: &Substrate,
    variant: CrossMapVariant,
    params: &BaselineParams,
) -> EmbeddingBaseline {
    let graph = match variant {
        CrossMapVariant::Plain => &substrate.graph_plain,
        CrossMapVariant::WithUsers => &substrate.graph_user,
    };
    let space = *graph.space();

    let mut edge_types: Vec<EdgeType> = EdgeType::INTRA.to_vec();
    if variant == CrossMapVariant::WithUsers {
        edge_types.extend(EdgeType::INTER);
    }
    let mut samplers: HashMap<EdgeType, EdgeSampler> = HashMap::new();
    let mut neg: HashMap<(EdgeType, NodeType), NegativeTable> = HashMap::new();
    for &ty in &edge_types {
        if let Some(s) = EdgeSampler::new(graph, ty) {
            samplers.insert(ty, s);
        }
        let (a, b) = ty.endpoints();
        for side in [a, b] {
            if let Some(t) = NegativeTable::new(graph, ty, side) {
                neg.insert((ty, side), t);
            }
        }
    }
    let (t_pairs, l_pairs) = smoothing_pairs(substrate, &space);

    let mut init_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(params.seed);
    let store = EmbeddingStore::init(space.len(), params.dim, &mut init_rng);

    // Budget: per-type batches follow each type's share of the total
    // co-occurrence weight (matching the weighted objective; see
    // actor_core::pipeline::train_loop), plus ~1/14 of the budget on
    // continuity smoothing.
    let batch = 256u64;
    let n_types = samplers.len().max(1) as u64;
    let total_w: f64 = edge_types
        .iter()
        .filter_map(|&t| graph.edges(t))
        .map(|te| te.total_weight())
        .sum::<f64>()
        .max(1e-12);
    let per_type_batch: HashMap<EdgeType, u64> = edge_types
        .iter()
        .map(|&t| {
            let share = graph.edges(t).map_or(0.0, |te| te.total_weight()) / total_w;
            (t, ((n_types * batch) as f64 * share).round() as u64)
        })
        .collect();
    let smooth_per_round = batch / 4;
    let per_round = n_types * batch + 2 * smooth_per_round;
    let rounds = (params.samples / per_round).max(1);

    hogwild::run(params.threads, rounds, params.seed ^ 0xC0, |_, rng, n| {
        let mut upd = NegativeSamplingUpdate::new(params.dim, params.sgd);
        let lr0 = params.sgd.learning_rate;
        for round in 0..n {
            if n > 0 {
                let progress = round as f32 / n as f32;
                upd.set_learning_rate(lr0 * (1.0 - 0.9 * progress));
            }
            for &ty in &edge_types {
                let Some(sampler) = samplers.get(&ty) else {
                    continue;
                };
                let (ta, tb) = ty.endpoints();
                let this_batch = per_type_batch.get(&ty).copied().unwrap_or(batch);
                for _ in 0..this_batch {
                    let (mut a, mut b) = sampler.sample(rng);
                    let mut ctx_side = tb;
                    if ta != tb && rng.random::<bool>() {
                        std::mem::swap(&mut a, &mut b);
                        ctx_side = ta;
                    }
                    if let Some(nt) = neg.get(&(ty, ctx_side)) {
                        upd.step(&store, a.idx(), b.idx(), rng, |r| nt.sample(r).idx());
                    }
                }
            }
            // Continuity smoothing: adjacent times and nearby regions.
            if let Some(nt) = neg.get(&(EdgeType::TL, NodeType::Time)) {
                for _ in 0..smooth_per_round {
                    if t_pairs.is_empty() {
                        break;
                    }
                    let &(a, b) = &t_pairs[rng.random_range(0..t_pairs.len())];
                    upd.step(&store, a, b, rng, |r| nt.sample(r).idx());
                }
            }
            if let Some(nl) = neg.get(&(EdgeType::TL, NodeType::Location)) {
                for _ in 0..smooth_per_round {
                    if l_pairs.is_empty() {
                        break;
                    }
                    let &(a, b) = &l_pairs[rng.random_range(0..l_pairs.len())];
                    upd.step(&store, a, b, rng, |r| nl.sample(r).idx());
                }
            }
        }
    });

    let model = TrainedModel::from_parts(
        store,
        space,
        substrate.spatial.clone(),
        substrate.temporal.clone(),
        corpus.vocab().clone(),
        placeholder_config(params),
    );
    EmbeddingBaseline::new(variant.name(), model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use evalkit::CrossModalModel;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn crossmap_trains_and_beats_constant_scoring() {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(35)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let params = BaselineParams::fast();
        let cm = train_crossmap(&corpus, &substrate, CrossMapVariant::Plain, &params);
        assert_eq!(cm.name(), "CrossMap");

        let eval_params = evalkit::EvalParams {
            max_queries: 40,
            ..Default::default()
        };
        let mrr = evalkit::evaluate_mrr(
            &cm,
            &corpus,
            &split.test,
            evalkit::PredictionTask::Location,
            &eval_params,
        );
        // Must clearly beat the 1/11 ≈ 0.09 constant-score floor.
        assert!(mrr > 0.2, "CrossMap location MRR too low: {mrr}");
    }

    #[test]
    fn crossmap_u_embeds_users() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(36)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let params = BaselineParams::fast();
        let cm = train_crossmap(&corpus, &substrate, CrossMapVariant::WithUsers, &params);
        assert_eq!(cm.name(), "CrossMap(U)");
        assert!(cm.model().space().n_user > 0);
    }

    #[test]
    fn smoothing_pairs_reference_valid_nodes() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(37)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let space = *substrate.graph_plain.space();
        let (t_pairs, l_pairs) = smoothing_pairs(&substrate, &space);
        assert!(!l_pairs.is_empty());
        for &(a, b) in t_pairs.iter().chain(&l_pairs) {
            assert!(a < space.len() && b < space.len());
            assert_ne!(a, b);
        }
        // Temporal pairs stay inside the Time range, spatial inside Location.
        for &(a, _) in &t_pairs {
            assert_eq!(
                space.type_of(stgraph::NodeId(a as u32)),
                NodeType::Time
            );
        }
        for &(a, _) in &l_pairs {
            assert_eq!(
                space.type_of(stgraph::NodeId(a as u32)),
                NodeType::Location
            );
        }
    }
}
