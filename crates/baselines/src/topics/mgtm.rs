//! MGTM: multi-Dirichlet geographical topic model \[16\].
//!
//! MGTM captures dependencies *between* geographical regions via a
//! multi-Dirichlet process; this reproduction keeps the same latent
//! structure as [`super::lgta`] and realizes the inter-region coupling as
//! a nearest-neighbor smoothing of the region–topic mixtures after every
//! M-step (DESIGN.md §3). On hotspot-bursty data the coupling
//! over-smooths region signatures, which is consistent with MGTM trailing
//! LGTA throughout Table 2.

use actor_core::ActorConfig;
use evalkit::CrossModalModel;
use mobility::{Corpus, GeoPoint, KeywordId, RecordId, Timestamp};

use super::common::{smooth_theta, EmOptions, GaussianRegions, TopicModelCore};

/// MGTM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgtmParams {
    /// Latent topics.
    pub n_topics: usize,
    /// EM iterations.
    pub iterations: usize,
    /// Region coarseness multiplier (finer than LGTA — the adaptive
    /// region structure MGTM advertises — but coupled across neighbors).
    pub region_bandwidth_scale: f64,
    /// Minimum records per region.
    pub region_min_support: usize,
    /// Neighbors coupled per region.
    pub k_neighbors: usize,
    /// Smoothing strength λ in `[0, 1]`.
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MgtmParams {
    fn default() -> Self {
        Self {
            n_topics: 20,
            iterations: 15,
            region_bandwidth_scale: 2.5,
            region_min_support: 12,
            k_neighbors: 4,
            lambda: 0.6,
            seed: 0x367,
        }
    }
}

/// A fitted MGTM model.
pub struct MgtmModel {
    core: TopicModelCore,
}

/// Fits MGTM on the training split.
pub fn train_mgtm(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    params: &MgtmParams,
) -> MgtmModel {
    let points: Vec<GeoPoint> = train_ids
        .iter()
        .map(|&id| corpus.record(id).location)
        .collect();
    let regions = GaussianRegions::fit(
        &points,
        config.spatial_bandwidth * params.region_bandwidth_scale,
        params.region_min_support,
    );
    let (k_nb, lambda) = (params.k_neighbors, params.lambda);
    let core = TopicModelCore::fit(
        corpus,
        train_ids,
        regions,
        EmOptions {
            n_topics: params.n_topics,
            iterations: params.iterations,
            seed: params.seed,
            ..Default::default()
        },
        move |theta, centers| smooth_theta(theta, centers, k_nb, lambda),
    );
    MgtmModel { core }
}

impl MgtmModel {
    /// The fitted region–topic–word core.
    pub fn core(&self) -> &TopicModelCore {
        &self.core
    }
}

impl CrossModalModel for MgtmModel {
    fn score_location(&self, _t: Timestamp, words: &[KeywordId], candidate: GeoPoint) -> f64 {
        self.core.score_location_given_text(words, candidate)
    }

    fn score_time(&self, _location: GeoPoint, _words: &[KeywordId], _candidate: Timestamp) -> f64 {
        0.0
    }

    fn score_text(&self, _t: Timestamp, location: GeoPoint, candidate: &[KeywordId]) -> f64 {
        self.core.score_text_given_location(location, candidate)
    }

    fn name(&self) -> &str {
        "MGTM"
    }

    fn supports_time(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn mgtm_fits_and_scores() {
        let (corpus, _) =
            mobility::synth::generate(mobility::synth::DatasetPreset::Foursquare.small_config(43))
                .unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let model = train_mgtm(
            &corpus,
            &split.train,
            &ActorConfig::fast(),
            &MgtmParams {
                n_topics: 10,
                iterations: 6,
                ..Default::default()
            },
        );
        assert_eq!(model.name(), "MGTM");
        assert!(!model.supports_time());
        let r = corpus.record(split.test[0]);
        let s = model.score_location(r.timestamp, &r.keywords, r.location);
        assert!(s.is_finite());
        // Theta rows remain valid distributions after smoothing.
        for row in &model.core().theta {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
    }
}
