//! Shared machinery for the geographical topic models.
//!
//! LGTA couples latent topics with a modest number of *Gaussian regions*
//! (its fixed region count is the very limitation MGTM's multi-Dirichlet
//! process was designed to relax), so both models here share one core:
//! coarse Gaussian regions fitted by mean-shift at a widened bandwidth
//! ([`GaussianRegions`]), per-region topic mixtures `θ[r][k]`, and
//! per-topic word distributions `φ[k][w]` fitted by EM
//! ([`TopicModelCore`]). The two models differ in region granularity and
//! in the M-step regularizer, injected as a callback.
//!
//! Being *generative*, these models score locations through Gaussian
//! densities — coarse, city-district-level signal — while the embedding
//! methods resolve individual hotspots; that resolution gap is exactly why
//! topic models trail in the paper's Table 2.

use hotspot::{MeanShiftParams, SpatialHotspots};
use mobility::{Corpus, GeoPoint, KeywordId, RecordId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A set of isotropic Gaussian regions over the city.
#[derive(Debug, Clone)]
pub struct GaussianRegions {
    centers: Vec<GeoPoint>,
    /// Per-region isotropic std-dev in degrees.
    sigmas: Vec<f64>,
    /// Per-region prior (fraction of training records).
    priors: Vec<f64>,
}

impl GaussianRegions {
    /// Fits regions: coarse mean-shift modes become centers; σ is the RMS
    /// distance of assigned points (floored at a tenth of the bandwidth).
    pub fn fit(points: &[GeoPoint], bandwidth: f64, min_support: usize) -> Self {
        let hotspots = SpatialHotspots::detect(
            points,
            MeanShiftParams::with_bandwidth(bandwidth),
            min_support,
        );
        let n = hotspots.len();
        let mut sq_dist = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for p in points {
            let r = hotspots.assign(*p).idx();
            sq_dist[r] += p.dist2(&hotspots.centers()[r]);
            counts[r] += 1;
        }
        let total = points.len() as f64;
        let floor = bandwidth * 0.1;
        let sigmas = (0..n)
            .map(|r| {
                if counts[r] == 0 {
                    bandwidth
                } else {
                    (sq_dist[r] / counts[r] as f64).sqrt().max(floor)
                }
            })
            .collect();
        let priors = counts.iter().map(|&c| (c as f64 + 1.0) / (total + n as f64)).collect();
        Self {
            centers: hotspots.centers().to_vec(),
            sigmas,
            priors,
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True if no regions exist (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Region centers.
    pub fn centers(&self) -> &[GeoPoint] {
        &self.centers
    }

    /// The region whose center is closest to `p`.
    pub fn assign(&self, p: GeoPoint) -> usize {
        self.centers
            .iter()
            .enumerate()
            .min_by(|a, b| {
                p.dist2(a.1)
                    .partial_cmp(&p.dist2(b.1))
                    .expect("finite distances")
            })
            .expect("non-empty regions")
            .0
    }

    /// Log of the isotropic Gaussian density of `p` under region `r`.
    pub fn log_density(&self, r: usize, p: GeoPoint) -> f64 {
        let sigma = self.sigmas[r];
        let d2 = p.dist2(&self.centers[r]);
        -d2 / (2.0 * sigma * sigma) - 2.0 * sigma.ln() - (2.0 * std::f64::consts::PI).ln()
    }

    /// Log prior of region `r`.
    pub fn log_prior(&self, r: usize) -> f64 {
        self.priors[r].ln()
    }

    /// Posterior `q(r | location)` over all regions.
    pub fn posterior(&self, p: GeoPoint) -> Vec<f64> {
        let logits: Vec<f64> = (0..self.len())
            .map(|r| self.log_prior(r) + self.log_density(r, p))
            .collect();
        softmax(&logits)
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut out: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let total: f64 = out.iter().sum();
    out.iter_mut().for_each(|x| *x /= total);
    out
}

/// A fitted region–topic–word model.
#[derive(Debug, Clone)]
pub struct TopicModelCore {
    /// The Gaussian regions.
    pub regions: GaussianRegions,
    /// `θ[r][k]`: topic mixture per region (rows sum to 1).
    pub theta: Vec<Vec<f64>>,
    /// `φ[k][w]`: word distribution per topic (rows sum to 1).
    pub phi: Vec<Vec<f64>>,
}

/// EM fitting options.
#[derive(Debug, Clone, Copy)]
pub struct EmOptions {
    /// Number of latent topics `K`.
    pub n_topics: usize,
    /// EM iterations.
    pub iterations: usize,
    /// Additive smoothing for both θ and φ updates.
    pub smoothing: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for EmOptions {
    fn default() -> Self {
        Self {
            n_topics: 20,
            iterations: 15,
            smoothing: 0.01,
            seed: 0x709,
        }
    }
}

impl TopicModelCore {
    /// Fits by EM over the training records. `regularize(theta, centers)`
    /// runs after every M-step (identity for LGTA; spatial smoothing for
    /// MGTM).
    pub fn fit<F>(
        corpus: &Corpus,
        train_ids: &[RecordId],
        regions: GaussianRegions,
        options: EmOptions,
        mut regularize: F,
    ) -> Self
    where
        F: FnMut(&mut Vec<Vec<f64>>, &[GeoPoint]),
    {
        let n_regions = regions.len();
        let k = options.n_topics;
        let v = corpus.vocab().len().max(1);
        let mut rng = StdRng::seed_from_u64(options.seed);

        let docs: Vec<(usize, &[KeywordId])> = train_ids
            .iter()
            .map(|&rid| {
                let r = corpus.record(rid);
                (regions.assign(r.location), r.keywords.as_slice())
            })
            .collect();

        let mut theta: Vec<Vec<f64>> = (0..n_regions)
            .map(|_| random_simplex(k, &mut rng))
            .collect();
        let mut phi: Vec<Vec<f64>> = (0..k).map(|_| random_simplex(v, &mut rng)).collect();

        let mut gamma = vec![0.0f64; k];
        for _ in 0..options.iterations {
            let mut theta_acc = vec![vec![options.smoothing; k]; n_regions];
            let mut phi_acc = vec![vec![options.smoothing; v]; k];
            for &(region, words) in &docs {
                // E-step in log space.
                let mut max_log = f64::NEG_INFINITY;
                for z in 0..k {
                    let mut lg = theta[region][z].max(1e-300).ln();
                    for w in words {
                        lg += phi[z][w.idx()].max(1e-300).ln();
                    }
                    gamma[z] = lg;
                    max_log = max_log.max(lg);
                }
                let mut total = 0.0;
                for g in gamma.iter_mut() {
                    *g = (*g - max_log).exp();
                    total += *g;
                }
                // M-step accumulation.
                for z in 0..k {
                    let resp = gamma[z] / total;
                    theta_acc[region][z] += resp;
                    for w in words {
                        phi_acc[z][w.idx()] += resp;
                    }
                }
            }
            normalize_rows(&mut theta_acc);
            normalize_rows(&mut phi_acc);
            theta = theta_acc;
            phi = phi_acc;
            regularize(&mut theta, regions.centers());
        }

        Self {
            regions,
            theta,
            phi,
        }
    }

    /// `p(w | region r)` under the topic mixture.
    #[inline]
    fn word_prob(&self, r: usize, w: KeywordId) -> f64 {
        self.theta[r]
            .iter()
            .enumerate()
            .map(|(z, &t)| t * self.phi[z][w.idx()])
            .sum()
    }

    /// Per-token mean log-likelihood of `words` under region `r`.
    fn mean_word_ll(&self, r: usize, words: &[KeywordId]) -> f64 {
        if words.is_empty() {
            return -1e6;
        }
        words
            .iter()
            .map(|&w| self.word_prob(r, w).max(1e-300).ln())
            .sum::<f64>()
            / words.len() as f64
    }

    /// Scores `words` given a location: region posterior from the Gaussian
    /// densities, then expected per-token log-likelihood. Used for text
    /// prediction.
    pub fn score_text_given_location(&self, location: GeoPoint, words: &[KeywordId]) -> f64 {
        if words.is_empty() {
            return -1e6;
        }
        let q = self.regions.posterior(location);
        let mut total = 0.0;
        for &w in words {
            let pw: f64 = (0..self.regions.len())
                .map(|r| q[r] * self.word_prob(r, w))
                .sum();
            total += pw.max(1e-300).ln();
        }
        total / words.len() as f64
    }

    /// Scores a candidate location given the text:
    /// `log Σ_r π_r · N(cand; μ_r, σ_r) · exp(mean_w log p(w|r))`.
    /// The Gaussian factor gives the coarse, district-level spatial
    /// resolution characteristic of the model family.
    pub fn score_location_given_text(&self, words: &[KeywordId], candidate: GeoPoint) -> f64 {
        let logits: Vec<f64> = (0..self.regions.len())
            .map(|r| {
                self.regions.log_prior(r)
                    + self.regions.log_density(r, candidate)
                    + self.mean_word_ll(r, words)
            })
            .collect();
        log_sum_exp(&logits)
    }

    /// Number of latent topics.
    pub fn n_topics(&self) -> usize {
        self.phi.len()
    }
}

fn log_sum_exp(logits: &[f64]) -> f64 {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return max;
    }
    max + logits.iter().map(|&l| (l - max).exp()).sum::<f64>().ln()
}

fn random_simplex(n: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..1.5)).collect();
    let total: f64 = v.iter().sum();
    v.iter_mut().for_each(|x| *x /= total);
    v
}

fn normalize_rows(rows: &mut [Vec<f64>]) {
    for row in rows {
        let total: f64 = row.iter().sum();
        if total > 0.0 {
            row.iter_mut().for_each(|x| *x /= total);
        }
    }
}

/// Spatially smooths θ: each region's mixture is averaged with its `k`
/// nearest regions' mixtures, weighted `1−λ` self / `λ` neighbors. Used
/// by MGTM's multi-Dirichlet inter-region coupling.
pub fn smooth_theta(theta: &mut [Vec<f64>], centers: &[GeoPoint], k_neighbors: usize, lambda: f64) {
    let n = centers.len();
    if n <= 1 || lambda <= 0.0 {
        return;
    }
    let old: Vec<Vec<f64>> = theta.to_vec();
    for (i, c) in centers.iter().enumerate() {
        let mut dists: Vec<(usize, f64)> = centers
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(j, p)| (j, c.dist2(p)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let neighbors: Vec<usize> = dists.iter().take(k_neighbors).map(|&(j, _)| j).collect();
        if neighbors.is_empty() {
            continue;
        }
        for z in 0..theta[i].len() {
            let mean_nb: f64 =
                neighbors.iter().map(|&j| old[j][z]).sum::<f64>() / neighbors.len() as f64;
            theta[i][z] = (1.0 - lambda) * old[i][z] + lambda * mean_nb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::rng::normal;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn fitted() -> (Corpus, Vec<RecordId>, TopicModelCore) {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(40)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let points: Vec<GeoPoint> = split
            .train
            .iter()
            .map(|&id| corpus.record(id).location)
            .collect();
        let regions = GaussianRegions::fit(&points, 0.03, 10);
        let core = TopicModelCore::fit(
            &corpus,
            &split.train,
            regions,
            EmOptions {
                n_topics: 10,
                iterations: 8,
                ..Default::default()
            },
            |_, _| {},
        );
        (corpus, split.test, core)
    }

    #[test]
    fn regions_are_coarse_and_normalized() {
        let (_, _, core) = fitted();
        let r = &core.regions;
        assert!(!r.is_empty());
        assert!(r.len() < 80, "coarse bandwidth should merge hotspots: {}", r.len());
        let total: f64 = (0..r.len()).map(|i| r.priors[i]).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 0..r.len() {
            assert!(r.sigmas[i] > 0.0);
        }
    }

    #[test]
    fn gaussian_density_decays_with_distance() {
        let (_, _, core) = fitted();
        let r = &core.regions;
        let c = r.centers()[0];
        let near = GeoPoint::new(c.lat + 0.001, c.lon);
        let far = GeoPoint::new(c.lat + 0.1, c.lon);
        assert!(r.log_density(0, c) >= r.log_density(0, near));
        assert!(r.log_density(0, near) > r.log_density(0, far));
    }

    #[test]
    fn posterior_is_a_distribution_peaked_at_home_region() {
        let (_, _, core) = fitted();
        let r = &core.regions;
        let c = r.centers()[0];
        let q = r.posterior(c);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The home region should carry the largest posterior mass at its
        // own center, or at least be among the top (priors can shift it).
        let best = q
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(r.centers()[best].dist(&c) < 0.05, "posterior far off");
    }

    #[test]
    fn distributions_are_normalized() {
        let (_, _, core) = fitted();
        for row in core.theta.iter().chain(core.phi.iter()) {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "row sums to {total}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
        assert_eq!(core.n_topics(), 10);
    }

    #[test]
    fn likelihood_prefers_true_region_text() {
        let (corpus, test, core) = fitted();
        let mut wins = 0usize;
        let mut total = 0usize;
        for pair in test.chunks(2) {
            let [a, b] = pair else { continue };
            let ra = corpus.record(*a);
            let rb = corpus.record(*b);
            let own = core.score_text_given_location(ra.location, &ra.keywords);
            let other = core.score_text_given_location(rb.location, &ra.keywords);
            if own > other {
                wins += 1;
            }
            total += 1;
        }
        assert!(wins as f64 / total as f64 > 0.55, "wins {wins}/{total}");
    }

    #[test]
    fn location_score_prefers_own_location() {
        let (corpus, test, core) = fitted();
        let mut wins = 0usize;
        let mut total = 0usize;
        for pair in test.chunks(2) {
            let [a, b] = pair else { continue };
            let ra = corpus.record(*a);
            let rb = corpus.record(*b);
            let own = core.score_location_given_text(&ra.keywords, ra.location);
            let other = core.score_location_given_text(&ra.keywords, rb.location);
            if own > other {
                wins += 1;
            }
            total += 1;
        }
        assert!(wins as f64 / total as f64 > 0.55, "wins {wins}/{total}");
    }

    #[test]
    fn empty_text_scores_minimal() {
        let (_, _, core) = fitted();
        let p = GeoPoint::new(40.7, -73.9);
        assert!(core.score_text_given_location(p, &[]) <= -1e6);
    }

    #[test]
    fn smoothing_pulls_neighbors_together() {
        let (_, _, core) = fitted();
        let mut theta = core.theta.clone();
        if theta.len() < 3 {
            return;
        }
        smooth_theta(&mut theta, core.regions.centers(), 3, 0.5);
        for row in &theta {
            let total: f64 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert_ne!(theta, core.theta);
    }

    #[test]
    fn gaussian_regions_recover_planted_clusters() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut pts = Vec::new();
        for c in [(0.0, 0.0), (0.5, 0.5)] {
            for _ in 0..200 {
                pts.push(GeoPoint::new(
                    normal(&mut rng, c.0, 0.01),
                    normal(&mut rng, c.1, 0.01),
                ));
            }
        }
        let regions = GaussianRegions::fit(&pts, 0.05, 5);
        assert_eq!(regions.len(), 2);
        // Sigma estimates track the planted spread.
        for i in 0..2 {
            assert!(regions.sigmas[i] > 0.005 && regions.sigmas[i] < 0.03);
        }
    }
}
