//! LGTA: latent geographical topic analysis \[17\].
//!
//! Discovers geographical topics by coupling latent topics with spatial
//! regions; implemented here as region-conditioned PLSA over the detected
//! spatial hotspots (LGTA's Gaussian regions ≈ mean-shift modes; see
//! DESIGN.md §3). LGTA has no temporal modality, so Table 2 prints "/"
//! in its Time columns.

use actor_core::ActorConfig;
use evalkit::CrossModalModel;
use mobility::{Corpus, GeoPoint, KeywordId, RecordId, Timestamp};

use super::common::{EmOptions, GaussianRegions, TopicModelCore};

/// LGTA hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LgtaParams {
    /// Latent topics.
    pub n_topics: usize,
    /// EM iterations.
    pub iterations: usize,
    /// Region coarseness: multiple of ACTOR's spatial bandwidth used when
    /// fitting the Gaussian regions (LGTA works with a modest, fixed set
    /// of regions — the limitation MGTM was designed to relax).
    pub region_bandwidth_scale: f64,
    /// Minimum records per region.
    pub region_min_support: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LgtaParams {
    fn default() -> Self {
        Self {
            n_topics: 20,
            iterations: 15,
            region_bandwidth_scale: 4.0,
            region_min_support: 20,
            seed: 0x167A,
        }
    }
}

/// A fitted LGTA model.
pub struct LgtaModel {
    core: TopicModelCore,
}

/// Fits LGTA on the training split, reusing ACTOR's spatial-bandwidth
/// setting for region detection.
pub fn train_lgta(
    corpus: &Corpus,
    train_ids: &[RecordId],
    config: &ActorConfig,
    params: &LgtaParams,
) -> LgtaModel {
    let points: Vec<GeoPoint> = train_ids
        .iter()
        .map(|&id| corpus.record(id).location)
        .collect();
    let regions = GaussianRegions::fit(
        &points,
        config.spatial_bandwidth * params.region_bandwidth_scale,
        params.region_min_support,
    );
    let core = TopicModelCore::fit(
        corpus,
        train_ids,
        regions,
        EmOptions {
            n_topics: params.n_topics,
            iterations: params.iterations,
            seed: params.seed,
            ..Default::default()
        },
        |_, _| {}, // plain PLSA M-step: no spatial regularizer
    );
    LgtaModel { core }
}

impl LgtaModel {
    /// The fitted region–topic–word core.
    pub fn core(&self) -> &TopicModelCore {
        &self.core
    }
}

impl CrossModalModel for LgtaModel {
    fn score_location(&self, _t: Timestamp, words: &[KeywordId], candidate: GeoPoint) -> f64 {
        self.core.score_location_given_text(words, candidate)
    }

    fn score_time(&self, _location: GeoPoint, _words: &[KeywordId], _candidate: Timestamp) -> f64 {
        // No temporal modality (Table 2 "/" cell).
        0.0
    }

    fn score_text(&self, _t: Timestamp, location: GeoPoint, candidate: &[KeywordId]) -> f64 {
        self.core.score_text_given_location(location, candidate)
    }

    fn name(&self) -> &str {
        "LGTA"
    }

    fn supports_time(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn lgta_beats_the_random_floor_on_location() {
        let (corpus, _) =
            mobility::synth::generate(mobility::synth::DatasetPreset::Foursquare.small_config(41))
                .unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let model = train_lgta(
            &corpus,
            &split.train,
            &ActorConfig::fast(),
            &LgtaParams {
                n_topics: 10,
                iterations: 8,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(!model.supports_time());
        assert_eq!(model.name(), "LGTA");
        let mrr = evalkit::evaluate_mrr(
            &model,
            &corpus,
            &split.test,
            evalkit::PredictionTask::Location,
            &evalkit::EvalParams {
                max_queries: 40,
                ..Default::default()
            },
        );
        assert!(mrr > 0.2, "LGTA location MRR {mrr}");
    }
}
