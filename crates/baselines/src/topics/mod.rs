//! Geographical topic-model baselines (LGTA, MGTM).

pub mod common;
pub mod lgta;
pub mod mgtm;
