//! Wrapper giving embedding baselines ACTOR's scoring rule under their
//! own report name.

use actor_core::TrainedModel;
use evalkit::CrossModalModel;
use mobility::{GeoPoint, KeywordId, Timestamp};

/// An embedding baseline: a trained store behind ACTOR's cosine-ranking
/// query interface, reported under `name`.
pub struct EmbeddingBaseline {
    name: String,
    model: TrainedModel,
}

impl EmbeddingBaseline {
    /// Wraps a model under a display name.
    pub fn new(name: impl Into<String>, model: TrainedModel) -> Self {
        Self {
            name: name.into(),
            model,
        }
    }

    /// The underlying model (for neighbor search etc.).
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }
}

impl CrossModalModel for EmbeddingBaseline {
    fn score_location(&self, t: Timestamp, words: &[KeywordId], candidate: GeoPoint) -> f64 {
        self.model.score_location(t, words, candidate)
    }

    fn score_time(&self, location: GeoPoint, words: &[KeywordId], candidate: Timestamp) -> f64 {
        self.model.score_time(location, words, candidate)
    }

    fn score_text(&self, t: Timestamp, location: GeoPoint, candidate: &[KeywordId]) -> f64 {
        self.model.score_text(t, location, candidate)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn wrapper_delegates_and_renames() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(32)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let (model, _) = actor_core::fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
        let r = corpus.record(split.test[0]).clone();
        let direct = model.score_location(r.timestamp, &r.keywords, r.location);
        let wrapped = EmbeddingBaseline::new("TEST", model);
        assert_eq!(wrapped.name(), "TEST");
        assert_eq!(
            wrapped.score_location(r.timestamp, &r.keywords, r.location),
            direct
        );
        assert!(wrapped.supports_time());
    }
}
