//! Baseline spatiotemporal activity models (paper §6.1.2).
//!
//! Every method of Table 2 other than ACTOR itself:
//!
//! | Method        | Family | Module |
//! |---------------|--------|--------|
//! | LGTA \[17\]     | geographical topic model (EM) | [`topics::lgta`] |
//! | MGTM \[16\]     | geographical topic model (multi-Dirichlet, Gibbs-free simplification) | [`topics::mgtm`] |
//! | metapath2vec \[25\] | heterogeneous random-walk embedding | [`metapath`] |
//! | LINE \[24\]     | homogeneous edge embedding | [`line_family`] |
//! | LINE(U)       | LINE on the user-augmented activity graph | [`line_family`] |
//! | CrossMap \[7\]  | cross-modal co-occurrence + neighborhood smoothing | [`crossmap`] |
//! | CrossMap(U)   | CrossMap with auxiliary user vertices | [`crossmap`] |
//!
//! All embedding baselines share ACTOR's substrate (same hotspots, same
//! activity graph, same cosine scoring) so Table 2 differences come from
//! the *training objective*, not from preprocessing luck. Topic models
//! score by log-likelihood instead.

pub mod crossmap;
pub mod deepwalk;
pub mod line_family;
pub mod metapath;
pub mod params;
pub mod substrate;
pub mod topics;
pub mod wrapper;

pub use crossmap::{train_crossmap, CrossMapVariant};
pub use deepwalk::{train_deepwalk, DeepWalkParams};
pub use line_family::{train_line, LineVariant};
pub use metapath::{train_metapath2vec, MetapathParams};
pub use params::BaselineParams;
pub use substrate::Substrate;
pub use topics::lgta::{train_lgta, LgtaModel, LgtaParams};
pub use topics::mgtm::{train_mgtm, MgtmModel, MgtmParams};
pub use wrapper::EmbeddingBaseline;
