//! metapath2vec baseline \[25\].
//!
//! Heterogeneous random walks follow a meta-path pattern over vertex
//! types; the resulting node sequences feed a skip-gram with negative
//! sampling. The paper reports its best results with the meta-path
//! `L–W–T–W` (window 3, 5 negatives, §6.2.3), which this module defaults
//! to. Walks cannot leverage edge types beyond the path pattern and the
//! user graph is too sparse to walk (§6.2.3), hence its mid-table rank.

use actor_core::TrainedModel;
use embed::hogwild;
use embed::{EmbeddingStore, NegativeSamplingUpdate, SgdParams};
use mobility::Corpus;
use rand::Rng;
use stgraph::{ActivityGraph, AliasTable, EdgeType, NodeId, NodeType};

use crate::line_family::placeholder_config;
use crate::params::BaselineParams;
use crate::substrate::Substrate;
use crate::wrapper::EmbeddingBaseline;

/// metapath2vec hyper-parameters.
#[derive(Debug, Clone)]
pub struct MetapathParams {
    /// The vertex-type pattern walks repeat (cyclically).
    pub path: Vec<NodeType>,
    /// Walk length in vertices.
    pub walk_length: usize,
    /// Skip-gram window (the paper's baseline uses 3).
    pub window: usize,
    /// Negatives per pair (the paper's baseline uses 5).
    pub negatives: usize,
}

impl Default for MetapathParams {
    fn default() -> Self {
        Self {
            path: vec![
                NodeType::Location,
                NodeType::Word,
                NodeType::Time,
                NodeType::Word,
            ],
            walk_length: 40,
            window: 3,
            negatives: 5,
        }
    }
}

/// One node's outgoing transition table toward one vertex type.
type Transition = Option<(Vec<NodeId>, AliasTable)>;

/// Per-node typed transition tables: for node `v` and target type `ty`,
/// an alias table over `v`'s neighbors of that type.
struct TypedTransitions {
    // Indexed [node][type-index] → (neighbors, alias).
    tables: Vec<[Transition; 4]>,
}

fn type_index(ty: NodeType) -> usize {
    match ty {
        NodeType::Time => 0,
        NodeType::Location => 1,
        NodeType::Word => 2,
        NodeType::User => 3,
    }
}

impl TypedTransitions {
    fn build(graph: &ActivityGraph) -> Self {
        let space = graph.space();
        let n = space.len();
        let mut tables: Vec<[Transition; 4]> =
            (0..n).map(|_| [None, None, None, None]).collect();
        for (node_idx, table_row) in tables.iter_mut().enumerate() {
            let node = NodeId(node_idx as u32);
            let from_ty = space.type_of(node);
            for to_ty in NodeType::ALL {
                let Some(edge_ty) = EdgeType::between(from_ty, to_ty) else {
                    continue;
                };
                let Some(te) = graph.edges(edge_ty) else {
                    continue;
                };
                let (neighbors, weights) = te.csr.row(node);
                // WW rows contain only words; other rows may mix? No —
                // each edge type's CSR only contains that type's edges, so
                // neighbors here are all of `to_ty` (or Word for WW).
                if neighbors.is_empty() {
                    continue;
                }
                if let Some(alias) = AliasTable::new(weights) {
                    table_row[type_index(to_ty)] = Some((neighbors.to_vec(), alias));
                }
            }
        }
        Self { tables }
    }

    fn step<R: Rng + ?Sized>(&self, from: NodeId, to_ty: NodeType, rng: &mut R) -> Option<NodeId> {
        let slot = self.tables[from.idx()][type_index(to_ty)].as_ref()?;
        Some(slot.0[slot.1.sample(rng)])
    }
}

/// Trains metapath2vec on the plain activity graph.
pub fn train_metapath2vec(
    corpus: &Corpus,
    substrate: &Substrate,
    mp: &MetapathParams,
    params: &BaselineParams,
) -> EmbeddingBaseline {
    let graph = &substrate.graph_plain;
    let space = *graph.space();
    let transitions = TypedTransitions::build(graph);

    // Start nodes: all vertices of the path's first type that can step.
    let starts: Vec<NodeId> = space
        .nodes_of(mp.path[0])
        .filter(|&n| {
            transitions.tables[n.idx()][type_index(mp.path[1 % mp.path.len()])].is_some()
        })
        .collect();

    // Negative table over all vertices by total weighted degree^{3/4}.
    let mut deg = vec![0.0f64; space.len()];
    for ty in EdgeType::ALL {
        if let Some(te) = graph.edges(ty) {
            for e in &te.edges {
                deg[e.a.idx()] += e.weight;
                deg[e.b.idx()] += e.weight;
            }
        }
    }
    let mut neg_nodes = Vec::new();
    let mut neg_weights = Vec::new();
    for (i, &d) in deg.iter().enumerate() {
        if d > 0.0 {
            neg_nodes.push(i);
            neg_weights.push(d.powf(stgraph::sampler::NEGATIVE_POWER));
        }
    }
    let neg_alias = AliasTable::new(&neg_weights).expect("graph has edges");

    let mut init_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(params.seed);
    let store = EmbeddingStore::init(space.len(), params.dim, &mut init_rng);

    // Budget: each walk yields ≈ walk_length × window pairs, and each
    // pair costs (negatives+1) gradient updates versus the other
    // methods' (K+1); scale the walk count so total gradient work —
    // not pair count — matches the shared budget.
    let work_ratio =
        (mp.negatives + 1) as u64 / (params.sgd.negatives + 1).max(1) as u64;
    let pairs_per_walk = (mp.walk_length * mp.window) as u64 * work_ratio.max(1);
    let n_walks = (params.samples / pairs_per_walk).max(1);

    if !starts.is_empty() {
        hogwild::run(params.threads, n_walks, params.seed ^ 0x3e7a, |_, rng, n| {
            let sgd = SgdParams {
                negatives: mp.negatives,
                ..params.sgd
            };
            let mut upd = NegativeSamplingUpdate::new(params.dim, sgd);
            let lr0 = params.sgd.learning_rate;
            let mut walk: Vec<NodeId> = Vec::with_capacity(mp.walk_length);
            for walk_idx in 0..n {
                if n > 0 {
                    let progress = walk_idx as f32 / n as f32;
                    upd.set_learning_rate(lr0 * (1.0 - 0.9 * progress));
                }
                // Generate one walk following the cyclic type pattern.
                walk.clear();
                let mut cur = starts[rng.random_range(0..starts.len())];
                walk.push(cur);
                let mut pos = 0usize;
                while walk.len() < mp.walk_length {
                    pos += 1;
                    let next_ty = mp.path[pos % mp.path.len()];
                    match transitions.step(cur, next_ty, rng) {
                        Some(next) => {
                            walk.push(next);
                            cur = next;
                        }
                        None => break,
                    }
                }
                // Skip-gram over the walk.
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(mp.window);
                    let hi = (i + mp.window).min(walk.len() - 1);
                    for (j, &context) in walk.iter().enumerate().take(hi + 1).skip(lo) {
                        if j == i {
                            continue;
                        }
                        upd.step(&store, center.idx(), context.idx(), rng, |r| {
                            neg_nodes[neg_alias.sample(r)]
                        });
                    }
                }
            }
        });
    }

    let model = TrainedModel::from_parts(
        store,
        space,
        substrate.spatial.clone(),
        substrate.temporal.clone(),
        corpus.vocab().clone(),
        placeholder_config(params),
    );
    EmbeddingBaseline::new("metapath2vec", model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use evalkit::CrossModalModel;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn substrate_and_corpus() -> (Corpus, Substrate, Vec<mobility::RecordId>) {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(38)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        (corpus, substrate, split.test)
    }

    #[test]
    fn metapath_trains_and_scores() {
        let (corpus, substrate, test) = substrate_and_corpus();
        let mp = MetapathParams::default();
        let m = train_metapath2vec(&corpus, &substrate, &mp, &BaselineParams::fast());
        assert_eq!(m.name(), "metapath2vec");
        let r = corpus.record(test[0]);
        assert!(m
            .score_text(r.timestamp, r.location, &r.keywords)
            .is_finite());
    }

    #[test]
    fn typed_transitions_respect_types() {
        let (_, substrate, _) = substrate_and_corpus();
        let graph = &substrate.graph_plain;
        let space = graph.space();
        let trans = TypedTransitions::build(graph);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
        let start = space.nodes_of(NodeType::Location).next().unwrap();
        for _ in 0..20 {
            if let Some(next) = trans.step(start, NodeType::Word, &mut rng) {
                assert_eq!(space.type_of(next), NodeType::Word);
            }
        }
        // A type with no connecting edge type yields None.
        assert!(trans.step(start, NodeType::Location, &mut rng).is_none());
    }

    #[test]
    fn default_path_is_lwtw() {
        let mp = MetapathParams::default();
        assert_eq!(
            mp.path,
            vec![
                NodeType::Location,
                NodeType::Word,
                NodeType::Time,
                NodeType::Word
            ]
        );
        assert_eq!(mp.window, 3);
        assert_eq!(mp.negatives, 5);
    }
}
