//! LINE and LINE(U) baselines (§6.1.2).
//!
//! LINE treats the activity graph as a *homogeneous* network: every typed
//! edge lands in one flat edge list, one noise distribution covers all
//! vertices. That blindness to vertex types is exactly why it trails the
//! type-aware methods in Table 2. LINE(U) runs the same algorithm on the
//! user-augmented graph.

use actor_core::{ActorConfig, TrainedModel};
use embed::{LineOrder, LineParams, LineTrainer};
use mobility::Corpus;
use stgraph::{ActivityGraph, EdgeType};

use crate::params::BaselineParams;
use crate::substrate::Substrate;
use crate::wrapper::EmbeddingBaseline;

/// Which graph LINE runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineVariant {
    /// Activity graph without user vertices.
    Plain,
    /// Activity graph with auxiliary user vertices (LINE(U)).
    WithUsers,
}

impl LineVariant {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            LineVariant::Plain => "LINE",
            LineVariant::WithUsers => "LINE(U)",
        }
    }
}

/// Flattens every typed edge of `graph` into one homogeneous list.
pub fn flatten_edges(graph: &ActivityGraph) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::new();
    for ty in EdgeType::ALL {
        if let Some(te) = graph.edges(ty) {
            out.extend(te.edges.iter().map(|e| (e.a.0, e.b.0, e.weight)));
        }
    }
    out
}

/// Trains a LINE baseline on the substrate.
pub fn train_line(
    corpus: &Corpus,
    substrate: &Substrate,
    variant: LineVariant,
    params: &BaselineParams,
) -> EmbeddingBaseline {
    let graph = match variant {
        LineVariant::Plain => &substrate.graph_plain,
        LineVariant::WithUsers => &substrate.graph_user,
    };
    let edges = flatten_edges(graph);
    let trainer = LineTrainer::new(graph.n_nodes(), &edges)
        .expect("activity graphs always have weighted edges");
    let store = trainer.train(LineParams {
        dim: params.dim,
        samples: params.samples,
        threads: params.threads,
        sgd: params.sgd,
        order: LineOrder::Second,
        seed: params.seed,
    });
    let model = TrainedModel::from_parts(
        store,
        *graph.space(),
        substrate.spatial.clone(),
        substrate.temporal.clone(),
        corpus.vocab().clone(),
        placeholder_config(params),
    );
    EmbeddingBaseline::new(variant.name(), model)
}

/// A config stub recording the baseline's dimensional settings (the
/// TrainedModel constructor wants one; hotspot fields are unused after
/// detection).
pub(crate) fn placeholder_config(params: &BaselineParams) -> ActorConfig {
    ActorConfig {
        dim: params.dim,
        learning_rate: params.sgd.learning_rate,
        negatives: params.sgd.negatives,
        threads: params.threads,
        seed: params.seed,
        ..ActorConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evalkit::CrossModalModel;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn line_variants_train_and_score() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(33)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let params = BaselineParams::fast();

        let plain = train_line(&corpus, &substrate, LineVariant::Plain, &params);
        assert_eq!(plain.name(), "LINE");
        let withu = train_line(&corpus, &substrate, LineVariant::WithUsers, &params);
        assert_eq!(withu.name(), "LINE(U)");
        assert!(
            withu.model().space().len() > plain.model().space().len(),
            "user variant embeds more vertices"
        );
        let r = corpus.record(split.test[0]);
        let s = plain.score_location(r.timestamp, &r.keywords, r.location);
        assert!(s.is_finite());
    }

    #[test]
    fn flatten_covers_all_types() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(34)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let substrate = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        let flat_plain = flatten_edges(&substrate.graph_plain);
        let flat_user = flatten_edges(&substrate.graph_user);
        assert_eq!(flat_plain.len(), substrate.graph_plain.n_edges());
        assert_eq!(flat_user.len(), substrate.graph_user.n_edges());
        assert!(flat_user.len() > flat_plain.len());
    }
}
