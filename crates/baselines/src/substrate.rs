//! The shared preprocessing substrate for all baselines.
//!
//! Hotspot detection and graph construction are deterministic given the
//! corpus and bandwidths, so they are computed once per dataset and
//! shared by every method in a Table 2 run.

use actor_core::ActorConfig;
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::{Corpus, GeoPoint, RecordId};
use stgraph::build::RecordUnits;
use stgraph::{ActivityGraph, ActivityGraphBuilder, BuildOptions, UserGraph};

/// Hotspots plus both activity-graph variants (with and without user
/// vertices) and the user interaction graph.
pub struct Substrate {
    /// Spatial hotspots detected on the training split.
    pub spatial: SpatialHotspots,
    /// Temporal hotspots detected on the training split.
    pub temporal: TemporalHotspots,
    /// Activity graph without user vertices (LINE, CrossMap, metapath2vec).
    pub graph_plain: ActivityGraph,
    /// Record unit assignments under `graph_plain`'s node space.
    pub units_plain: Vec<RecordUnits>,
    /// Activity graph with user vertices (LINE(U), CrossMap(U)).
    pub graph_user: ActivityGraph,
    /// Record unit assignments under `graph_user`'s node space.
    pub units_user: Vec<RecordUnits>,
    /// The user interaction graph.
    pub user_graph: UserGraph,
}

impl Substrate {
    /// Builds the substrate with the hotspot settings of `config`.
    pub fn build(corpus: &Corpus, train_ids: &[RecordId], config: &ActorConfig) -> Self {
        let points: Vec<GeoPoint> = train_ids
            .iter()
            .map(|&id| corpus.record(id).location)
            .collect();
        let seconds: Vec<f64> = train_ids
            .iter()
            .map(|&id| {
                (corpus.record(id).timestamp as f64).rem_euclid(config.temporal_period)
            })
            .collect();
        let spatial = SpatialHotspots::detect(
            &points,
            MeanShiftParams::with_bandwidth(config.spatial_bandwidth),
            config.min_hotspot_support,
        );
        let temporal = TemporalHotspots::detect_with_period(
            &seconds,
            config.temporal_period,
            MeanShiftParams::with_bandwidth(config.temporal_bandwidth),
            config.min_hotspot_support,
        );
        let (graph_plain, units_plain) = ActivityGraphBuilder::new(
            corpus,
            &spatial,
            &temporal,
            BuildOptions {
                include_users: false,
                include_mentioned_users: false,
            },
        )
        .build(train_ids);
        let (graph_user, units_user) = ActivityGraphBuilder::new(
            corpus,
            &spatial,
            &temporal,
            BuildOptions {
                include_users: true,
                include_mentioned_users: true,
            },
        )
        .build(train_ids);
        let user_graph = UserGraph::build(corpus, train_ids);
        Self {
            spatial,
            temporal,
            graph_plain,
            units_plain,
            graph_user,
            units_user,
            user_graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn substrate_builds_both_graph_variants() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(31)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let s = Substrate::build(&corpus, &split.train, &ActorConfig::fast());
        assert_eq!(s.graph_plain.space().n_user, 0);
        assert!(s.graph_user.space().n_user > 0);
        assert_eq!(s.units_plain.len(), split.train.len());
        assert_eq!(s.units_user.len(), split.train.len());
        assert!(s.user_graph.n_edges() > 0);
        // Same hotspot layout underneath both graphs.
        assert_eq!(
            s.graph_plain.space().n_location,
            s.graph_user.space().n_location
        );
        assert_eq!(s.graph_plain.space().n_time, s.graph_user.space().n_time);
    }
}
