//! When to checkpoint.

/// Cadence of training snapshots.
///
/// Either cadence (or both) may be set; the effective interval is the
/// tighter of the two after the sample cadence is mapped onto epoch
/// boundaries (checkpoints are only taken between training segments,
/// where no Hogwild worker holds the store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot every `n` epochs (`0` = not epoch-driven).
    pub every_epochs: usize,
    /// Snapshot every `t` weighted samples (`0` = not sample-driven).
    /// Rounded *down* to the nearest epoch boundary, but never below one
    /// epoch.
    pub every_samples: u64,
    /// Checkpoints retained on disk (the store enforces a floor of 2 so
    /// a corrupt newest file always leaves a fallback).
    pub keep: usize,
}

impl CheckpointPolicy {
    /// No checkpointing: training runs as a single segment.
    pub fn disabled() -> Self {
        Self {
            every_epochs: 0,
            every_samples: 0,
            keep: 2,
        }
    }

    /// Snapshot every `n` epochs (`n >= 1`).
    pub fn every_epochs(n: usize) -> Self {
        Self {
            every_epochs: n.max(1),
            every_samples: 0,
            keep: 3,
        }
    }

    /// Snapshot every `t` weighted samples (`t >= 1`).
    pub fn every_samples(t: u64) -> Self {
        Self {
            every_epochs: 0,
            every_samples: t.max(1),
            keep: 3,
        }
    }

    /// Whether any cadence is configured.
    pub fn is_enabled(&self) -> bool {
        self.every_epochs > 0 || self.every_samples > 0
    }

    /// The effective snapshot interval in epochs, given how many weighted
    /// samples one epoch performs. `None` when disabled.
    pub fn interval_epochs(&self, samples_per_epoch: u64) -> Option<usize> {
        let from_epochs = (self.every_epochs > 0).then_some(self.every_epochs);
        let from_samples = (self.every_samples > 0).then(|| {
            let per = samples_per_epoch.max(1);
            ((self.every_samples / per).max(1)) as usize
        });
        match (from_epochs, from_samples) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

impl Default for CheckpointPolicy {
    /// Default production cadence: every 5 epochs, keep 3.
    fn default() -> Self {
        Self {
            every_epochs: 5,
            every_samples: 0,
            keep: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_has_no_interval() {
        assert_eq!(CheckpointPolicy::disabled().interval_epochs(1000), None);
        assert!(!CheckpointPolicy::disabled().is_enabled());
    }

    #[test]
    fn epoch_cadence_passes_through() {
        assert_eq!(CheckpointPolicy::every_epochs(4).interval_epochs(1), Some(4));
        assert_eq!(CheckpointPolicy::every_epochs(0).every_epochs, 1);
    }

    #[test]
    fn sample_cadence_maps_to_epoch_boundaries() {
        // 10k samples/epoch, snapshot every 35k samples -> every 3 epochs.
        let p = CheckpointPolicy::every_samples(35_000);
        assert_eq!(p.interval_epochs(10_000), Some(3));
        // Cadence tighter than one epoch clamps to 1.
        assert_eq!(CheckpointPolicy::every_samples(5).interval_epochs(10_000), Some(1));
    }

    #[test]
    fn both_cadences_take_the_tighter() {
        let p = CheckpointPolicy {
            every_epochs: 7,
            every_samples: 20_000,
            keep: 3,
        };
        assert_eq!(p.interval_epochs(10_000), Some(2));
    }
}
