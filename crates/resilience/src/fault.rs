//! Deterministic fault injection.
//!
//! All randomness flows from one seed through a splitmix64 stream, so a
//! failing test names its seed and replays bit-for-bit. The plan covers
//! the four fault classes the resilience layer defends against:
//!
//! * flipping bytes in a sealed envelope ([`FaultPlan::flip_bytes`]),
//! * truncating a checkpoint file ([`FaultPlan::truncate_file`]),
//! * injecting malformed lines into a TSV corpus
//!   ([`FaultPlan::corrupt_tsv`]),
//! * killing a training run once it passes a sample count
//!   ([`FaultPlan::should_fail`], consulted by the checkpointed fit
//!   driver at segment boundaries).

use std::fs;
use std::io;
use std::path::Path;

/// What kind of malformed line [`FaultPlan::corrupt_tsv`] injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectedFaultKind {
    /// Fields dropped from the end of the line.
    MissingField,
    /// Timestamp replaced with non-numeric junk.
    BadTimestamp,
    /// Latitude replaced with `NaN` (parses as an f64, fails the finite
    /// check).
    NonFiniteCoordinate,
    /// Longitude pushed far outside `[-180, 180]`.
    OutOfRangeCoordinate,
    /// Text replaced with stop words only, so tokenization yields zero
    /// keywords.
    EmptyText,
}

impl InjectedFaultKind {
    /// Every kind, in injection rotation order.
    pub const ALL: [InjectedFaultKind; 5] = [
        InjectedFaultKind::MissingField,
        InjectedFaultKind::BadTimestamp,
        InjectedFaultKind::NonFiniteCoordinate,
        InjectedFaultKind::OutOfRangeCoordinate,
        InjectedFaultKind::EmptyText,
    ];
}

/// One injected fault: which 1-based line, and what was done to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// 1-based line number in the corrupted output.
    pub line: usize,
    /// The corruption applied.
    pub kind: InjectedFaultKind,
}

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    fail_after_samples: Option<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan drawing all its randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            fail_after_samples: None,
        }
    }

    /// Arms a simulated worker failure once `samples` weighted samples
    /// have completed. The checkpointed fit driver consults
    /// [`FaultPlan::should_fail`] at every segment boundary.
    pub fn with_worker_failure_after(mut self, samples: u64) -> Self {
        self.fail_after_samples = Some(samples);
        self
    }

    /// True once the training cursor has passed the armed failure point.
    pub fn should_fail(&self, samples_done: u64) -> bool {
        self.fail_after_samples
            .is_some_and(|at| samples_done >= at)
    }

    /// Flips `n` deterministic bytes of `data` in place (xor with a
    /// non-zero mask, so every flip is a real change).
    pub fn flip_bytes(&self, data: &mut [u8], n: usize) {
        if data.is_empty() {
            return;
        }
        let mut state = self.seed ^ 0xF11B;
        for _ in 0..n {
            let at = (splitmix64(&mut state) % data.len() as u64) as usize;
            let mask = (splitmix64(&mut state) % 255 + 1) as u8;
            data[at] ^= mask;
        }
    }

    /// Flips `n` deterministic bytes of the file at `path`.
    pub fn flip_file_bytes(&self, path: &Path, n: usize) -> io::Result<()> {
        let mut bytes = fs::read(path)?;
        self.flip_bytes(&mut bytes, n);
        fs::write(path, bytes)
    }

    /// Truncates `data` to `keep_fraction` of its length (clamped to
    /// `[0, 1]`).
    pub fn truncate_bytes(&self, data: &mut Vec<u8>, keep_fraction: f64) {
        let keep = (data.len() as f64 * keep_fraction.clamp(0.0, 1.0)) as usize;
        data.truncate(keep);
    }

    /// Truncates the file at `path` to `keep_fraction` of its length —
    /// the torn-write simulation.
    pub fn truncate_file(&self, path: &Path, keep_fraction: f64) -> io::Result<()> {
        let mut bytes = fs::read(path)?;
        self.truncate_bytes(&mut bytes, keep_fraction);
        fs::write(path, bytes)
    }

    /// Corrupts roughly `fraction` of the data lines of a
    /// `user \t ts \t lat \t lon \t text` corpus, rotating through
    /// [`InjectedFaultKind::ALL`]. Blank and `#` comment lines are left
    /// alone. Returns the corrupted text plus an exact manifest of what
    /// was injected where — the ground truth the lenient-ingest
    /// acceptance test compares an `IngestReport` against.
    pub fn corrupt_tsv(&self, input: &str, fraction: f64) -> (String, Vec<InjectedFault>) {
        let mut state = self.seed ^ 0x75F;
        let mut out = String::with_capacity(input.len());
        let mut manifest = Vec::new();
        let mut rotation = 0usize;
        for (i, line) in input.lines().enumerate() {
            let lineno = i + 1;
            let data_line = !line.trim().is_empty() && !line.trim().starts_with('#');
            if data_line && unit_f64(&mut state) < fraction {
                let kind = InjectedFaultKind::ALL[rotation % InjectedFaultKind::ALL.len()];
                rotation += 1;
                out.push_str(&corrupt_line(line, kind));
                manifest.push(InjectedFault { line: lineno, kind });
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        (out, manifest)
    }
}

fn corrupt_line(line: &str, kind: InjectedFaultKind) -> String {
    let fields: Vec<&str> = line.splitn(5, '\t').collect();
    match kind {
        InjectedFaultKind::MissingField => fields
            .iter()
            .take(3.min(fields.len()))
            .copied()
            .collect::<Vec<_>>()
            .join("\t"),
        InjectedFaultKind::BadTimestamp => {
            replace_field(&fields, 1, "not-a-timestamp")
        }
        InjectedFaultKind::NonFiniteCoordinate => replace_field(&fields, 2, "NaN"),
        InjectedFaultKind::OutOfRangeCoordinate => replace_field(&fields, 3, "9999.0"),
        InjectedFaultKind::EmptyText => {
            replace_field(&fields, 4, "the and of with a 1234")
        }
    }
}

fn replace_field(fields: &[&str], at: usize, with: &str) -> String {
    let mut out: Vec<&str> = fields.to_vec();
    while out.len() <= at {
        out.push("0");
    }
    out[at] = with;
    out.join("\t")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TSV: &str = "\
# a comment line survives untouched
alice\t1406851200\t34.05\t-118.24\tmorning espresso downtown
bob\t1406854800\t34.06\t-118.25\tsurf report looks great
carol\t1406858400\t33.74\t-118.26\tharbor ships and cranes
dave\t1406862000\t33.75\t-118.27\ttacos after the gym
erin\t1406865600\t33.76\t-118.28\tlate night ramen run
";

    #[test]
    fn plans_are_deterministic_per_seed() {
        let plan = FaultPlan::new(7);
        let (a, ma) = plan.corrupt_tsv(TSV, 0.5);
        let (b, mb) = plan.corrupt_tsv(TSV, 0.5);
        assert_eq!(a, b);
        assert_eq!(ma, mb);
        let (c, _) = FaultPlan::new(8).corrupt_tsv(TSV, 0.5);
        assert_ne!(a, c, "different seeds should corrupt differently");
    }

    #[test]
    fn corrupt_tsv_manifest_matches_output() {
        let plan = FaultPlan::new(3);
        let (out, manifest) = plan.corrupt_tsv(TSV, 1.0);
        // fraction 1.0: every data line corrupted, comment untouched.
        assert_eq!(manifest.len(), 5);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with('#'));
        for fault in &manifest {
            let line = lines[fault.line - 1];
            match fault.kind {
                InjectedFaultKind::MissingField => {
                    assert!(line.matches('\t').count() < 4, "{line}")
                }
                InjectedFaultKind::BadTimestamp => assert!(line.contains("not-a-timestamp")),
                InjectedFaultKind::NonFiniteCoordinate => assert!(line.contains("NaN")),
                InjectedFaultKind::OutOfRangeCoordinate => assert!(line.contains("9999.0")),
                InjectedFaultKind::EmptyText => assert!(line.ends_with("the and of with a 1234")),
            }
        }
    }

    #[test]
    fn zero_fraction_is_identity_modulo_trailing_newline() {
        let plan = FaultPlan::new(1);
        let (out, manifest) = plan.corrupt_tsv(TSV, 0.0);
        assert_eq!(out, TSV);
        assert!(manifest.is_empty());
    }

    #[test]
    fn flip_bytes_changes_exactly_targeted_bytes() {
        let plan = FaultPlan::new(11);
        let original = vec![0u8; 64];
        let mut flipped = original.clone();
        plan.flip_bytes(&mut flipped, 3);
        let diff = original
            .iter()
            .zip(&flipped)
            .filter(|(a, b)| a != b)
            .count();
        assert!((1..=3).contains(&diff), "3 flips changed {diff} bytes");
        // Deterministic replay.
        let mut again = original.clone();
        plan.flip_bytes(&mut again, 3);
        assert_eq!(again, flipped);
    }

    #[test]
    fn worker_failure_trigger_is_a_threshold() {
        let plan = FaultPlan::new(0).with_worker_failure_after(10_000);
        assert!(!plan.should_fail(9_999));
        assert!(plan.should_fail(10_000));
        assert!(plan.should_fail(u64::MAX));
        assert!(!FaultPlan::new(0).should_fail(u64::MAX));
    }

    #[test]
    fn truncate_bytes_clamps() {
        let plan = FaultPlan::new(5);
        let mut data = vec![1u8; 100];
        plan.truncate_bytes(&mut data, 0.6);
        assert_eq!(data.len(), 60);
        plan.truncate_bytes(&mut data, 2.0);
        assert_eq!(data.len(), 60);
        plan.truncate_bytes(&mut data, -1.0);
        assert!(data.is_empty());
    }
}
