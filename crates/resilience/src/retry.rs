//! Bounded retry/backoff for diverged training segments.

/// How a diverged run backs off before giving up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed before the run fails with a divergence error.
    pub max_retries: u32,
    /// Multiplicative learning-rate backoff applied per retry
    /// (`0 < backoff < 1`).
    pub backoff: f32,
    /// Floor of the learning-rate scale; backoff never shrinks below it.
    pub min_scale: f32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff: 0.5,
            min_scale: 0.01,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (divergence fails immediately).
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// The learning-rate scale for retry number `attempt` (1-based), or
    /// `None` once the budget is exhausted.
    pub fn scale_for_attempt(&self, attempt: u32) -> Option<f32> {
        if attempt == 0 || attempt > self.max_retries {
            return None;
        }
        let scale = self.backoff.clamp(1e-6, 0.999_999).powi(attempt as i32);
        Some(scale.max(self.min_scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_decay_and_exhaust() {
        let p = RetryPolicy::default();
        assert_eq!(p.scale_for_attempt(1), Some(0.5));
        assert_eq!(p.scale_for_attempt(2), Some(0.25));
        assert_eq!(p.scale_for_attempt(3), Some(0.125));
        assert_eq!(p.scale_for_attempt(4), None);
        assert_eq!(p.scale_for_attempt(0), None);
    }

    #[test]
    fn scale_respects_floor() {
        let p = RetryPolicy {
            max_retries: 50,
            backoff: 0.5,
            min_scale: 0.1,
        };
        assert_eq!(p.scale_for_attempt(10), Some(0.1));
    }

    #[test]
    fn none_never_retries() {
        assert_eq!(RetryPolicy::none().scale_for_attempt(1), None);
    }
}
