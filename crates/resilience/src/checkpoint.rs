//! Sealed checkpoint envelopes and the on-disk checkpoint store.
//!
//! ## Envelope format (`ACTORCP1`)
//!
//! | field         | bytes | contents                                   |
//! |---------------|-------|--------------------------------------------|
//! | magic         | 8     | `b"ACTORCP1"`                              |
//! | epoch         | 8     | training-epoch cursor (LE u64)             |
//! | samples       | 8     | weighted samples completed (LE u64)        |
//! | seed          | 8     | config RNG seed (LE u64; resume sanity)    |
//! | lr_scale      | 4     | learning-rate backoff scale (LE f32)       |
//! | payload_len   | 8     | payload length (LE u64)                    |
//! | payload       | n     | opaque (the embedding-store persist bytes) |
//! | crc32         | 4     | CRC-32 over *all* preceding bytes          |
//!
//! A reader rejects anything with a wrong magic, a short buffer, a length
//! prefix that disagrees with the buffer, or a CRC mismatch — so a torn
//! write, a truncation, or a flipped bit surfaces as a typed
//! [`CheckpointError`], never as a panic or a silently-wrong model.
//!
//! ## Atomicity
//!
//! [`CheckpointStore::write`] writes to a hidden temp file in the same
//! directory and `rename`s it into place — on POSIX filesystems the
//! visible file is therefore always either absent or complete. Recovery
//! ([`CheckpointStore::latest_valid`]) walks checkpoints newest→oldest
//! and returns the first one that opens cleanly, which is exactly the
//! fallback behaviour the truncation test in `tests/resilience.rs`
//! exercises.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::crc::{crc32, Crc32};

/// Magic prefix of a sealed checkpoint.
pub const MAGIC: &[u8; 8] = b"ACTORCP1";

/// Fixed-size header length (everything before the payload).
const HEADER_LEN: usize = 8 + 8 + 8 + 8 + 4 + 8;

/// Cursor metadata stored alongside the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointMeta {
    /// Training epochs completed when the snapshot was taken.
    pub epoch: u64,
    /// Weighted samples completed (the fault-plan cursor).
    pub samples: u64,
    /// RNG seed of the run that wrote the checkpoint; resume refuses
    /// checkpoints written under a different seed.
    pub seed: u64,
    /// Learning-rate backoff scale in effect (1.0 unless a divergence
    /// retry shrank it).
    pub lr_scale: f32,
}

/// Why a checkpoint could not be written or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure; `detail` carries the OS error text.
    Io {
        /// What the store was doing.
        context: String,
        /// Stringified `std::io::Error`.
        detail: String,
    },
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer is shorter than its own framing claims.
    Truncated {
        /// Bytes present.
        len: usize,
        /// Bytes the framing requires.
        need: usize,
    },
    /// The CRC trailer disagrees with the contents.
    CrcMismatch {
        /// Trailer value.
        stored: u32,
        /// Recomputed value.
        computed: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { context, detail } => write!(f, "checkpoint io ({context}): {detail}"),
            Self::BadMagic => write!(f, "not an ACTORCP1 checkpoint"),
            Self::Truncated { len, need } => {
                write!(f, "checkpoint truncated: {len} bytes, need {need}")
            }
            Self::CrcMismatch { stored, computed } => write!(
                f,
                "checkpoint crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(context: &str, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        context: context.to_string(),
        detail: e.to_string(),
    }
}

fn encode_header(meta: &CheckpointMeta, payload_len: usize) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(MAGIC);
    header[8..16].copy_from_slice(&meta.epoch.to_le_bytes());
    header[16..24].copy_from_slice(&meta.samples.to_le_bytes());
    header[24..32].copy_from_slice(&meta.seed.to_le_bytes());
    header[32..36].copy_from_slice(&meta.lr_scale.to_le_bytes());
    header[36..44].copy_from_slice(&(payload_len as u64).to_le_bytes());
    header
}

/// Seals `payload` and its cursor metadata into a self-verifying buffer.
pub fn seal_checkpoint(meta: &CheckpointMeta, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    buf.extend_from_slice(&encode_header(meta, payload.len()));
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Opens a sealed checkpoint, verifying framing and CRC; returns the
/// cursor metadata and the payload.
pub fn open_checkpoint(bytes: &[u8]) -> Result<(CheckpointMeta, Vec<u8>), CheckpointError> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(CheckpointError::Truncated {
            len: bytes.len(),
            need: HEADER_LEN + 4,
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let payload_len = le_u64(bytes, 36);
    let need = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(4))
        .ok_or(CheckpointError::Truncated {
            len: bytes.len(),
            need: usize::MAX,
        })?;
    if (bytes.len() as u64) != need {
        return Err(CheckpointError::Truncated {
            len: bytes.len(),
            need: need.min(usize::MAX as u64) as usize,
        });
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..body_end]);
    if stored != computed {
        return Err(CheckpointError::CrcMismatch { stored, computed });
    }
    let meta = CheckpointMeta {
        epoch: le_u64(bytes, 8),
        samples: le_u64(bytes, 16),
        seed: le_u64(bytes, 24),
        lr_scale: f32::from_le_bytes(bytes[32..36].try_into().expect("4 bytes")),
    };
    Ok((meta, bytes[HEADER_LEN..body_end].to_vec()))
}

/// A directory of sealed checkpoints named `ckpt-<epoch>.ackpt`.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// A store rooted at `dir`, retaining the newest `keep` checkpoints
    /// (at least 2, so corruption of the newest always leaves a fallback).
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Self {
        Self {
            dir: dir.into(),
            keep: keep.max(2),
        }
    }

    /// The directory checkpoints live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{epoch:010}.ackpt"))
    }

    /// Seals and writes one checkpoint atomically (temp file + rename),
    /// then prunes everything older than the newest `keep`. Streams
    /// header, payload, and CRC trailer straight to the file — the
    /// payload is a multi-megabyte embedding store, and this path runs on
    /// the training critical path, so it never builds the concatenated
    /// envelope in memory.
    pub fn write(&self, meta: &CheckpointMeta, payload: &[u8]) -> Result<PathBuf, CheckpointError> {
        fs::create_dir_all(&self.dir).map_err(|e| io_err("create dir", e))?;
        let header = encode_header(meta, payload.len());
        let mut crc = Crc32::new();
        crc.update(&header);
        crc.update(payload);
        let tmp = self.dir.join(format!(".tmp-ckpt-{:010}", meta.epoch));
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
            let mut w = std::io::BufWriter::new(&mut f);
            w.write_all(&header).map_err(|e| io_err("write temp", e))?;
            w.write_all(payload).map_err(|e| io_err("write temp", e))?;
            w.write_all(&crc.finish().to_le_bytes())
                .map_err(|e| io_err("write temp", e))?;
            w.flush().map_err(|e| io_err("write temp", e))?;
            drop(w);
            f.sync_all().map_err(|e| io_err("sync temp", e))?;
        }
        let dest = self.path_for(meta.epoch);
        fs::rename(&tmp, &dest).map_err(|e| io_err("rename into place", e))?;
        self.prune();
        Ok(dest)
    }

    /// All checkpoint files, sorted oldest→newest by epoch.
    pub fn list(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out: Vec<(u64, PathBuf)> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let epoch: u64 = name
                    .strip_prefix("ckpt-")?
                    .strip_suffix(".ackpt")?
                    .parse()
                    .ok()?;
                Some((epoch, e.path()))
            })
            .collect();
        out.sort_unstable_by_key(|&(epoch, _)| epoch);
        out
    }

    /// The newest checkpoint that opens cleanly, walking backwards past
    /// truncated or corrupt files. Returns `None` when no valid
    /// checkpoint exists.
    pub fn latest_valid(&self) -> Option<(CheckpointMeta, Vec<u8>)> {
        for (_, path) in self.list().into_iter().rev() {
            let Ok(bytes) = fs::read(&path) else { continue };
            if let Ok(opened) = open_checkpoint(&bytes) {
                return Some(opened);
            }
        }
        None
    }

    /// Removes every checkpoint file (used by tests and fresh runs that
    /// must not resume stale state).
    pub fn clear(&self) {
        for (_, path) in self.list() {
            let _ = fs::remove_file(path);
        }
    }

    fn prune(&self) {
        let files = self.list();
        if files.len() > self.keep {
            for (_, path) in &files[..files.len() - self.keep] {
                let _ = fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "actor-resilience-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(epoch: u64) -> CheckpointMeta {
        CheckpointMeta {
            epoch,
            samples: epoch * 1000,
            seed: 42,
            lr_scale: 1.0,
        }
    }

    #[test]
    fn seal_open_round_trip() {
        let payload = b"embedding store bytes".to_vec();
        let sealed = seal_checkpoint(&meta(7), &payload);
        let (m, p) = open_checkpoint(&sealed).unwrap();
        assert_eq!(m, meta(7));
        assert_eq!(p, payload);
    }

    #[test]
    fn open_rejects_every_truncation() {
        let sealed = seal_checkpoint(&meta(1), &[9u8; 128]);
        for cut in 0..sealed.len() {
            assert!(
                open_checkpoint(&sealed[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn open_rejects_any_flipped_bit() {
        let sealed = seal_checkpoint(&meta(3), b"payload");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            let err = open_checkpoint(&bad).unwrap_err();
            match err {
                CheckpointError::BadMagic
                | CheckpointError::CrcMismatch { .. }
                | CheckpointError::Truncated { .. } => {}
                other => panic!("unexpected error at byte {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn store_writes_atomically_and_prunes() {
        let dir = tmp_dir("prune");
        let store = CheckpointStore::new(&dir, 2);
        for epoch in 1..=5u64 {
            store.write(&meta(epoch), &[epoch as u8; 32]).unwrap();
        }
        let files = store.list();
        assert_eq!(files.len(), 2, "{files:?}");
        assert_eq!(files[0].0, 4);
        assert_eq!(files[1].0, 5);
        // No temp droppings left behind.
        let strays: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp"))
            .collect();
        assert!(strays.is_empty());
        let (m, p) = store.latest_valid().unwrap();
        assert_eq!(m.epoch, 5);
        assert_eq!(p, vec![5u8; 32]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_skips_corrupt_newest() {
        let dir = tmp_dir("fallback");
        let store = CheckpointStore::new(&dir, 3);
        store.write(&meta(1), b"one").unwrap();
        store.write(&meta(2), b"two").unwrap();
        let newest = store.write(&meta(3), b"three").unwrap();
        // Truncate the newest file mid-payload.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let (m, p) = store.latest_valid().unwrap();
        assert_eq!(m.epoch, 2);
        assert_eq!(p, b"two");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_dir_is_not_an_error() {
        let store = CheckpointStore::new(tmp_dir("missing"), 2);
        assert!(store.latest_valid().is_none());
        assert!(store.list().is_empty());
        store.clear();
    }
}
