//! `actor-resilience` — the fault-tolerance layer of the ACTOR stack.
//!
//! Production ingestion is continuous and dirty: streams carry malformed
//! lines, disks lose power mid-write, and a multi-hour training run must
//! not restart from zero because one worker died. This crate provides the
//! mechanisms the rest of the workspace threads through its pipeline:
//!
//! * **Checkpoints** ([`checkpoint`]) — an opaque payload sealed into a
//!   small envelope (magic, cursor metadata, length prefix, CRC-32
//!   trailer) and a [`CheckpointStore`] that writes envelopes atomically
//!   (temp file + rename), retains the newest `keep`, and on recovery
//!   walks newest→oldest skipping anything truncated or bit-flipped.
//! * **Policies** ([`policy`], [`retry`]) — [`CheckpointPolicy`] decides
//!   *when* to snapshot (every N epochs or every T samples);
//!   [`RetryPolicy`] bounds how often and how hard a diverged training
//!   run backs off its learning rate before giving up.
//! * **Divergence detection** ([`divergence`]) — a small state machine
//!   over per-segment mean losses that flags non-finite values, losses
//!   above an absolute ceiling, and loss explosions relative to the best
//!   window seen so far.
//! * **Fault injection** ([`fault`]) — a seeded, deterministic
//!   [`FaultPlan`] that flips envelope bytes, truncates checkpoint
//!   files, injects malformed TSV lines, and triggers a simulated worker
//!   failure at a chosen sample count. The integration suite
//!   (`tests/resilience.rs` at the workspace root) uses it to prove that
//!   fit-under-faults recovers to the same quality as a clean run.
//!
//! The crate depends on the standard library alone (mirroring
//! `actor-obs`), so every layer — `mobility`, `embed`, `core`, `bench` —
//! can use it without cycles. See `docs/RESILIENCE.md` for the file
//! format and the recovery state machine.

pub mod checkpoint;
pub mod crc;
pub mod divergence;
pub mod fault;
pub mod policy;
pub mod retry;

pub use checkpoint::{
    open_checkpoint, seal_checkpoint, CheckpointError, CheckpointMeta, CheckpointStore,
};
pub use crc::crc32;
pub use divergence::{DivergenceDetector, DivergenceReason, Verdict};
pub use fault::{FaultPlan, InjectedFault, InjectedFaultKind};
pub use policy::CheckpointPolicy;
pub use retry::RetryPolicy;
