//! Loss-window divergence detection.
//!
//! The SGD loop reports the mean per-update loss of each training
//! segment; the detector flags three failure shapes:
//!
//! 1. **Non-finite** — any NaN/∞ mean is an unconditional divergence
//!    (something already overflowed).
//! 2. **Absolute ceiling** — the negative-sampling loss of one update is
//!    bounded by ≈ `(1 + K) · 16.1` nats (the sigmoid table saturates at
//!    `σ = 1e-7`), so a mean above the configured ceiling means the model
//!    is pinned at saturation, not learning.
//! 3. **Relative explosion** — the mean exceeds `factor ×` the best
//!    (lowest) segment mean seen so far: training that had converged and
//!    then blew up.

/// Outcome of observing one segment's mean loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Loss looks sane; training may continue.
    Healthy,
    /// Training diverged; restore a checkpoint and back off.
    Diverged(DivergenceReason),
}

/// Why the detector tripped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceReason {
    /// The mean loss was NaN or infinite.
    NonFinite,
    /// The mean loss exceeded the absolute per-update ceiling.
    AboveCeiling {
        /// Observed mean.
        mean: f64,
        /// Configured ceiling.
        ceiling: f64,
    },
    /// The mean loss exploded relative to the best segment so far.
    Exploded {
        /// Observed mean.
        mean: f64,
        /// Best (lowest) segment mean previously observed.
        best: f64,
    },
}

/// Streaming divergence detector over segment mean losses.
#[derive(Debug, Clone)]
pub struct DivergenceDetector {
    factor: f64,
    ceiling: f64,
    best: Option<f64>,
}

impl DivergenceDetector {
    /// `factor` = relative-explosion multiplier (≥ 1); `ceiling` =
    /// absolute mean-loss-per-update ceiling.
    pub fn new(factor: f64, ceiling: f64) -> Self {
        Self {
            factor: factor.max(1.0),
            ceiling,
            best: None,
        }
    }

    /// The best (lowest) segment mean observed so far.
    pub fn best(&self) -> Option<f64> {
        self.best
    }

    /// Feeds one segment's mean per-update loss.
    pub fn observe(&mut self, mean: f64) -> Verdict {
        if !mean.is_finite() {
            return Verdict::Diverged(DivergenceReason::NonFinite);
        }
        if mean > self.ceiling {
            return Verdict::Diverged(DivergenceReason::AboveCeiling {
                mean,
                ceiling: self.ceiling,
            });
        }
        if let Some(best) = self.best {
            if mean > self.factor * best.max(1e-9) {
                return Verdict::Diverged(DivergenceReason::Exploded { mean, best });
            }
        }
        self.best = Some(self.best.map_or(mean, |b| b.min(mean)));
        Verdict::Healthy
    }
}

impl Default for DivergenceDetector {
    /// `factor = 4`, `ceiling = 50` nats/update — far above any healthy
    /// negative-sampling loss, far below saturation with several
    /// negatives.
    fn default() -> Self {
        Self::new(4.0, 50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_decreasing_losses_pass() {
        let mut d = DivergenceDetector::default();
        for loss in [1.4, 1.1, 0.9, 0.7, 0.69] {
            assert_eq!(d.observe(loss), Verdict::Healthy);
        }
        assert_eq!(d.best(), Some(0.69));
    }

    #[test]
    fn non_finite_trips_immediately() {
        let mut d = DivergenceDetector::default();
        assert_eq!(
            d.observe(f64::NAN),
            Verdict::Diverged(DivergenceReason::NonFinite)
        );
        assert_eq!(
            d.observe(f64::INFINITY),
            Verdict::Diverged(DivergenceReason::NonFinite)
        );
    }

    #[test]
    fn ceiling_trips_even_on_first_segment() {
        let mut d = DivergenceDetector::new(4.0, 50.0);
        assert!(matches!(
            d.observe(64.2),
            Verdict::Diverged(DivergenceReason::AboveCeiling { .. })
        ));
    }

    #[test]
    fn relative_explosion_trips_after_convergence() {
        let mut d = DivergenceDetector::new(4.0, 50.0);
        assert_eq!(d.observe(1.0), Verdict::Healthy);
        assert_eq!(d.observe(0.5), Verdict::Healthy);
        // 0.5 * 4 = 2.0; 3.0 explodes.
        assert!(matches!(
            d.observe(3.0),
            Verdict::Diverged(DivergenceReason::Exploded { best, .. }) if best == 0.5
        ));
        // A diverged observation does not poison `best`.
        assert_eq!(d.best(), Some(0.5));
    }
}
