//! CRC-32 (IEEE 802.3 polynomial, reflected) for checkpoint trailers.
//!
//! A checksum — not a cryptographic MAC: the threat model is torn writes
//! and bit rot, not an adversary forging checkpoints. Checkpoint
//! payloads are multi-megabyte embedding stores written on the training
//! critical path, so throughput matters: the hot loop uses slicing-by-8
//! (eight compile-time tables, one 8-byte chunk per iteration), several
//! times faster than the classic one-lookup-per-byte form.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            bit += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Incremental CRC-32: feed chunks with [`Crc32::update`], take the
/// final value with [`Crc32::finish`]. Lets the checkpoint writer
/// checksum header and payload without concatenating them first.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = c ^ u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes"));
            c = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][chunk[4] as usize]
                ^ TABLES[2][chunk[5] as usize]
                ^ TABLES[1][chunk[6] as usize]
                ^ TABLES[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The CRC-32 of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// CRC-32 of `data` (the common `crc32` as used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"checkpoint payload bytes");
        let mut corrupted = b"checkpoint payload bytes".to_vec();
        for i in 0..corrupted.len() {
            corrupted[i] ^= 0x01;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
            corrupted[i] ^= 0x01;
        }
        assert_eq!(crc32(&corrupted), base);
    }
}
