//! Synthetic model construction for tests and benches.
//!
//! Training a real model with tens of thousands of hotspots per modality
//! is infeasible inside a test, but serving doesn't care where a model
//! came from: [`synthetic_model`] assembles a [`TrainedModel`] directly
//! from planted hotspot centers, an interned vocabulary, and *clustered*
//! embedding rows (the shape real embedding spaces take — uniform random
//! vectors are near-equidistant in high dimension, which no ANN index can
//! or should be judged on).

use actor_core::{ActorConfig, TrainedModel};
use embed::EmbeddingStore;
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::{GeoPoint, Vocabulary};
use rand::{rngs::StdRng, Rng, SeedableRng};
use stgraph::NodeSpace;

/// Seconds per day; the period of the synthetic temporal hotspots.
const DAY: f64 = 86_400.0;

/// A model with `n_per_modality` time, location, and word units (plus a
/// handful of users), `dim`-wide clustered embeddings, deterministic in
/// `seed`. Hotspot centers are laid out evenly (a time grid over the day,
/// a location grid over greater LA) so raw-coordinate lookups behave.
pub fn synthetic_model(n_per_modality: usize, dim: usize, seed: u64) -> TrainedModel {
    assert!(n_per_modality >= 2 && dim >= 4);
    let n = n_per_modality;
    let mut rng = StdRng::seed_from_u64(seed);

    let time_centers: Vec<f64> = (0..n).map(|i| i as f64 * DAY / n as f64).collect();
    let temporal = TemporalHotspots::from_centers_with_period(&time_centers, DAY);

    let side = (n as f64).sqrt().ceil() as usize;
    let geo_centers: Vec<GeoPoint> = (0..n)
        .map(|i| {
            let (r, c) = (i / side, i % side);
            GeoPoint::new(
                33.5 + r as f64 / side as f64,
                -118.5 + c as f64 / side as f64,
            )
        })
        .collect();
    let spatial = SpatialHotspots::from_centers(&geo_centers, MeanShiftParams::with_bandwidth(0.02));

    let mut vocab = Vocabulary::new();
    for i in 0..n {
        vocab.intern(&format!("word{i:05}"));
    }

    let space = NodeSpace {
        n_time: n as u32,
        n_location: n as u32,
        n_word: n as u32,
        n_user: 8,
    };

    // Clustered rows: per-modality cluster centers with ±0.15 noise.
    let n_clusters = 64.min(n / 4).max(1);
    let mut store = EmbeddingStore::zeros(space.len(), dim);
    let mut centers = vec![0.0f32; n_clusters * dim];
    for x in centers.iter_mut() {
        *x = rng.random_range(-1.0f32..1.0);
    }
    let mut row = vec![0.0f32; dim];
    for i in 0..space.len() {
        let c = i % n_clusters;
        for (d, r) in row.iter_mut().enumerate() {
            *r = centers[c * dim + d] + rng.random_range(-0.15f32..0.15);
        }
        store.centers.set_row(i, &row);
    }

    TrainedModel::from_parts(store, space, spatial, temporal, vocab, ActorConfig::fast())
}

/// A probe query vector near the embedding of global row `i`: the row
/// plus a little noise, the typical "query resembles an indexed point"
/// workload.
pub fn probe_near(model: &TrainedModel, i: usize, noise: f32, rng: &mut StdRng) -> Vec<f32> {
    model
        .store()
        .centers
        .row(i)
        .iter()
        .map(|&x| x + rng.random_range(-noise..noise))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stgraph::NodeType;

    #[test]
    fn synthetic_model_has_the_requested_shape() {
        let m = synthetic_model(64, 8, 9);
        assert_eq!(m.space().count(NodeType::Word), 64);
        assert_eq!(m.space().count(NodeType::Time), 64);
        assert_eq!(m.space().count(NodeType::Location), 64);
        assert!(m.vocab().get("word00063").is_some());
        // Raw lookups assign to the planted grids.
        let node = m.time_of_day_node(0.0);
        assert_eq!(m.space().type_of(node), NodeType::Time);
    }
}
