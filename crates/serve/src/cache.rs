//! Sharded LRU cache over quantized query vectors.
//!
//! Two observations make caching worthwhile for activity queries: real
//! traffic is heavily repeated (the same landmarks, the same commute
//! hours), and cosine ranking is insensitive to tiny query perturbations.
//! The cache key therefore *quantizes* the unit query vector to `i16`
//! grid cells — queries within a quantization cell share one entry — and
//! adds everything else that changes the answer (k, modality mask, and
//! the snapshot epoch, so a hot-swap naturally invalidates: stale-epoch
//! entries can no longer be hit and age out of the LRU).
//!
//! Sharding by key hash keeps lock contention negligible: each shard is an
//! independent mutex around a hand-rolled intrusive-list LRU (`HashMap`
//! into a slab of doubly-linked entries — O(1) hit, insert, and evict).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

use crate::query::QueryResponse;

/// Scale used when quantizing unit-vector components (`round(x · 512)`;
/// components lie in [-1, 1], so cells are ~0.002 wide — far below any
/// gap that would reorder a top-k).
const QUANT_SCALE: f32 = 512.0;

/// Fully resolved cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Snapshot epoch the answer was computed under.
    epoch: u64,
    /// Requested k.
    k: u32,
    /// Requested modality bitmask.
    mask: u8,
    /// Quantized unit query vector.
    cells: Vec<i16>,
}

impl CacheKey {
    /// Quantizes a unit query vector plus the answer-shaping parameters.
    pub fn new(epoch: u64, k: usize, mask: u8, unit_query: &[f32]) -> Self {
        Self {
            epoch,
            k: k as u32,
            mask,
            cells: unit_query
                .iter()
                .map(|&x| (x * QUANT_SCALE).round() as i16)
                .collect(),
        }
    }

    fn hash64(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Slab slot index; `NONE` terminates the intrusive list.
const NONE: u32 = u32::MAX;

struct Entry {
    key: CacheKey,
    value: QueryResponse,
    prev: u32,
    next: u32,
}

/// One shard: a slab of entries threaded into an MRU→LRU list, plus a
/// key→slot map. Capacity is fixed at construction; eviction pops the
/// list tail.
struct Shard {
    map: HashMap<CacheKey, u32>,
    slab: Vec<Entry>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let e = &self.slab[slot as usize];
            (e.prev, e.next)
        };
        match prev {
            NONE => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NONE => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[slot as usize];
            e.prev = NONE;
            e.next = old_head;
        }
        if old_head != NONE {
            self.slab[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<QueryResponse> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slab[slot as usize].value.clone())
    }

    fn insert(&mut self, key: CacheKey, value: QueryResponse) {
        if let Some(&slot) = self.map.get(&key) {
            // Refresh an existing entry in place.
            self.slab[slot as usize].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        let slot = if self.slab.len() < self.capacity {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NONE,
                next: NONE,
            });
            (self.slab.len() - 1) as u32
        } else {
            // Evict the LRU tail and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            let e = &mut self.slab[victim as usize];
            let old_key = std::mem::replace(&mut e.key, key.clone());
            e.value = value;
            self.map.remove(&old_key);
            victim
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NONE;
        self.tail = NONE;
    }
}

/// The sharded cache. Hit/miss totals are exported through `actor-obs`
/// (`serve.cache.hit` / `serve.cache.miss`) and mirrored in
/// [`QueryCache::hits`] / [`QueryCache::misses`] for per-engine stats.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    hit_counter: obs::Counter,
    miss_counter: obs::Counter,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl QueryCache {
    /// A cache of `capacity` total entries spread over `shards` shards
    /// (both floored to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hit_counter: obs::counter("serve.cache.hit"),
            miss_counter: obs::counter("serve.cache.miss"),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        // High bits: DefaultHasher mixes well, and the map inside the
        // shard re-hashes the full key anyway.
        let h = key.hash64();
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Looks up a cached answer, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<QueryResponse> {
        let got = self.shard_of(key).lock().get(key);
        if got.is_some() {
            self.hit_counter.incr();
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        } else {
            self.miss_counter.incr();
            self.misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        got
    }

    /// Stores an answer (refreshing LRU position if the key exists).
    pub fn insert(&self, key: CacheKey, value: QueryResponse) {
        self.shard_of(&key).lock().insert(key, value);
    }

    /// Drops every entry (used at publish time; epoch keying already
    /// prevents stale hits — clearing just returns the memory early).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Cache hits since construction (this engine only).
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Cache misses since construction (this engine only).
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(tag: u64) -> QueryResponse {
        QueryResponse {
            query: format!("q{tag}"),
            epoch: tag,
            from_cache: false,
            words: Vec::new(),
            times: Vec::new(),
            places: Vec::new(),
        }
    }

    fn key(epoch: u64, x: f32) -> CacheKey {
        CacheKey::new(epoch, 10, 0b111, &[x, 0.5, -0.25])
    }

    #[test]
    fn hit_after_insert_and_epoch_isolation() {
        let cache = QueryCache::new(64, 4);
        assert!(cache.get(&key(1, 0.1)).is_none());
        cache.insert(key(1, 0.1), response(7));
        assert_eq!(cache.get(&key(1, 0.1)).unwrap().epoch, 7);
        // Same query under a newer epoch misses: hot-swap invalidates.
        assert!(cache.get(&key(2, 0.1)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn nearby_queries_share_a_cell_distant_ones_do_not() {
        let a = key(1, 0.5000);
        let b = key(1, 0.5004); // within one 1/512 cell of a
        let c = key(1, 0.6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let cache = QueryCache::new(2, 1); // single shard, two slots
        cache.insert(key(1, 0.1), response(1));
        cache.insert(key(1, 0.2), response(2));
        // Touch the first so the second becomes LRU.
        assert!(cache.get(&key(1, 0.1)).is_some());
        cache.insert(key(1, 0.3), response(3));
        assert!(cache.get(&key(1, 0.1)).is_some(), "recently used survives");
        assert!(cache.get(&key(1, 0.2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 0.3)).is_some());
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = QueryCache::new(16, 4);
        for i in 0..8 {
            cache.insert(key(1, i as f32 * 0.1), response(i));
        }
        cache.clear();
        for i in 0..8 {
            assert!(cache.get(&key(1, i as f32 * 0.1)).is_none());
        }
    }

    #[test]
    fn insert_same_key_refreshes_value() {
        let cache = QueryCache::new(4, 1);
        cache.insert(key(1, 0.1), response(1));
        cache.insert(key(1, 0.1), response(2));
        assert_eq!(cache.get(&key(1, 0.1)).unwrap().epoch, 2);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = std::sync::Arc::new(QueryCache::new(128, 8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = key(1, ((t * 131 + i) % 50) as f32 / 50.0);
                        if cache.get(&k).is_none() {
                            cache.insert(k, response(i));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 2000);
    }
}
