//! Epoch-based snapshot hot-swap: lock-free reads, rare-path publishes.
//!
//! The query path must never take a lock: a publish (rebuilding an HNSW
//! index takes milliseconds to seconds) stalling every in-flight query
//! would defeat the point of serving. The classic answer is `ArcSwap`;
//! under the zero-external-dependency rule this module hand-rolls the same
//! guarantee from `Arc` + atomics:
//!
//! * The cell holds the current `Arc<Snapshot>` behind a mutex **plus** a
//!   monotonically increasing epoch in an `AtomicU64`.
//! * Every reader thread keeps a thread-local `(epoch, Arc)` pair per
//!   cell. The steady-state read is one atomic load + a thread-local
//!   compare — no locks, no reference-count contention, nothing shared
//!   written at all.
//! * Only when the epoch moved does a reader touch the mutex, clone the
//!   new `Arc` once, and cache it. Each swap therefore costs each reader
//!   thread one brief lock acquisition, amortized over every query until
//!   the next swap.
//!
//! Readers hold a full `Arc` for the duration of a query, so a snapshot is
//! torn-free by construction: the publisher can never free or mutate what
//! a reader is using, and the old snapshot dies when the last in-flight
//! query (or stale thread cache) drops it.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::snapshot::Snapshot;

/// Process-wide unique ids so thread-local caches can serve many cells.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread `(cell id, epoch, snapshot)` cache. A plain Vec: a
    /// process holds a handful of engines, so a linear scan beats hashing.
    static READER_CACHE: RefCell<Vec<(u64, u64, Arc<Snapshot>)>> = const { RefCell::new(Vec::new()) };
}

/// A hot-swappable slot holding the currently served [`Snapshot`].
pub struct SnapshotCell {
    id: u64,
    /// Epoch of the snapshot in `slot`; written only while `slot`'s lock
    /// is held, so `(epoch, slot)` pairs read under the lock are coherent.
    epoch: AtomicU64,
    slot: Mutex<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// A cell initially serving `snapshot`.
    pub fn new(snapshot: Arc<Snapshot>) -> Self {
        Self {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(snapshot.epoch()),
            slot: Mutex::new(snapshot),
        }
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot. Lock-free in the steady state (atomic load +
    /// thread-local hit); takes the publish mutex once per thread per
    /// swap to refresh the cache.
    pub fn load(&self) -> Arc<Snapshot> {
        let now = self.epoch.load(Ordering::Acquire);
        READER_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(entry) = cache.iter_mut().find(|(id, _, _)| *id == self.id) {
                if entry.1 == now {
                    return entry.2.clone();
                }
                // Stale: refresh under the lock. Reading the epoch while
                // holding the lock keeps the cached pair coherent even if
                // another publish raced in between.
                let guard = self.slot.lock();
                let fresh = guard.clone();
                let epoch = self.epoch.load(Ordering::Acquire);
                drop(guard);
                entry.1 = epoch;
                entry.2 = fresh.clone();
                return fresh;
            }
            let guard = self.slot.lock();
            let fresh = guard.clone();
            let epoch = self.epoch.load(Ordering::Acquire);
            drop(guard);
            cache.push((self.id, epoch, fresh.clone()));
            fresh
        })
    }

    /// Publishes `snapshot` (whose epoch must exceed the current one) and
    /// makes it visible to all subsequent `load`s. In-flight readers keep
    /// the snapshot they already hold.
    pub fn store(&self, snapshot: Arc<Snapshot>) {
        let mut guard = self.slot.lock();
        debug_assert!(
            snapshot.epoch() > self.epoch.load(Ordering::Relaxed),
            "epochs must increase monotonically"
        );
        self.epoch.store(snapshot.epoch(), Ordering::Release);
        *guard = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::IndexParams;
    use actor_core::ActorConfig;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn fitted_model() -> actor_core::TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(41)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        actor_core::fit(&corpus, &split.train, &ActorConfig::fast())
            .unwrap()
            .0
    }

    #[test]
    fn load_returns_the_published_snapshot() {
        let model = fitted_model();
        let a = Arc::new(Snapshot::build(&model, &IndexParams::default(), 1));
        let cell = SnapshotCell::new(a.clone());
        assert!(Arc::ptr_eq(&cell.load(), &a));
        assert_eq!(cell.epoch(), 1);

        let b = Arc::new(Snapshot::build(&model, &IndexParams::default(), 2));
        cell.store(b.clone());
        assert!(Arc::ptr_eq(&cell.load(), &b));
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn concurrent_readers_always_see_a_whole_snapshot() {
        let model = fitted_model();
        let base = Arc::new(Snapshot::build(&model, &IndexParams::default(), 1));
        let cell = Arc::new(SnapshotCell::new(base));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut last_epoch = 0;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let snap = cell.load();
                        // The pair (epoch tag, contents) is immutable once
                        // built; epochs observed never go backwards.
                        assert!(snap.epoch() >= last_epoch);
                        last_epoch = snap.epoch();
                    }
                });
            }
            let publisher = {
                let cell = cell.clone();
                let model = &model;
                s.spawn(move || {
                    for epoch in 2..40 {
                        let snap = Snapshot::build(model, &IndexParams::default(), epoch);
                        cell.store(Arc::new(snap));
                    }
                })
            };
            publisher.join().unwrap();
            stop.store(1, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 39);
    }
}
