//! Immutable serving snapshots: a frozen model + per-modality ANN indexes.
//!
//! A [`Snapshot`] is everything one query needs, frozen at publish time:
//! the [`TrainedModel`] (hotspot assignment, vocabulary, raw vectors for
//! query construction), a unit-normalized copy of every center row
//! ([`embed::NormalizedRows`]), and one index per node type so a
//! modality-filtered top-k (`words` / `times` / `places`) never scans the
//! other modalities. Small modalities keep the exact linear scan — below
//! [`IndexParams::ann_threshold`] elements a scan beats an HNSW walk and
//! is exact for free; large modalities get an HNSW graph.

use actor_core::TrainedModel;
use embed::NormalizedRows;
use stgraph::{NodeId, NodeType};

use crate::hnsw::{exact_top_k, HnswIndex, HnswParams, SearchScratch, VectorSource};

/// Index-build policy for snapshots.
#[derive(Debug, Clone, Copy)]
pub struct IndexParams {
    /// Modalities with at least this many units get an HNSW index;
    /// smaller ones use the exact scan (which is both faster and exact at
    /// that size). Set to 0 to force ANN everywhere (conformance tests),
    /// `usize::MAX` to force exact everywhere (reference behavior).
    pub ann_threshold: usize,
    /// HNSW construction/search parameters for indexed modalities.
    pub hnsw: HnswParams,
}

impl Default for IndexParams {
    fn default() -> Self {
        Self {
            ann_threshold: 2048,
            hnsw: HnswParams::default(),
        }
    }
}

/// One modality's slice of the normalized row store.
struct ModalView<'a> {
    norms: &'a NormalizedRows,
    offset: usize,
    count: usize,
}

impl VectorSource for ModalView<'_> {
    fn len(&self) -> usize {
        self.count
    }
    fn vector(&self, i: u32) -> &[f32] {
        self.norms.row(self.offset + i as usize)
    }
}

/// Per-modality retrieval structure.
enum ModalIndex {
    /// Exact linear scan (small or forced-exact modalities).
    Exact,
    /// HNSW graph (built once at snapshot construction).
    Ann(HnswIndex),
}

/// A frozen, immutable view of one model generation, safe to share across
/// every query thread. Building one is the *only* expensive step of a
/// publish and happens off the query path.
pub struct Snapshot {
    model: TrainedModel,
    epoch: u64,
    norms: NormalizedRows,
    indexes: [ModalIndex; 4],
}

impl Snapshot {
    /// Freezes `model` under `params`, tagging it with `epoch` (the engine
    /// assigns monotonically increasing epochs at publish time).
    pub fn build(model: TrainedModel, params: &IndexParams, epoch: u64) -> Self {
        let _span = obs::span!("serve.snapshot.build");
        let norms = NormalizedRows::from_matrix(&model.store().centers);
        let space = *model.space();
        let indexes = NodeType::ALL.map(|ty| {
            let count = space.count(ty) as usize;
            if count == 0 || count < params.ann_threshold {
                ModalIndex::Exact
            } else {
                let view = ModalView {
                    norms: &norms,
                    offset: space.offset(ty) as usize,
                    count,
                };
                ModalIndex::Ann(HnswIndex::build(&view, params.hnsw))
            }
        });
        obs::counter("serve.snapshot.built").incr();
        Self {
            model,
            epoch,
            norms,
            indexes,
        }
    }

    /// The frozen model (hotspot assignment, vocabulary, raw vectors).
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The publish epoch this snapshot carries.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The unit-normalized center rows (global node ids).
    pub fn normalized(&self) -> &NormalizedRows {
        &self.norms
    }

    /// Whether `ty` is served by the ANN index (false = exact scan).
    pub fn is_ann(&self, ty: NodeType) -> bool {
        matches!(self.indexes[modality_slot(ty)], ModalIndex::Ann(_))
    }

    fn view(&self, ty: NodeType) -> ModalView<'_> {
        let space = self.model.space();
        ModalView {
            norms: &self.norms,
            offset: space.offset(ty) as usize,
            count: space.count(ty) as usize,
        }
    }

    /// Top-`k` vertices of `ty` by similarity to the **unit** query
    /// vector, most similar first, as `(global id, cosine)`. Served by the
    /// modality's index (ANN or exact).
    pub fn top_k(
        &self,
        ty: NodeType,
        unit_query: &[f32],
        k: usize,
        ef: Option<usize>,
        scratch: &mut SearchScratch,
    ) -> Vec<(NodeId, f64)> {
        let view = self.view(ty);
        if view.is_empty() {
            return Vec::new();
        }
        let local = match &self.indexes[modality_slot(ty)] {
            ModalIndex::Exact => exact_top_k(&view, unit_query, k, scratch),
            ModalIndex::Ann(index) => index.search(&view, unit_query, k, ef, scratch),
        };
        self.globalize(ty, local)
    }

    /// Exact (brute-force) top-`k` regardless of the index mode — the
    /// conformance reference for ANN answers.
    pub fn top_k_exact(
        &self,
        ty: NodeType,
        unit_query: &[f32],
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<(NodeId, f64)> {
        let view = self.view(ty);
        if view.is_empty() {
            return Vec::new();
        }
        let local = exact_top_k(&view, unit_query, k, scratch);
        self.globalize(ty, local)
    }

    fn globalize(&self, ty: NodeType, local: Vec<(u32, f64)>) -> Vec<(NodeId, f64)> {
        let off = self.model.space().offset(ty);
        local
            .into_iter()
            .map(|(i, sim)| (NodeId(off + i), sim))
            .collect()
    }
}

/// Array slot of a node type (mirrors `NodeType::ALL` order).
fn modality_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::Time => 0,
        NodeType::Location => 1,
        NodeType::Word => 2,
        NodeType::User => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use embed::math::normalize_into;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn model() -> TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(31)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        actor_core::fit(&corpus, &split.train, &ActorConfig::fast())
            .unwrap()
            .0
    }

    #[test]
    fn exact_top_k_matches_model_nearest_of_type() {
        let m = model();
        let snap = Snapshot::build(m.clone(), &IndexParams::default(), 1);
        let mut scratch = SearchScratch::new();
        let raw = m.vector(m.space().node(NodeType::Word, 3)).to_vec();
        let mut unit = vec![0.0f32; raw.len()];
        normalize_into(&raw, &mut unit);
        for ty in [NodeType::Word, NodeType::Location, NodeType::Time] {
            let ours = snap.top_k(ty, &unit, 5, None, &mut scratch);
            let reference = m.nearest_of_type(&raw, ty, 5);
            assert_eq!(
                ours.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
                reference.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
                "{ty:?}"
            );
            for (a, b) in ours.iter().zip(&reference) {
                assert!((a.1 - b.1).abs() < 1e-5, "{} vs {}", a.1, b.1);
            }
        }
    }

    #[test]
    fn forced_ann_still_finds_the_query_node_itself(){
        let m = model();
        let forced = IndexParams {
            ann_threshold: 0,
            ..IndexParams::default()
        };
        let snap = Snapshot::build(m.clone(), &forced, 2);
        assert!(snap.is_ann(NodeType::Word));
        let mut scratch = SearchScratch::new();
        let node = m.space().node(NodeType::Word, 7);
        let raw = m.vector(node).to_vec();
        let mut unit = vec![0.0f32; raw.len()];
        normalize_into(&raw, &mut unit);
        let top = snap.top_k(NodeType::Word, &unit, 3, None, &mut scratch);
        assert_eq!(top[0].0, node);
        assert!((top[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_is_frozen_against_later_model_mutation() {
        let m = model();
        let snap = Snapshot::build(m.clone(), &IndexParams::default(), 3);
        let mut scratch = SearchScratch::new();
        let raw = m.vector(m.space().node(NodeType::Word, 0)).to_vec();
        let mut unit = vec![0.0f32; raw.len()];
        normalize_into(&raw, &mut unit);
        let before = snap.top_k(NodeType::Word, &unit, 5, None, &mut scratch);
        // `build` cloned the model; mutating the original must not leak in.
        drop(m);
        let after = snap.top_k(NodeType::Word, &unit, 5, None, &mut scratch);
        assert_eq!(
            before.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            after.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
        assert_eq!(snap.epoch(), 3);
    }
}
