//! Immutable serving snapshots: frozen rows + per-modality ANN indexes.
//!
//! A [`Snapshot`] is everything one query needs, frozen at publish time:
//! the shared [`ModelArtifacts`] (hotspot assignment, vocabulary — one
//! `Arc`, never copied), a raw copy of every center row (query vectors are
//! built from *raw* embeddings, §6.2.1), a unit-normalized copy of the
//! same rows ([`embed::NormalizedRows`]) for ranking, and one index per
//! node type so a modality-filtered top-k (`words` / `times` / `places`)
//! never scans the other modalities. Small modalities keep the exact
//! linear scan — below [`IndexParams::ann_threshold`] elements a scan
//! beats an HNSW walk and is exact for free; large modalities get an HNSW
//! graph.
//!
//! Snapshots come in two flavors: [`Snapshot::build`] freezes a model from
//! scratch, and [`Snapshot::apply_delta`] re-freezes only the rows a
//! [`StoreDelta`] says changed since the previous snapshot — clean rows
//! (raw and normalized) are carried over bit-identically and dirty nodes
//! are re-inserted into the previous HNSW graphs in place, which is what
//! makes a streaming publish cost proportional to the drift, not the
//! model.

use std::sync::Arc;
use std::time::Instant;

use actor_core::{ModelArtifacts, StoreDelta, TrainedModel};
use embed::math::mean_of;
use embed::NormalizedRows;
use mobility::KeywordId;
use stgraph::{NodeId, NodeType};

use crate::hnsw::{exact_top_k, HnswIndex, HnswParams, SearchScratch, VectorSource};

/// Index-build policy for snapshots.
#[derive(Debug, Clone, Copy)]
pub struct IndexParams {
    /// Modalities with at least this many units get an HNSW index;
    /// smaller ones use the exact scan (which is both faster and exact at
    /// that size). Set to 0 to force ANN everywhere (conformance tests),
    /// `usize::MAX` to force exact everywhere (reference behavior).
    pub ann_threshold: usize,
    /// Ceiling on the per-modality dirty fraction a delta apply will
    /// patch incrementally; above it the modality's HNSW graph is rebuilt
    /// from scratch instead (rebuilding is cheaper than re-inserting most
    /// of the elements, and yields a fresher graph).
    pub rebuild_fraction: f64,
    /// HNSW construction/search parameters for indexed modalities.
    pub hnsw: HnswParams,
}

impl Default for IndexParams {
    fn default() -> Self {
        Self {
            ann_threshold: 2048,
            rebuild_fraction: 0.3,
            hnsw: HnswParams::default(),
        }
    }
}

/// One modality's slice of the normalized row store.
struct ModalView<'a> {
    norms: &'a NormalizedRows,
    offset: usize,
    count: usize,
}

impl VectorSource for ModalView<'_> {
    fn len(&self) -> usize {
        self.count
    }
    fn vector(&self, i: u32) -> &[f32] {
        self.norms.row(self.offset + i as usize)
    }
}

/// Per-modality retrieval structure.
#[derive(Clone)]
enum ModalIndex {
    /// Exact linear scan (small or forced-exact modalities).
    Exact,
    /// HNSW graph (built at snapshot construction, patched by deltas).
    Ann(HnswIndex),
}

/// A frozen, immutable view of one model generation, safe to share across
/// every query thread. Building one is the *only* expensive step of a
/// publish and happens off the query path.
pub struct Snapshot {
    artifacts: Arc<ModelArtifacts>,
    epoch: u64,
    dim: usize,
    /// Frozen raw center rows (row-major, global node order) — the source
    /// for query-vector construction.
    raw: Vec<f32>,
    /// Unit-normalized copies of the same rows — the source for ranking.
    norms: NormalizedRows,
    indexes: [ModalIndex; 4],
}

impl Snapshot {
    /// Freezes `model` under `params`, tagging it with `epoch` (the engine
    /// assigns monotonically increasing epochs at publish time). The model
    /// is borrowed: only its center rows are copied, and the artifacts are
    /// shared through their `Arc`.
    pub fn build(model: &TrainedModel, params: &IndexParams, epoch: u64) -> Self {
        let _span = obs::span!("serve.snapshot.build");
        let store = model.store();
        let (n, dim) = (store.n_nodes(), store.dim());
        // Copy raw rows first, then normalize from the frozen copy, so the
        // two views agree row-for-row even if a hogwild trainer is still
        // writing to the live store.
        let mut raw = Vec::with_capacity(n * dim);
        for i in 0..n {
            raw.extend_from_slice(store.centers.row(i));
        }
        let norms = NormalizedRows::from_flat(&raw, dim);
        let artifacts = Arc::clone(model.artifacts());
        let space = *artifacts.space();
        let indexes = NodeType::ALL.map(|ty| {
            let count = space.count(ty) as usize;
            if count == 0 || count < params.ann_threshold {
                ModalIndex::Exact
            } else {
                let view = ModalView {
                    norms: &norms,
                    offset: space.offset(ty) as usize,
                    count,
                };
                ModalIndex::Ann(HnswIndex::build(&view, params.hnsw))
            }
        });
        obs::counter("serve.snapshot.built").incr();
        Self {
            artifacts,
            epoch,
            dim,
            raw,
            norms,
            indexes,
        }
    }

    /// The incremental publish path: produces the next snapshot from
    /// `prev` by re-freezing only the center rows `delta` marks dirty.
    /// Clean rows — raw and normalized — are carried over bit-identically,
    /// and each dirty node is re-inserted into the previous HNSW graph
    /// ([`HnswIndex::update_row`]); a modality whose dirty fraction
    /// exceeds [`IndexParams::rebuild_fraction`] is rebuilt from scratch
    /// instead.
    ///
    /// Falls back to a full [`Snapshot::build`] when the model does not
    /// descend from `prev` — different artifact `Arc` (a new training
    /// run) or a different store shape. Context rows in the delta are
    /// ignored: serving reads center rows only.
    pub fn apply_delta(
        prev: &Snapshot,
        model: &TrainedModel,
        delta: &StoreDelta,
        params: &IndexParams,
        epoch: u64,
    ) -> Self {
        let store = model.store();
        if !Arc::ptr_eq(&prev.artifacts, model.artifacts())
            || store.dim() != prev.dim
            || store.n_nodes() * store.dim() != prev.raw.len()
        {
            return Self::build(model, params, epoch);
        }
        let started = Instant::now();
        let _span = obs::span!("serve.snapshot.apply");
        let dim = prev.dim;
        let mut raw = prev.raw.clone();
        for &r in &delta.centers {
            let i = r as usize;
            raw[i * dim..(i + 1) * dim].copy_from_slice(store.centers.row(i));
        }
        let mut norms = prev.norms.clone();
        norms.refresh_rows_from_flat(&raw, &delta.centers);

        let space = *prev.artifacts.space();
        let mut scratch = SearchScratch::new();
        let indexes = NodeType::ALL.map(|ty| {
            let offset = space.offset(ty) as usize;
            let count = space.count(ty) as usize;
            match &prev.indexes[modality_slot(ty)] {
                ModalIndex::Exact => ModalIndex::Exact,
                ModalIndex::Ann(index) => {
                    let dirty: Vec<u32> = delta
                        .centers
                        .iter()
                        .map(|&r| r as usize)
                        .filter(|&r| r >= offset && r < offset + count)
                        .map(|r| (r - offset) as u32)
                        .collect();
                    let view = ModalView {
                        norms: &norms,
                        offset,
                        count,
                    };
                    if dirty.len() as f64 > params.rebuild_fraction * count as f64 {
                        ModalIndex::Ann(HnswIndex::build(&view, params.hnsw))
                    } else {
                        let mut index = index.clone();
                        for &id in &dirty {
                            index.update_row(&view, id, &mut scratch);
                        }
                        ModalIndex::Ann(index)
                    }
                }
            }
        });
        obs::counter("serve.snapshot.applied").incr();
        obs::histogram("serve.snapshot.apply_ms").record(started.elapsed().as_millis() as u64);
        Self {
            artifacts: Arc::clone(&prev.artifacts),
            epoch,
            dim,
            raw,
            norms,
            indexes,
        }
    }

    /// The shared immutable artifacts (node layout, hotspots, vocabulary).
    pub fn artifacts(&self) -> &Arc<ModelArtifacts> {
        &self.artifacts
    }

    /// The publish epoch this snapshot carries.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Row width of the frozen embeddings.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The unit-normalized center rows (global node ids).
    pub fn normalized(&self) -> &NormalizedRows {
        &self.norms
    }

    /// The frozen raw center vector of a graph vertex.
    pub fn vector(&self, node: NodeId) -> &[f32] {
        let i = node.idx();
        &self.raw[i * self.dim..(i + 1) * self.dim]
    }

    /// Mean raw center vector of a bag of keywords (mirrors
    /// [`TrainedModel::text_vector`] over the frozen rows).
    pub fn text_vector(&self, words: &[KeywordId]) -> Vec<f32> {
        let rows: Vec<&[f32]> = words
            .iter()
            .map(|w| self.vector(self.artifacts.word_node(*w)))
            .collect();
        mean_of(&rows, self.dim)
    }

    /// Mean of the given vectors: the §6.2.1 query representation when
    /// several modalities are observed.
    pub fn query_vector(&self, parts: &[&[f32]]) -> Vec<f32> {
        mean_of(parts, self.dim)
    }

    /// Whether `ty` is served by the ANN index (false = exact scan).
    pub fn is_ann(&self, ty: NodeType) -> bool {
        matches!(self.indexes[modality_slot(ty)], ModalIndex::Ann(_))
    }

    fn view(&self, ty: NodeType) -> ModalView<'_> {
        let space = self.artifacts.space();
        ModalView {
            norms: &self.norms,
            offset: space.offset(ty) as usize,
            count: space.count(ty) as usize,
        }
    }

    /// Top-`k` vertices of `ty` by similarity to the **unit** query
    /// vector, most similar first, as `(global id, cosine)`. Served by the
    /// modality's index (ANN or exact).
    pub fn top_k(
        &self,
        ty: NodeType,
        unit_query: &[f32],
        k: usize,
        ef: Option<usize>,
        scratch: &mut SearchScratch,
    ) -> Vec<(NodeId, f64)> {
        let view = self.view(ty);
        if view.is_empty() {
            return Vec::new();
        }
        let local = match &self.indexes[modality_slot(ty)] {
            ModalIndex::Exact => exact_top_k(&view, unit_query, k, scratch),
            ModalIndex::Ann(index) => index.search(&view, unit_query, k, ef, scratch),
        };
        self.globalize(ty, local)
    }

    /// Exact (brute-force) top-`k` regardless of the index mode — the
    /// conformance reference for ANN answers.
    pub fn top_k_exact(
        &self,
        ty: NodeType,
        unit_query: &[f32],
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<(NodeId, f64)> {
        let view = self.view(ty);
        if view.is_empty() {
            return Vec::new();
        }
        let local = exact_top_k(&view, unit_query, k, scratch);
        self.globalize(ty, local)
    }

    fn globalize(&self, ty: NodeType, local: Vec<(u32, f64)>) -> Vec<(NodeId, f64)> {
        let off = self.artifacts.space().offset(ty);
        local
            .into_iter()
            .map(|(i, sim)| (NodeId(off + i), sim))
            .collect()
    }
}

/// Array slot of a node type (mirrors `NodeType::ALL` order).
fn modality_slot(ty: NodeType) -> usize {
    ty.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use embed::math::normalize_into;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn model() -> TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(31)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        actor_core::fit(&corpus, &split.train, &ActorConfig::fast())
            .unwrap()
            .0
    }

    #[test]
    fn exact_top_k_matches_model_nearest_of_type() {
        let m = model();
        let snap = Snapshot::build(&m, &IndexParams::default(), 1);
        let mut scratch = SearchScratch::new();
        let raw = m.vector(m.space().node(NodeType::Word, 3)).to_vec();
        let mut unit = vec![0.0f32; raw.len()];
        normalize_into(&raw, &mut unit);
        for ty in [NodeType::Word, NodeType::Location, NodeType::Time] {
            let ours = snap.top_k(ty, &unit, 5, None, &mut scratch);
            let reference = m.nearest_of_type(&raw, ty, 5);
            assert_eq!(
                ours.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
                reference.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
                "{ty:?}"
            );
            for (a, b) in ours.iter().zip(&reference) {
                assert!((a.1 - b.1).abs() < 1e-5, "{} vs {}", a.1, b.1);
            }
        }
    }

    #[test]
    fn forced_ann_still_finds_the_query_node_itself() {
        let m = model();
        let forced = IndexParams {
            ann_threshold: 0,
            ..IndexParams::default()
        };
        let snap = Snapshot::build(&m, &forced, 2);
        assert!(snap.is_ann(NodeType::Word));
        let mut scratch = SearchScratch::new();
        let node = m.space().node(NodeType::Word, 7);
        let raw = m.vector(node).to_vec();
        let mut unit = vec![0.0f32; raw.len()];
        normalize_into(&raw, &mut unit);
        let top = snap.top_k(NodeType::Word, &unit, 3, None, &mut scratch);
        assert_eq!(top[0].0, node);
        assert!((top[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn snapshot_is_frozen_against_later_model_mutation() {
        let mut m = model();
        let snap = Snapshot::build(&m, &IndexParams::default(), 3);
        let mut scratch = SearchScratch::new();
        let node = m.space().node(NodeType::Word, 0);
        let raw = m.vector(node).to_vec();
        let mut unit = vec![0.0f32; raw.len()];
        normalize_into(&raw, &mut unit);
        let before = snap.top_k(NodeType::Word, &unit, 5, None, &mut scratch);
        // `build` copied the rows; mutating the original must not leak in.
        m.store_mut().centers.row_mut(node.idx()).fill(7.0);
        let after = snap.top_k(NodeType::Word, &unit, 5, None, &mut scratch);
        assert_eq!(
            before.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            after.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
        assert_eq!(snap.epoch(), 3);
        assert!(Arc::ptr_eq(snap.artifacts(), m.artifacts()));
    }

    #[test]
    fn apply_delta_refreshes_dirty_rows_and_keeps_clean_rows_bit_identical() {
        let mut m = model();
        let snap = Snapshot::build(&m, &IndexParams::default(), 1);
        let sync = m.store().close_generation();
        let node = m.space().node(NodeType::Word, 2);
        m.store_mut().centers.row_mut(node.idx()).fill(0.25);
        let delta = m.store().drain_dirty(sync);
        assert_eq!(delta.centers, vec![node.idx() as u32]);

        let next = Snapshot::apply_delta(&snap, &m, &delta, &IndexParams::default(), 2);
        assert_eq!(next.epoch(), 2);
        // The dirty row tracks the live store...
        assert_eq!(next.vector(node), m.vector(node));
        assert_ne!(snap.vector(node), next.vector(node));
        // ...and every clean row is bit-identical to the previous snapshot,
        // raw and normalized.
        for i in 0..m.space().len() {
            if i == node.idx() {
                continue;
            }
            assert_eq!(snap.vector(NodeId(i as u32)), next.vector(NodeId(i as u32)));
            assert_eq!(snap.normalized().row(i), next.normalized().row(i));
        }
    }

    #[test]
    fn apply_delta_falls_back_to_full_build_for_foreign_models() {
        let m = model();
        let snap = Snapshot::build(&m, &IndexParams::default(), 1);
        // A second fit: same corpus shape, different artifact Arc.
        let other = model();
        assert!(!Arc::ptr_eq(m.artifacts(), other.artifacts()));
        let delta = other.store().drain_dirty(0);
        let next = Snapshot::apply_delta(&snap, &other, &delta, &IndexParams::default(), 2);
        assert!(Arc::ptr_eq(next.artifacts(), other.artifacts()));
        assert_eq!(next.vector(NodeId(0)), other.vector(NodeId(0)));
    }
}
