//! From-scratch HNSW approximate nearest-neighbor index over unit vectors.
//!
//! Hierarchical Navigable Small World graphs (Malkov & Yashunin 2016):
//! every element gets a geometrically distributed top layer; upper layers
//! form coarse "express lanes" that greedy search descends, and layer 0
//! holds a denser graph searched with a best-first beam of width `ef`.
//! Search cost is `O(ef · M · log n)` distance evaluations against the
//! `O(n)` of a brute-force scan — the difference between serving a top-10
//! query in microseconds and in milliseconds once a modality holds tens of
//! thousands of units.
//!
//! Vectors are **unit-normalized by the caller** (see
//! [`embed::NormalizedRows`]); similarity is therefore the plain dot
//! product ([`embed::math::dot_unit`]), shared with the exact scan so ANN
//! and brute-force results are directly comparable. The index stores only
//! adjacency — vectors stay in the snapshot's normalized view and are
//! passed to every operation through [`VectorSource`], keeping one copy of
//! the data regardless of how many structures rank against it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use embed::math::dot_unit;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Read access to the vector set an index was built over. Implementors
/// must hand the *same* vectors to `build` and every later search; the
/// index stores adjacency only and never copies vector data.
pub trait VectorSource {
    /// Number of vectors.
    fn len(&self) -> usize;
    /// True when the source holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The unit-normalized vector with local id `i`.
    fn vector(&self, i: u32) -> &[f32];
}

/// A flat owned vector set; the simplest [`VectorSource`] (benches, tests).
pub struct FlatVectors {
    data: Vec<f32>,
    dim: usize,
}

impl FlatVectors {
    /// Wraps row-major `data` of width `dim`.
    pub fn new(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "ragged vector data");
        Self { data, dim }
    }

    /// Overwrites vector `i` (tests and benches simulating drift).
    pub fn set(&mut self, i: u32, row: &[f32]) {
        let i = i as usize;
        self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(row);
    }
}

impl VectorSource for FlatVectors {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }
    fn vector(&self, i: u32) -> &[f32] {
        let i = i as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// HNSW construction and search parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnswParams {
    /// Max neighbors per element on layers ≥ 1 (layer 0 keeps `2·m`).
    pub m: usize,
    /// Beam width while inserting (`efConstruction`).
    pub ef_construction: usize,
    /// Default beam width while searching (`ef`); raise for recall, lower
    /// for speed. Clamped up to `k` per query.
    pub ef_search: usize,
    /// Seed for the geometric layer assignment — builds are deterministic.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0x5EED_AC70,
        }
    }
}

/// `(similarity, id)` with a total order: by similarity, ties by id, so
/// heap behavior is deterministic. Similarities must be finite (unit
/// vectors guarantee it).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    sim: f64,
    id: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .expect("finite similarity")
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-thread search state: the visited-set stamps and both
/// beam heaps. Reusing it across queries removes every per-query
/// allocation from the hot path (the satellite fix for `eval::neighbor`'s
/// per-call candidate rebuilds).
pub struct SearchScratch {
    /// `visited[i] == stamp` marks node `i` seen in the current search.
    visited: Vec<u32>,
    stamp: u32,
    /// Best-first frontier (max-heap by similarity).
    frontier: BinaryHeap<Scored>,
    /// Current beam (min-heap by similarity via `Reverse`).
    beam: BinaryHeap<std::cmp::Reverse<Scored>>,
    /// Staging for results and neighbor selection.
    out: Vec<Scored>,
}

impl SearchScratch {
    /// Fresh scratch; grows lazily to the largest index it serves.
    pub fn new() -> Self {
        Self {
            visited: Vec::new(),
            stamp: 0,
            frontier: BinaryHeap::new(),
            beam: BinaryHeap::new(),
            out: Vec::new(),
        }
    }

    /// Starts a new visited epoch over `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        if self.stamp == u32::MAX {
            self.visited.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.frontier.clear();
        self.beam.clear();
        self.out.clear();
    }

    /// Marks `id` visited; returns true the first time.
    #[inline]
    fn first_visit(&mut self, id: u32) -> bool {
        let slot = &mut self.visited[id as usize];
        if *slot == self.stamp {
            false
        } else {
            *slot = self.stamp;
            true
        }
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The index proper: per-layer adjacency plus the entry point.
#[derive(Clone)]
pub struct HnswIndex {
    params: HnswParams,
    /// Top layer of each element.
    levels: Vec<u8>,
    /// `layers[l][node]` = neighbor ids of `node` on layer `l`.
    layers: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
}

impl HnswIndex {
    /// Builds the index over every vector of `vecs` (deterministic for a
    /// fixed seed). Single-threaded; building happens off the query path
    /// at snapshot-publish time.
    pub fn build(vecs: &impl VectorSource, params: HnswParams) -> Self {
        assert!(!vecs.is_empty(), "cannot index an empty vector set");
        assert!(params.m >= 2, "HNSW needs m >= 2");
        let n = vecs.len();
        let mut rng = StdRng::seed_from_u64(params.seed);
        // Geometric layer assignment: P(level >= l) = (1/m)^l.
        let mult = 1.0 / (params.m as f64).ln();
        let levels: Vec<u8> = (0..n)
            .map(|_| {
                let u: f64 = rng.random::<f64>();
                ((-u.max(1e-300).ln() * mult).floor() as usize).min(31) as u8
            })
            .collect();
        let top = *levels.iter().max().expect("non-empty") as usize;
        let mut index = Self {
            params,
            levels,
            layers: (0..=top).map(|_| vec![Vec::new(); n]).collect(),
            entry: 0,
            max_level: 0,
        };
        let mut scratch = SearchScratch::new();
        index.max_level = index.levels[0] as usize;
        for id in 1..n as u32 {
            index.insert(vecs, id, &mut scratch);
        }
        index
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the index holds no elements (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    fn cap(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    fn insert(&mut self, vecs: &impl VectorSource, id: u32, scratch: &mut SearchScratch) {
        let level = self.levels[id as usize] as usize;
        let q = vecs.vector(id);
        let mut ep = self.entry;
        // Greedy descent through layers above the element's top layer.
        for l in ((level + 1)..=self.max_level).rev() {
            ep = self.greedy_step(vecs, q, ep, l);
        }
        // Beam search and bidirectional linking on the element's layers.
        for l in (0..=level.min(self.max_level)).rev() {
            let beam = self.search_layer(vecs, q, ep, self.params.ef_construction, l, scratch);
            ep = beam.first().map_or(ep, |s| s.id);
            let chosen = select_neighbors(vecs, beam, self.cap(l));
            for &nb in &chosen {
                self.layers[l][id as usize].push(nb);
                self.layers[l][nb as usize].push(id);
                self.prune(vecs, nb, l);
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    /// Re-selects `node`'s neighbor list on `layer` down to its cap using
    /// the same diversity heuristic as insertion.
    fn prune(&mut self, vecs: &impl VectorSource, node: u32, layer: usize) {
        let cap = self.cap(layer);
        if self.layers[layer][node as usize].len() <= cap {
            return;
        }
        let list = std::mem::take(&mut self.layers[layer][node as usize]);
        let v = vecs.vector(node);
        let scored: Vec<Scored> = list
            .into_iter()
            .map(|nb| Scored {
                sim: dot_unit(v, vecs.vector(nb)),
                id: nb,
            })
            .collect();
        self.layers[layer][node as usize] = select_neighbors(vecs, scored, cap);
    }

    /// One greedy hill-climb on `layer` starting from `ep`.
    fn greedy_step(&self, vecs: &impl VectorSource, q: &[f32], mut ep: u32, layer: usize) -> u32 {
        let mut best = dot_unit(q, vecs.vector(ep));
        loop {
            let mut improved = false;
            for &nb in &self.layers[layer][ep as usize] {
                let sim = dot_unit(q, vecs.vector(nb));
                if sim > best {
                    best = sim;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Best-first beam search on one layer; returns up to `ef` results
    /// sorted most-similar first (staged in `scratch.out`).
    fn search_layer(
        &self,
        vecs: &impl VectorSource,
        q: &[f32],
        ep: u32,
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Scored> {
        scratch.begin(self.len());
        scratch.first_visit(ep);
        let seed = Scored {
            sim: dot_unit(q, vecs.vector(ep)),
            id: ep,
        };
        scratch.frontier.push(seed);
        scratch.beam.push(std::cmp::Reverse(seed));
        while let Some(c) = scratch.frontier.pop() {
            let worst = scratch.beam.peek().expect("beam non-empty").0.sim;
            if c.sim < worst && scratch.beam.len() >= ef {
                break;
            }
            for &nb in &self.layers[layer][c.id as usize] {
                if !scratch.first_visit(nb) {
                    continue;
                }
                let sim = dot_unit(q, vecs.vector(nb));
                let worst = scratch.beam.peek().expect("beam non-empty").0.sim;
                if scratch.beam.len() < ef || sim > worst {
                    let s = Scored { sim, id: nb };
                    scratch.frontier.push(s);
                    scratch.beam.push(std::cmp::Reverse(s));
                    if scratch.beam.len() > ef {
                        scratch.beam.pop();
                    }
                }
            }
        }
        let mut out: Vec<Scored> = scratch.beam.drain().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// Re-indexes element `id` after its vector changed in place: unlinks
    /// it from every layer it lives on, then re-inserts it at its original
    /// level against the *current* contents of `vecs`. This is the delta
    /// counterpart of [`HnswIndex::build`] — re-inserting a handful of
    /// drifted rows costs `O(dirty · ef · M · log n)` where a rebuild costs
    /// that for *every* element.
    ///
    /// The level assignment is kept (it is a property of the id, not the
    /// vector), so repeated updates never degrade the layer distribution.
    pub fn update_row(&mut self, vecs: &impl VectorSource, id: u32, scratch: &mut SearchScratch) {
        assert_eq!(vecs.len(), self.len(), "vector set changed size");
        assert!((id as usize) < self.len(), "id out of range");
        if self.len() <= 1 {
            return; // a single element has no adjacency to fix
        }
        // Unlink: drop the element's own lists and every backlink to it.
        let level = self.levels[id as usize] as usize;
        for l in 0..=level.min(self.layers.len() - 1) {
            let old = std::mem::take(&mut self.layers[l][id as usize]);
            for nb in old {
                self.layers[l][nb as usize].retain(|&x| x != id);
            }
        }
        // If the element was the entry point, hand the role to the
        // highest-leveled other element before descending through it.
        if self.entry == id {
            let mut best = if id == 0 { 1u32 } else { 0u32 };
            for (i, &lv) in self.levels.iter().enumerate() {
                let i = i as u32;
                if i != id && lv > self.levels[best as usize] {
                    best = i;
                }
            }
            self.entry = best;
            self.max_level = self.levels[best as usize] as usize;
        }
        self.insert(vecs, id, scratch);
    }

    /// Top-`k` most similar elements to the unit vector `q`, most similar
    /// first, as `(local id, similarity)`. `ef_override` widens/narrows
    /// the layer-0 beam (`None` = the build-time default).
    pub fn search(
        &self,
        vecs: &impl VectorSource,
        q: &[f32],
        k: usize,
        ef_override: Option<usize>,
        scratch: &mut SearchScratch,
    ) -> Vec<(u32, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let ef = ef_override.unwrap_or(self.params.ef_search).max(k);
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_step(vecs, q, ep, l);
        }
        let beam = self.search_layer(vecs, q, ep, ef, 0, scratch);
        beam.into_iter().take(k).map(|s| (s.id, s.sim)).collect()
    }
}

/// Diverse neighbor selection (Malkov & Yashunin, Algorithm 4): walking
/// candidates best-first, keep one only if it is more similar to the
/// target than to every neighbor already kept, then backfill remaining
/// slots with the best rejected candidates (`keepPrunedConnections`).
///
/// Plain "keep the cap most similar" disconnects clustered data — every
/// edge bridging two clusters gets pruned in favor of intra-cluster edges
/// and whole clusters become unreachable from the entry point. The
/// diversity condition keeps exactly those bridges.
fn select_neighbors(vecs: &impl VectorSource, mut candidates: Vec<Scored>, cap: usize) -> Vec<u32> {
    candidates.sort_by(|a, b| b.cmp(a));
    candidates.dedup_by_key(|s| s.id);
    let mut kept: Vec<u32> = Vec::with_capacity(cap);
    let mut rejected: Vec<u32> = Vec::new();
    for c in candidates {
        if kept.len() >= cap {
            break;
        }
        let cv = vecs.vector(c.id);
        let diverse = kept.iter().all(|&r| dot_unit(cv, vecs.vector(r)) < c.sim);
        if diverse {
            kept.push(c.id);
        } else {
            rejected.push(c.id);
        }
    }
    for id in rejected {
        if kept.len() >= cap {
            break;
        }
        kept.push(id);
    }
    kept
}

/// Exact top-`k` by linear scan over `vecs` — the brute-force reference
/// the ANN path is measured against, sharing the same [`dot_unit`] kernel.
pub fn exact_top_k(
    vecs: &impl VectorSource,
    q: &[f32],
    k: usize,
    scratch: &mut SearchScratch,
) -> Vec<(u32, f64)> {
    if k == 0 || vecs.is_empty() {
        return Vec::new();
    }
    scratch.beam.clear();
    for i in 0..vecs.len() as u32 {
        let s = Scored {
            sim: dot_unit(q, vecs.vector(i)),
            id: i,
        };
        if scratch.beam.len() < k {
            scratch.beam.push(std::cmp::Reverse(s));
        } else if s > scratch.beam.peek().expect("non-empty").0 {
            scratch.beam.pop();
            scratch.beam.push(std::cmp::Reverse(s));
        }
    }
    let mut out: Vec<Scored> = scratch.beam.drain().map(|r| r.0).collect();
    out.sort_by(|a, b| b.cmp(a));
    out.into_iter().map(|s| (s.id, s.sim)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use embed::math::normalize_into;

    /// Clustered unit vectors: `n` points around `n_clusters` random
    /// centers — the shape real embedding spaces take.
    fn clustered(n: usize, dim: usize, n_clusters: usize, seed: u64) -> FlatVectors {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centers = vec![0.0f32; n_clusters * dim];
        for x in centers.iter_mut() {
            *x = rng.random_range(-1.0f32..1.0);
        }
        let mut data = vec![0.0f32; n * dim];
        let mut raw = vec![0.0f32; dim];
        for i in 0..n {
            let c = i % n_clusters;
            for d in 0..dim {
                raw[d] = centers[c * dim + d] + rng.random_range(-0.15f32..0.15);
            }
            normalize_into(&raw, &mut data[i * dim..(i + 1) * dim]);
        }
        FlatVectors::new(data, dim)
    }

    #[test]
    fn exact_top_k_is_sorted_and_correct() {
        let vecs = clustered(200, 16, 10, 1);
        let mut scratch = SearchScratch::new();
        let q = vecs.vector(7).to_vec();
        let top = exact_top_k(&vecs, &q, 5, &mut scratch);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].0, 7, "a vector's own nearest neighbor is itself");
        assert!((top[0].1 - 1.0).abs() < 1e-5);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn hnsw_matches_exact_on_small_sets() {
        let vecs = clustered(300, 16, 12, 2);
        let index = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        for probe in [0u32, 33, 150, 299] {
            let q = vecs.vector(probe).to_vec();
            let ann = index.search(&vecs, &q, 5, Some(300), &mut scratch);
            let exact = exact_top_k(&vecs, &q, 5, &mut scratch);
            // With ef >= n the beam covers the reachable graph; top-1 must
            // be the probe itself.
            assert_eq!(ann[0].0, probe);
            assert_eq!(ann[0].0, exact[0].0);
        }
    }

    #[test]
    fn hnsw_recall_on_clustered_vectors() {
        let vecs = clustered(3000, 32, 60, 3);
        let index = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        let mut hit = 0usize;
        let mut total = 0usize;
        for probe in (0..3000u32).step_by(61) {
            let q = vecs.vector(probe).to_vec();
            let ann: Vec<u32> = index
                .search(&vecs, &q, 10, None, &mut scratch)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let exact: Vec<u32> = exact_top_k(&vecs, &q, 10, &mut scratch)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            total += exact.len();
            hit += exact.iter().filter(|i| ann.contains(i)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.95, "recall@10 = {recall:.3}");
    }

    #[test]
    fn builds_are_deterministic() {
        let vecs = clustered(500, 16, 20, 4);
        let a = HnswIndex::build(&vecs, HnswParams::default());
        let b = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        let q = vecs.vector(123).to_vec();
        assert_eq!(
            a.search(&vecs, &q, 10, None, &mut scratch),
            b.search(&vecs, &q, 10, None, &mut scratch)
        );
    }

    #[test]
    fn single_element_index_works() {
        let vecs = clustered(1, 8, 1, 5);
        let index = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        let q = vecs.vector(0).to_vec();
        let top = index.search(&vecs, &q, 3, None, &mut scratch);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, 0);
    }

    #[test]
    fn update_row_tracks_a_moved_vector() {
        let mut vecs = clustered(800, 16, 10, 7);
        let mut index = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        // Move element 5 on top of element 700 (a different cluster).
        let dest = vecs.vector(700).to_vec();
        vecs.set(5, &dest);
        index.update_row(&vecs, 5, &mut scratch);
        let top: Vec<u32> = index
            .search(&vecs, &dest, 5, Some(200), &mut scratch)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert!(top.contains(&5), "moved element reachable at its new home");
        assert!(top.contains(&700));
        // The stale neighborhood no longer surfaces it.
        let old_home = vecs.vector(15).to_vec(); // same original cluster as 5
        let near_old: Vec<u32> = index
            .search(&vecs, &old_home, 10, Some(200), &mut scratch)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert!(!near_old.contains(&5));
    }

    #[test]
    fn update_row_on_the_entry_point_keeps_the_index_searchable() {
        let vecs = clustered(300, 16, 6, 8);
        let mut index = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        let entry = index.entry;
        index.update_row(&vecs, entry, &mut scratch);
        for probe in [0u32, 99, 299] {
            let q = vecs.vector(probe).to_vec();
            let top = index.search(&vecs, &q, 3, Some(300), &mut scratch);
            assert_eq!(top[0].0, probe, "entry handoff broke reachability");
        }
    }

    #[test]
    fn updated_index_keeps_recall_against_exact() {
        let mut vecs = clustered(2000, 32, 40, 9);
        let mut index = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        let mut rng = StdRng::seed_from_u64(10);
        // Drift 2% of the elements to random other clusters.
        for _ in 0..40 {
            let id = rng.random_range(0..2000u32);
            let src = rng.random_range(0..2000u32);
            let moved: Vec<f32> = vecs.vector(src).to_vec();
            vecs.set(id, &moved);
            index.update_row(&vecs, id, &mut scratch);
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for probe in (0..2000u32).step_by(67) {
            let q = vecs.vector(probe).to_vec();
            let ann: Vec<u32> = index
                .search(&vecs, &q, 10, None, &mut scratch)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let exact: Vec<u32> = exact_top_k(&vecs, &q, 10, &mut scratch)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            total += exact.len();
            hit += exact.iter().filter(|i| ann.contains(i)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "post-update recall@10 = {recall:.3}");
    }

    #[test]
    fn scratch_reuse_is_clean_across_queries() {
        let vecs = clustered(400, 16, 8, 6);
        let index = HnswIndex::build(&vecs, HnswParams::default());
        let mut scratch = SearchScratch::new();
        let first = {
            let q = vecs.vector(11).to_vec();
            index.search(&vecs, &q, 5, None, &mut scratch)
        };
        // Interleave a different query, then repeat the first.
        let q2 = vecs.vector(250).to_vec();
        let _ = index.search(&vecs, &q2, 5, None, &mut scratch);
        let q = vecs.vector(11).to_vec();
        assert_eq!(index.search(&vecs, &q, 5, None, &mut scratch), first);
    }
}
