//! The query engine: planner + snapshot cell + cache, behind one handle.
//!
//! A [`QueryEngine`] is cheap to share (`Arc` it across however many
//! worker threads the server runs) and wholly lock-free on the query hot
//! path: snapshot access is an epoch-checked thread-local read
//! ([`crate::swap::SnapshotCell`]), search scratch is thread-local, and
//! the cache touches one shard mutex for a few nanoseconds.
//!
//! Publishing a new model generation — from online streaming updates, a
//! restored checkpoint, or a fresh training run — is [`QueryEngine::publish`];
//! the engine also implements [`actor_core::ModelSink`], so it can be
//! handed directly to `fit_with_sink` / `OnlineActor::attach_sink` and
//! receive generations as training produces them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use actor_core::{ModelSink, StoreDelta, TrainedModel};
use embed::math::normalize_into;
use mobility::{GeoPoint, KeywordId};
use stgraph::{NodeId, NodeType};

use crate::cache::{CacheKey, QueryCache};
use crate::hnsw::SearchScratch;
use crate::query::{QueryError, QueryKind, QueryRequest, QueryResponse};
use crate::snapshot::{IndexParams, Snapshot};
use crate::swap::SnapshotCell;

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineParams {
    /// Index-build policy for published snapshots.
    pub index: IndexParams,
    /// Total query-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (lock granularity).
    pub cache_shards: usize,
}

impl Default for EngineParams {
    fn default() -> Self {
        Self {
            index: IndexParams::default(),
            cache_capacity: 4096,
            cache_shards: 16,
        }
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Epoch of the currently served snapshot.
    pub epoch: u64,
    /// Queries answered (hits + misses).
    pub queries: u64,
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Queries that ran the index search.
    pub cache_misses: u64,
    /// Snapshots published over the engine's lifetime.
    pub publishes: u64,
}

thread_local! {
    /// Per-thread search scratch + query-vector buffers: queries allocate
    /// nothing once a thread has warmed up.
    static SCRATCH: RefCell<(SearchScratch, Vec<f32>, Vec<f32>)> =
        RefCell::new((SearchScratch::new(), Vec::new(), Vec::new()));
}

/// A concurrent cross-modal query engine over hot-swappable snapshots.
pub struct QueryEngine {
    cell: SnapshotCell,
    cache: QueryCache,
    params: EngineParams,
    next_epoch: AtomicU64,
    publishes: AtomicU64,
}

impl QueryEngine {
    /// Builds the first snapshot (epoch 1) from `model` and starts serving.
    /// The model is borrowed — the engine freezes what it needs and the
    /// caller keeps training on the original.
    pub fn new(model: &TrainedModel, params: EngineParams) -> Self {
        let first = Arc::new(Snapshot::build(model, &params.index, 1));
        Self {
            cell: SnapshotCell::new(first),
            cache: QueryCache::new(params.cache_capacity.max(1), params.cache_shards),
            params,
            next_epoch: AtomicU64::new(2),
            publishes: AtomicU64::new(0),
        }
    }

    /// An engine with default parameters.
    pub fn with_defaults(model: &TrainedModel) -> Self {
        Self::new(model, EngineParams::default())
    }

    /// The currently served snapshot (in-flight queries keep whatever
    /// snapshot they loaded even if a publish lands mid-query).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// Epoch of the currently served snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Publishes a new model generation: builds its snapshot off the query
    /// path, swaps it in, and drops the (now unreachable) cache entries of
    /// older epochs. Safe to call concurrently with queries; concurrent
    /// publishers are serialized by the cell.
    pub fn publish(&self, model: &TrainedModel) {
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snap = Arc::new(Snapshot::build(model, &self.params.index, epoch));
        self.cell.store(snap);
        self.cache.clear();
        self.publishes.fetch_add(1, Ordering::Relaxed);
        obs::counter("serve.publish").incr();
    }

    /// Publishes an incrementally updated model generation: applies
    /// `delta` on top of the currently served snapshot
    /// ([`Snapshot::apply_delta`]) instead of rebuilding from scratch, so
    /// a streaming publish costs time proportional to the rows that
    /// actually changed. Falls back to a full build automatically when the
    /// model does not descend from the served snapshot.
    pub fn publish_delta(&self, model: &TrainedModel, delta: &StoreDelta) {
        let prev = self.cell.load();
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snap = Arc::new(Snapshot::apply_delta(
            &prev,
            model,
            delta,
            &self.params.index,
            epoch,
        ));
        self.cell.store(snap);
        self.cache.clear();
        self.publishes.fetch_add(1, Ordering::Relaxed);
        obs::counter("serve.publish").incr();
    }

    /// Answers a query against the current snapshot.
    pub fn query(&self, req: &QueryRequest) -> Result<QueryResponse, QueryError> {
        let started = Instant::now();
        let snap = self.cell.load();
        let response = SCRATCH.with(|cells| {
            let (scratch, raw, unit) = &mut *cells.borrow_mut();
            let desc = plan_query_vector(&snap, &req.kind, raw)?;
            unit.resize(raw.len(), 0.0);
            normalize_into(raw, unit);

            let key = CacheKey::new(snap.epoch(), req.k, req.modalities.bits(), unit);
            if let Some(mut hit) = self.cache.get(&key) {
                hit.from_cache = true;
                return Ok(hit);
            }

            let response = answer(&snap, desc, unit, req, scratch);
            self.cache.insert(key, response.clone());
            Ok(response)
        })?;
        obs::histogram("serve.query.latency_us").record(started.elapsed().as_micros() as u64);
        obs::counter("serve.query.count").incr();
        Ok(response)
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let hits = self.cache.hits();
        let misses = self.cache.misses();
        EngineStats {
            epoch: self.cell.epoch(),
            queries: hits + misses,
            cache_hits: hits,
            cache_misses: misses,
            publishes: self.publishes.load(Ordering::Relaxed),
        }
    }
}

impl ModelSink for QueryEngine {
    fn publish(&self, model: &TrainedModel) {
        QueryEngine::publish(self, model);
    }

    fn publish_delta(&self, model: &TrainedModel, delta: &StoreDelta) {
        QueryEngine::publish_delta(self, model, delta);
    }
}

/// Resolves a query kind to its raw (un-normalized) §6.2.1 query vector,
/// written into `raw`, against the snapshot's frozen rows and shared
/// artifacts. Returns the display description.
fn plan_query_vector(
    snap: &Snapshot,
    kind: &QueryKind,
    raw: &mut Vec<f32>,
) -> Result<String, QueryError> {
    let arts = snap.artifacts();
    match kind {
        QueryKind::Spatial(p) => {
            copy_node_vector(snap, arts.location_node(*p), raw);
            Ok(format!("location ({:.4}, {:.4})", p.lat, p.lon))
        }
        QueryKind::Temporal(s) => {
            copy_node_vector(snap, arts.time_of_day_node(*s), raw);
            Ok(format!("time {}", mobility::types::format_time_of_day(*s)))
        }
        QueryKind::Keyword(w) => {
            let kw = lookup_word(snap, w)?;
            copy_node_vector(snap, arts.word_node(kw), raw);
            Ok(format!("keyword {w:?}"))
        }
        QueryKind::Composite {
            second_of_day,
            point,
            words,
        } => {
            let kws: Vec<KeywordId> = words
                .iter()
                .map(|w| lookup_word(snap, w))
                .collect::<Result<_, _>>()?;
            let mut parts: Vec<Vec<f32>> = Vec::new();
            let mut desc: Vec<String> = Vec::new();
            if let Some(s) = second_of_day {
                parts.push(snap.vector(arts.time_of_day_node(*s)).to_vec());
                desc.push(mobility::types::format_time_of_day(*s));
            }
            if let Some(p) = point {
                parts.push(snap.vector(arts.location_node(*p)).to_vec());
                desc.push(format!("({:.4}, {:.4})", p.lat, p.lon));
            }
            if !kws.is_empty() {
                parts.push(snap.text_vector(&kws));
                desc.push(words.join(" "));
            }
            if parts.is_empty() {
                return Err(QueryError::EmptyQuery);
            }
            let views: Vec<&[f32]> = parts.iter().map(|v| v.as_slice()).collect();
            let q = snap.query_vector(&views);
            raw.clear();
            raw.extend_from_slice(&q);
            Ok(desc.join(" + "))
        }
    }
}

fn lookup_word(snap: &Snapshot, w: &str) -> Result<KeywordId, QueryError> {
    snap.artifacts()
        .vocab()
        .get(w)
        .ok_or_else(|| QueryError::UnknownWord(w.to_string()))
}

fn copy_node_vector(snap: &Snapshot, node: NodeId, raw: &mut Vec<f32>) {
    raw.clear();
    raw.extend_from_slice(snap.vector(node));
}

/// Runs the requested per-modality searches and renders hotspot centers /
/// vocabulary words.
fn answer(
    snap: &Snapshot,
    desc: String,
    unit: &[f32],
    req: &QueryRequest,
    scratch: &mut SearchScratch,
) -> QueryResponse {
    let arts = snap.artifacts();
    let words = if req.modalities.words {
        snap.top_k(NodeType::Word, unit, req.k, None, scratch)
            .into_iter()
            .map(|(n, s)| {
                let kw = KeywordId(arts.space().local_of(n));
                (arts.vocab().word(kw).to_string(), s)
            })
            .collect()
    } else {
        Vec::new()
    };
    let times = if req.modalities.times {
        snap.top_k(NodeType::Time, unit, req.k, None, scratch)
            .into_iter()
            .map(|(n, s)| {
                let local = arts.space().local_of(n);
                (
                    arts.temporal_hotspots().center(hotspot::TemporalHotspotId(local)),
                    s,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let places: Vec<(GeoPoint, f64)> = if req.modalities.places {
        snap.top_k(NodeType::Location, unit, req.k, None, scratch)
            .into_iter()
            .map(|(n, s)| {
                let local = arts.space().local_of(n);
                (
                    arts.spatial_hotspots().center(hotspot::SpatialHotspotId(local)),
                    s,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    QueryResponse {
        query: desc,
        epoch: snap.epoch(),
        from_cache: false,
        words,
        times,
        places,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ModalityMask;
    use actor_core::ActorConfig;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn model() -> TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(51)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        actor_core::fit(&corpus, &split.train, &ActorConfig::fast())
            .unwrap()
            .0
    }

    #[test]
    fn spatial_query_matches_model_reference_ranking() {
        let m = model();
        let engine = QueryEngine::with_defaults(&m);
        let p = GeoPoint::new(40.75, -73.99);
        let r = engine.query(&QueryRequest::spatial(p, 5)).unwrap();
        assert_eq!(r.words.len(), 5);
        assert!(!r.from_cache);
        assert_eq!(r.epoch, 1);

        // Reference semantics: cosine ranking over the raw model.
        let raw = m.vector(m.location_node(p)).to_vec();
        let reference = m.nearest_words(&raw, 5);
        assert_eq!(
            r.words.iter().map(|(w, _)| w.clone()).collect::<Vec<_>>(),
            reference.iter().map(|(w, _)| w.clone()).collect::<Vec<_>>()
        );
        for (a, b) in r.words.iter().zip(&reference) {
            assert!((a.1 - b.1).abs() < 1e-5);
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let engine = QueryEngine::with_defaults(&model());
        let req = QueryRequest::temporal(20.0 * 3600.0, 4);
        let first = engine.query(&req).unwrap();
        assert!(!first.from_cache);
        let second = engine.query(&req).unwrap();
        assert!(second.from_cache);
        assert_eq!(first.words, second.words);
        let stats = engine.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn unknown_words_and_empty_composites_error() {
        let engine = QueryEngine::with_defaults(&model());
        let err = engine
            .query(&QueryRequest::keyword("definitely_not_a_word_xyz", 3))
            .unwrap_err();
        assert!(matches!(err, QueryError::UnknownWord(_)));
        let err = engine
            .query(&QueryRequest::composite(None, None, Vec::new()))
            .unwrap_err();
        assert_eq!(err, QueryError::EmptyQuery);
    }

    #[test]
    fn composite_query_averages_modalities() {
        let m = model();
        let engine = QueryEngine::with_defaults(&m);
        let p = GeoPoint::new(40.7, -74.0);
        let s = 9.0 * 3600.0;
        let r = engine
            .query(&QueryRequest::composite(Some(s), Some(p), Vec::new()).with_k(3))
            .unwrap();
        let tv = m.vector(m.time_of_day_node(s)).to_vec();
        let lv = m.vector(m.location_node(p)).to_vec();
        let q = m.query_vector(&[&tv, &lv]);
        let reference = m.nearest_words(&q, 3);
        assert_eq!(
            r.words.iter().map(|(w, _)| w.clone()).collect::<Vec<_>>(),
            reference.iter().map(|(w, _)| w.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn modality_mask_skips_unrequested_modalities() {
        let engine = QueryEngine::with_defaults(&model());
        let r = engine
            .query(&QueryRequest::temporal(3600.0, 5).with_modalities(ModalityMask {
                words: true,
                times: false,
                places: false,
            }))
            .unwrap();
        assert!(!r.words.is_empty());
        assert!(r.times.is_empty());
        assert!(r.places.is_empty());
    }

    #[test]
    fn publish_bumps_epoch_and_invalidates_cache() {
        let m = model();
        let engine = QueryEngine::with_defaults(&m);
        let req = QueryRequest::keyword("beach", 3);
        // Skip if the synthetic vocab lacks the word.
        if engine.query(&req).is_err() {
            return;
        }
        assert!(engine.query(&req).unwrap().from_cache);
        engine.publish(&m);
        assert_eq!(engine.epoch(), 2);
        let after = engine.query(&req).unwrap();
        assert!(!after.from_cache, "publish must invalidate cached answers");
        assert_eq!(after.epoch, 2);
        assert_eq!(engine.stats().publishes, 1);
    }

    #[test]
    fn delta_publish_serves_the_updated_rows() {
        let mut m = model();
        let engine = QueryEngine::with_defaults(&m);
        let sync = m.store().close_generation();
        // Drift one word row, then publish only the delta.
        let node = m.space().node(NodeType::Word, 1);
        m.store_mut().centers.row_mut(node.idx())[0] += 0.5;
        let delta = m.store().drain_dirty(sync);
        assert_eq!(delta.dirty_rows(), 1);
        engine.publish_delta(&m, &delta);
        assert_eq!(engine.epoch(), 2);
        assert_eq!(engine.stats().publishes, 1);
        // The served snapshot carries the drifted row.
        assert_eq!(engine.snapshot().vector(node), m.vector(node));
    }

    #[test]
    fn engine_is_a_model_sink() {
        let m = model();
        let engine = QueryEngine::with_defaults(&m);
        let sink: &dyn ModelSink = &engine;
        sink.publish(&m);
        assert_eq!(engine.epoch(), 2);
        sink.publish_delta(&m, &m.store().drain_dirty(m.store().close_generation()));
        assert_eq!(engine.epoch(), 3);
    }
}
