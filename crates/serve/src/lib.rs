//! `actor-serve` — online query serving for trained ACTOR models.
//!
//! Training (`actor-core`) produces a [`actor_core::TrainedModel`]; this
//! crate turns one into a *service*: a [`QueryEngine`] that answers
//! cross-modal what/where/when queries concurrently, at interactive
//! latency, while new model generations stream in behind it.
//!
//! The moving parts, bottom-up:
//!
//! * [`hnsw`] — a from-scratch HNSW approximate-nearest-neighbor index
//!   over unit vectors (cosine via dot product), with an exact linear-scan
//!   fallback ([`hnsw::exact_top_k`]) that doubles as the conformance
//!   reference.
//! * [`snapshot`] — an immutable [`Snapshot`]: shared model artifacts +
//!   frozen raw/normalized rows + one index per modality. Small modalities
//!   stay exact; large ones get HNSW ([`IndexParams::ann_threshold`]).
//!   Snapshots build from scratch ([`Snapshot::build`]) or incrementally
//!   from the previous snapshot plus a dirty-row delta
//!   ([`Snapshot::apply_delta`]), re-inserting only the drifted nodes into
//!   the HNSW graphs.
//! * [`swap`] — [`SnapshotCell`], an epoch-based hot-swap cell (the
//!   ArcSwap idea, hand-rolled from `Arc` + atomics): queries load the
//!   current snapshot lock-free; publishes swap a new one in without
//!   stalling in-flight readers.
//! * [`cache`] — a sharded LRU keyed by quantized query vectors; the
//!   snapshot epoch lives in the key, so hot-swaps invalidate for free.
//! * [`query`] / [`engine`] — the typed request/response API and the
//!   [`QueryEngine`] tying it all together. The engine implements
//!   [`actor_core::ModelSink`] — both the full and the delta form — so
//!   `fit_with_sink` or `OnlineActor::attach_sink` can publish straight
//!   into it, and streaming updaters pay only for the rows they touched.
//!
//! ```no_run
//! use serve::{QueryEngine, QueryRequest};
//! # fn demo(model: actor_core::TrainedModel) {
//! let engine = QueryEngine::with_defaults(&model);
//! let answer = engine
//!     .query(&QueryRequest::keyword("beach", 10))
//!     .unwrap();
//! for (word, score) in &answer.words {
//!     println!("{word}: {score:.3}");
//! }
//! # }
//! ```

pub mod cache;
pub mod engine;
pub mod hnsw;
pub mod query;
pub mod snapshot;
pub mod swap;
pub mod testkit;

pub use cache::QueryCache;
pub use engine::{EngineParams, EngineStats, QueryEngine};
pub use hnsw::{HnswIndex, HnswParams, SearchScratch};
pub use query::{ModalityMask, QueryError, QueryKind, QueryRequest, QueryResponse};
pub use snapshot::{IndexParams, Snapshot};
pub use swap::SnapshotCell;
