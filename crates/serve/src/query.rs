//! Typed query API for the serving engine.
//!
//! A [`QueryRequest`] names *what is observed* (a point, a second-of-day,
//! a keyword, or any combination — the paper's "what/where/when" queries)
//! and *what to return* (which modalities, how many results). The engine
//! turns it into one unit query vector and answers from the current
//! snapshot's per-modality indexes.

use mobility::GeoPoint;

/// Which result modalities a query wants back. Skipping a modality skips
/// its index walk entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModalityMask {
    /// Return top keywords.
    pub words: bool,
    /// Return top temporal hotspots.
    pub times: bool,
    /// Return top spatial hotspots.
    pub places: bool,
}

impl ModalityMask {
    /// All three modalities.
    pub const ALL: Self = Self {
        words: true,
        times: true,
        places: true,
    };

    /// Bit encoding used in cache keys.
    pub(crate) fn bits(self) -> u8 {
        (self.words as u8) | (self.times as u8) << 1 | (self.places as u8) << 2
    }
}

impl Default for ModalityMask {
    fn default() -> Self {
        Self::ALL
    }
}

/// The observed side of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// "What happens here?" — a raw geographic point (Fig. 9).
    Spatial(GeoPoint),
    /// "What happens at this hour?" — a second-of-day in `[0, 86400)`
    /// (or `[0, period)` for weekly models) (Fig. 10).
    Temporal(f64),
    /// "Where and when does this activity happen?" — a vocabulary keyword
    /// (Fig. 11).
    Keyword(String),
    /// Any combination of the three modalities, averaged per §6.2.1.
    /// At least one part must be present.
    Composite {
        /// Observed second-of-day, if any.
        second_of_day: Option<f64>,
        /// Observed location, if any.
        point: Option<GeoPoint>,
        /// Observed keywords (may be empty if another part is set).
        words: Vec<String>,
    },
}

/// A complete request: what was observed, what to return.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The observed modalities.
    pub kind: QueryKind,
    /// Results per returned modality.
    pub k: usize,
    /// Which modalities to return.
    pub modalities: ModalityMask,
}

impl QueryRequest {
    /// A spatial query returning all modalities.
    pub fn spatial(point: GeoPoint, k: usize) -> Self {
        Self {
            kind: QueryKind::Spatial(point),
            k,
            modalities: ModalityMask::ALL,
        }
    }

    /// A temporal (second-of-day) query returning all modalities.
    pub fn temporal(second_of_day: f64, k: usize) -> Self {
        Self {
            kind: QueryKind::Temporal(second_of_day),
            k,
            modalities: ModalityMask::ALL,
        }
    }

    /// A keyword query returning all modalities.
    pub fn keyword(word: impl Into<String>, k: usize) -> Self {
        Self {
            kind: QueryKind::Keyword(word.into()),
            k,
            modalities: ModalityMask::ALL,
        }
    }

    /// A composite what/where/when query returning all modalities.
    pub fn composite(
        second_of_day: Option<f64>,
        point: Option<GeoPoint>,
        words: Vec<String>,
    ) -> Self {
        Self {
            kind: QueryKind::Composite {
                second_of_day,
                point,
                words,
            },
            k: 10,
            modalities: ModalityMask::ALL,
        }
    }

    /// Restricts the returned modalities.
    pub fn with_modalities(mut self, modalities: ModalityMask) -> Self {
        self.modalities = modalities;
        self
    }

    /// Sets the per-modality result count.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }
}

/// The engine's answer. Times and places come back as raw hotspot centers
/// (`second-of-day`, [`GeoPoint`]); presentation-layer formatting belongs
/// to callers (see `eval::neighbor`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Human-readable restatement of the query.
    pub query: String,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// True when the answer came from the query cache.
    pub from_cache: bool,
    /// Top keywords with cosine scores, best first.
    pub words: Vec<(String, f64)>,
    /// Top temporal hotspot centers (second-of-period) with scores.
    pub times: Vec<(f64, f64)>,
    /// Top spatial hotspot centers with scores.
    pub places: Vec<(GeoPoint, f64)>,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A keyword is not in the model's vocabulary.
    UnknownWord(String),
    /// A composite query with no observed modality at all.
    EmptyQuery,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownWord(w) => write!(f, "word {w:?} is not in the model vocabulary"),
            Self::EmptyQuery => write!(f, "composite query observed no modality"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_the_obvious_fields() {
        let q = QueryRequest::spatial(GeoPoint::new(34.0, -118.2), 7);
        assert_eq!(q.k, 7);
        assert_eq!(q.modalities, ModalityMask::ALL);

        let q = QueryRequest::keyword("beach", 3).with_modalities(ModalityMask {
            words: true,
            times: false,
            places: false,
        });
        assert!(q.modalities.words && !q.modalities.times && !q.modalities.places);

        let q = QueryRequest::composite(Some(3600.0), None, vec!["coffee".into()]).with_k(5);
        assert_eq!(q.k, 5);
    }

    #[test]
    fn mask_bits_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for words in [false, true] {
            for times in [false, true] {
                for places in [false, true] {
                    seen.insert(
                        ModalityMask {
                            words,
                            times,
                            places,
                        }
                        .bits(),
                    );
                }
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn errors_display_usefully() {
        assert!(QueryError::UnknownWord("zzz".into()).to_string().contains("zzz"));
        assert!(QueryError::EmptyQuery.to_string().contains("no modality"));
    }
}
