//! Serving conformance: ANN answers against the exact reference, and
//! hot-swap correctness under concurrent load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mobility::GeoPoint;
use rand::{rngs::StdRng, SeedableRng};
use serve::hnsw::SearchScratch;
use serve::snapshot::{IndexParams, Snapshot};
use serve::testkit::{probe_near, synthetic_model};
use serve::{EngineParams, QueryEngine, QueryRequest};
use stgraph::NodeType;

/// Recall@10 of the ANN path against the brute-force reference, per
/// modality, on a corpus large enough (4096/modality) that every modality
/// crosses the default ANN threshold.
#[test]
fn ann_recall_at_10_meets_bar_per_modality() {
    let n = 4096;
    let model = synthetic_model(n, 32, 11);
    let snap = Snapshot::build(model, &IndexParams::default(), 1);
    let mut scratch = SearchScratch::new();
    let mut rng = StdRng::seed_from_u64(12);

    for ty in [NodeType::Word, NodeType::Time, NodeType::Location] {
        assert!(snap.is_ann(ty), "{ty:?} should be ANN-indexed at n={n}");
        let offset = snap.model().space().offset(ty) as usize;
        let mut hit = 0usize;
        let mut total = 0usize;
        for probe in (0..n).step_by(97) {
            let raw = probe_near(snap.model(), offset + probe, 0.05, &mut rng);
            let mut unit = vec![0.0f32; raw.len()];
            embed::math::normalize_into(&raw, &mut unit);
            let ann: Vec<_> = snap
                .top_k(ty, &unit, 10, None, &mut scratch)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            let exact = snap.top_k_exact(ty, &unit, 10, &mut scratch);
            total += exact.len();
            hit += exact.iter().filter(|(id, _)| ann.contains(id)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.95, "{ty:?} recall@10 = {recall:.3}");
    }
}

/// ANN scores are the same dot products the exact path computes — for the
/// neighbors both paths agree on, the scores must match exactly.
#[test]
fn ann_scores_equal_exact_scores_for_shared_neighbors() {
    let model = synthetic_model(4096, 16, 13);
    let snap = Snapshot::build(model, &IndexParams::default(), 1);
    let mut scratch = SearchScratch::new();
    let mut rng = StdRng::seed_from_u64(14);
    let raw = probe_near(snap.model(), 100, 0.05, &mut rng);
    let mut unit = vec![0.0f32; raw.len()];
    embed::math::normalize_into(&raw, &mut unit);
    let ann = snap.top_k(NodeType::Word, &unit, 10, None, &mut scratch);
    let exact = snap.top_k_exact(NodeType::Word, &unit, 10, &mut scratch);
    for (id, sim) in &ann {
        if let Some((_, esim)) = exact.iter().find(|(eid, _)| eid == id) {
            assert_eq!(sim, esim, "shared kernel must give identical scores");
        }
    }
}

/// Queries racing hot-swaps: no query may fail, panic, or observe a
/// regressing epoch, and the final epoch must account for every publish.
#[test]
fn hot_swap_under_concurrent_queries_never_fails() {
    let model = synthetic_model(256, 16, 15);
    let engine = Arc::new(QueryEngine::new(model.clone(), EngineParams::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let publishes = 12u64;

    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..4u64 {
            let engine = engine.clone();
            let stop = stop.clone();
            workers.push(s.spawn(move || {
                let mut answered = 0u64;
                let mut last_epoch = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) || answered == 0 {
                    let req = match (t + i) % 3 {
                        0 => QueryRequest::spatial(
                            GeoPoint::new(33.6 + (i % 50) as f64 * 0.01, -118.3),
                            5,
                        ),
                        1 => QueryRequest::temporal(((i * 613) % 86_400) as f64, 5),
                        _ => QueryRequest::keyword(format!("word{:05}", (i * 37) % 256), 5),
                    };
                    let r = engine.query(&req).expect("no query may fail mid-swap");
                    assert!(
                        r.epoch >= last_epoch,
                        "epoch regressed: {} -> {}",
                        last_epoch,
                        r.epoch
                    );
                    last_epoch = r.epoch;
                    answered += 1;
                    i += 1;
                }
                answered
            }));
        }
        for _ in 0..publishes {
            engine.publish(model.clone());
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(total > 0);
    });

    let stats = engine.stats();
    assert_eq!(stats.publishes, publishes);
    assert_eq!(stats.epoch, 1 + publishes);
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.queries);
}

/// The engine's ANN answers agree with a forced-exact twin engine on the
/// top result (the two engines share one model and one scoring kernel).
#[test]
fn ann_engine_and_exact_engine_agree_on_top_results() {
    let model = synthetic_model(4096, 16, 16);
    let ann = QueryEngine::new(
        model.clone(),
        EngineParams {
            index: IndexParams {
                ann_threshold: 0,
                ..IndexParams::default()
            },
            ..EngineParams::default()
        },
    );
    let exact = QueryEngine::new(
        model,
        EngineParams {
            index: IndexParams {
                ann_threshold: usize::MAX,
                ..IndexParams::default()
            },
            ..EngineParams::default()
        },
    );
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in (0..4096usize).step_by(257) {
        let req = QueryRequest::keyword(format!("word{i:05}"), 3);
        let a = ann.query(&req).unwrap();
        let e = exact.query(&req).unwrap();
        total += 1;
        // A keyword's own embedding must top its neighbor list either way.
        if a.words.first().map(|w| &w.0) == e.words.first().map(|w| &w.0) {
            agree += 1;
        }
    }
    assert!(
        agree as f64 / total as f64 >= 0.95,
        "top-1 agreement {agree}/{total}"
    );
}
