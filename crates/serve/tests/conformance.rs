//! Serving conformance: ANN answers against the exact reference, and
//! hot-swap correctness under concurrent load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mobility::GeoPoint;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serve::hnsw::SearchScratch;
use serve::snapshot::{IndexParams, Snapshot};
use serve::testkit::{probe_near, synthetic_model};
use serve::{EngineParams, QueryEngine, QueryRequest};
use stgraph::NodeType;

/// Recall@10 of the ANN path against the brute-force reference, per
/// modality, on a corpus large enough (4096/modality) that every modality
/// crosses the default ANN threshold.
#[test]
fn ann_recall_at_10_meets_bar_per_modality() {
    let n = 4096;
    let model = synthetic_model(n, 32, 11);
    let snap = Snapshot::build(&model, &IndexParams::default(), 1);
    let mut scratch = SearchScratch::new();
    let mut rng = StdRng::seed_from_u64(12);

    for ty in [NodeType::Word, NodeType::Time, NodeType::Location] {
        assert!(snap.is_ann(ty), "{ty:?} should be ANN-indexed at n={n}");
        let offset = snap.artifacts().space().offset(ty) as usize;
        let mut hit = 0usize;
        let mut total = 0usize;
        for probe in (0..n).step_by(97) {
            let raw = probe_near(&model, offset + probe, 0.05, &mut rng);
            let mut unit = vec![0.0f32; raw.len()];
            embed::math::normalize_into(&raw, &mut unit);
            let ann: Vec<_> = snap
                .top_k(ty, &unit, 10, None, &mut scratch)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            let exact = snap.top_k_exact(ty, &unit, 10, &mut scratch);
            total += exact.len();
            hit += exact.iter().filter(|(id, _)| ann.contains(id)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.95, "{ty:?} recall@10 = {recall:.3}");
    }
}

/// ANN scores are the same dot products the exact path computes — for the
/// neighbors both paths agree on, the scores must match exactly.
#[test]
fn ann_scores_equal_exact_scores_for_shared_neighbors() {
    let model = synthetic_model(4096, 16, 13);
    let snap = Snapshot::build(&model, &IndexParams::default(), 1);
    let mut scratch = SearchScratch::new();
    let mut rng = StdRng::seed_from_u64(14);
    let raw = probe_near(&model, 100, 0.05, &mut rng);
    let mut unit = vec![0.0f32; raw.len()];
    embed::math::normalize_into(&raw, &mut unit);
    let ann = snap.top_k(NodeType::Word, &unit, 10, None, &mut scratch);
    let exact = snap.top_k_exact(NodeType::Word, &unit, 10, &mut scratch);
    for (id, sim) in &ann {
        if let Some((_, esim)) = exact.iter().find(|(eid, _)| eid == id) {
            assert_eq!(sim, esim, "shared kernel must give identical scores");
        }
    }
}

/// Queries racing hot-swaps: no query may fail, panic, or observe a
/// regressing epoch, and the final epoch must account for every publish.
#[test]
fn hot_swap_under_concurrent_queries_never_fails() {
    let model = synthetic_model(256, 16, 15);
    let engine = Arc::new(QueryEngine::new(&model, EngineParams::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let publishes = 12u64;

    std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..4u64 {
            let engine = engine.clone();
            let stop = stop.clone();
            workers.push(s.spawn(move || {
                let mut answered = 0u64;
                let mut last_epoch = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) || answered == 0 {
                    let req = match (t + i) % 3 {
                        0 => QueryRequest::spatial(
                            GeoPoint::new(33.6 + (i % 50) as f64 * 0.01, -118.3),
                            5,
                        ),
                        1 => QueryRequest::temporal(((i * 613) % 86_400) as f64, 5),
                        _ => QueryRequest::keyword(format!("word{:05}", (i * 37) % 256), 5),
                    };
                    let r = engine.query(&req).expect("no query may fail mid-swap");
                    assert!(
                        r.epoch >= last_epoch,
                        "epoch regressed: {} -> {}",
                        last_epoch,
                        r.epoch
                    );
                    last_epoch = r.epoch;
                    answered += 1;
                    i += 1;
                }
                answered
            }));
        }
        for _ in 0..publishes {
            engine.publish(&model);
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(total > 0);
    });

    let stats = engine.stats();
    assert_eq!(stats.publishes, publishes);
    assert_eq!(stats.epoch, 1 + publishes);
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.queries);
}

/// Applies `rounds` batches of randomized streaming row updates to
/// `model`, publishing each batch through [`Snapshot::apply_delta`] on
/// top of `snap`. Returns the delta-chained snapshot.
fn stream_and_apply(
    model: &mut actor_core::TrainedModel,
    mut snap: Snapshot,
    params: &IndexParams,
    rounds: u64,
    per_round: usize,
    rng: &mut StdRng,
) -> Snapshot {
    let n = model.space().len();
    for round in 0..rounds {
        let sync = model.store().close_generation();
        for _ in 0..per_round {
            let i = rng.random_range(0..n);
            let drifted: Vec<f32> = model
                .store()
                .centers
                .row(i)
                .iter()
                .map(|&x| x + rng.random_range(-0.3f32..0.3))
                .collect();
            model.store_mut().centers.set_row(i, &drifted);
        }
        let delta = model.store().drain_dirty(sync);
        snap = Snapshot::apply_delta(&snap, model, &delta, params, snap.epoch() + 1 + round);
    }
    snap
}

/// The tentpole conformance bar: after randomized streaming updates
/// published as a chain of deltas, the delta-applied snapshot must answer
/// *identically* to a snapshot built from scratch off the final model —
/// same ids, scores within 1e-6 — in exact-scan mode, where both paths
/// are deterministic.
#[test]
fn delta_applied_snapshot_answers_identically_to_from_scratch_build() {
    let exact = IndexParams {
        ann_threshold: usize::MAX,
        ..IndexParams::default()
    };
    let mut model = synthetic_model(1024, 16, 17);
    let mut rng = StdRng::seed_from_u64(18);
    let base = Snapshot::build(&model, &exact, 1);
    let chained = stream_and_apply(&mut model, base, &exact, 5, 40, &mut rng);
    let fresh = Snapshot::build(&model, &exact, 100);

    let mut scratch = SearchScratch::new();
    for ty in [NodeType::Word, NodeType::Time, NodeType::Location] {
        let offset = fresh.artifacts().space().offset(ty) as usize;
        for probe in (0..1024).step_by(41) {
            let raw = probe_near(&model, offset + probe, 0.05, &mut rng);
            let mut unit = vec![0.0f32; raw.len()];
            embed::math::normalize_into(&raw, &mut unit);
            let a = chained.top_k(ty, &unit, 10, None, &mut scratch);
            let b = fresh.top_k(ty, &unit, 10, None, &mut scratch);
            assert_eq!(
                a.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                b.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                "{ty:?} probe {probe}: ids diverged"
            );
            for ((_, sa), (_, sb)) in a.iter().zip(&b) {
                assert!((sa - sb).abs() <= 1e-6, "{ty:?}: {sa} vs {sb}");
            }
        }
    }
}

/// The same streaming-delta chain with ANN forced on: incrementally
/// patched HNSW graphs legitimately differ from a fresh build, so the bar
/// is behavioral — every drifted node remains its own top-1 and recall
/// against the exact scan stays high.
#[test]
fn delta_patched_ann_index_stays_accurate() {
    let forced = IndexParams {
        ann_threshold: 0,
        ..IndexParams::default()
    };
    let mut model = synthetic_model(1024, 16, 19);
    let mut rng = StdRng::seed_from_u64(20);
    let base = Snapshot::build(&model, &forced, 1);
    let chained = stream_and_apply(&mut model, base, &forced, 5, 40, &mut rng);

    let mut scratch = SearchScratch::new();
    let mut hit = 0usize;
    let mut total = 0usize;
    for ty in [NodeType::Word, NodeType::Time, NodeType::Location] {
        assert!(chained.is_ann(ty));
        let offset = chained.artifacts().space().offset(ty) as usize;
        for probe in (0..1024usize).step_by(53) {
            let raw = probe_near(&model, offset + probe, 0.001, &mut rng);
            let mut unit = vec![0.0f32; raw.len()];
            embed::math::normalize_into(&raw, &mut unit);
            let ann: Vec<_> = chained
                .top_k(ty, &unit, 10, Some(200), &mut scratch)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            let exact = chained.top_k_exact(ty, &unit, 10, &mut scratch);
            assert_eq!(ann[0], exact[0].0, "{ty:?} probe {probe}: lost itself");
            total += exact.len();
            hit += exact.iter().filter(|(id, _)| ann.contains(id)).count();
        }
    }
    let recall = hit as f64 / total as f64;
    assert!(recall >= 0.9, "post-delta recall@10 = {recall:.3}");
}

/// The engine's ANN answers agree with a forced-exact twin engine on the
/// top result (the two engines share one model and one scoring kernel).
#[test]
fn ann_engine_and_exact_engine_agree_on_top_results() {
    let model = synthetic_model(4096, 16, 16);
    let ann = QueryEngine::new(
        &model,
        EngineParams {
            index: IndexParams {
                ann_threshold: 0,
                ..IndexParams::default()
            },
            ..EngineParams::default()
        },
    );
    let exact = QueryEngine::new(
        &model,
        EngineParams {
            index: IndexParams {
                ann_threshold: usize::MAX,
                ..IndexParams::default()
            },
            ..EngineParams::default()
        },
    );
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in (0..4096usize).step_by(257) {
        let req = QueryRequest::keyword(format!("word{i:05}"), 3);
        let a = ann.query(&req).unwrap();
        let e = exact.query(&req).unwrap();
        total += 1;
        // A keyword's own embedding must top its neighbor list either way.
        if a.words.first().map(|w| &w.0) == e.words.first().map(|w| &w.0) {
            agree += 1;
        }
    }
    assert!(
        agree as f64 / total as f64 >= 0.95,
        "top-1 agreement {agree}/{total}"
    );
}
