//! Property tests for the grid index: exhaustive window queries and exact
//! nearest neighbors against brute force, over arbitrary point clouds.

use hotspot::grid::Grid2D;
use mobility::GeoPoint;
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<GeoPoint>> {
    prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..60)
        .prop_map(|v| v.into_iter().map(|(a, b)| GeoPoint::new(a, b)).collect())
}

proptest! {
    #[test]
    fn within_matches_brute_force(
        points in points_strategy(),
        q in (-6.0f64..6.0, -6.0f64..6.0),
        radius in 0.01f64..2.0,
        cell in 0.1f64..3.0,
    ) {
        let grid = Grid2D::build(&points, cell);
        let q = GeoPoint::new(q.0, q.1);
        let mut got = grid.within(q, radius).len();
        let want = points.iter().filter(|p| q.dist(p) <= radius).count();
        // Exact match: the ring scan must be exhaustive for any radius.
        prop_assert_eq!(got, want);
        // And idempotent.
        got = grid.within(q, radius).len();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nearest_matches_brute_force(
        points in points_strategy(),
        q in (-8.0f64..8.0, -8.0f64..8.0),
        cell in 0.05f64..2.0,
    ) {
        let grid = Grid2D::build(&points, cell);
        let q = GeoPoint::new(q.0, q.1);
        let got = grid.nearest(q) as usize;
        let best = points
            .iter()
            .map(|p| q.dist2(p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((q.dist2(&points[got]) - best).abs() < 1e-12,
            "grid returned {} (d2 {}), best d2 {}", got, q.dist2(&points[got]), best);
    }
}
