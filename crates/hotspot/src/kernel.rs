//! Kernel functions for density estimation.

use serde::{Deserialize, Serialize};

/// A radially symmetric kernel `K(u)` evaluated on the normalized distance
/// `u = ‖x − x_i‖ / h`.
///
/// The paper uses the Epanechnikov kernel (§4.3, \[41\]); the Gaussian kernel
/// is provided for the KDE ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(u) = ¾ (1 − u²)` for `|u| ≤ 1`, else 0. Optimal in the
    /// mean-integrated-squared-error sense; with this kernel the mean-shift
    /// step is exactly the mean of the points inside the window (Eq. 1).
    Epanechnikov,
    /// `K(u) = exp(−u²/2) / √(2π)`. Infinite support; the detectors
    /// truncate it at `3h` for window queries.
    Gaussian,
}

impl Kernel {
    /// Kernel value at normalized distance `u ≥ 0` (unnormalized across
    /// dimensions; density estimates divide by `n·h^d` separately).
    #[inline]
    pub fn value(self, u: f64) -> f64 {
        debug_assert!(u >= 0.0);
        match self {
            Kernel::Epanechnikov => {
                if u <= 1.0 {
                    0.75 * (1.0 - u * u)
                } else {
                    0.0
                }
            }
            Kernel::Gaussian => (-0.5 * u * u).exp() / (2.0 * std::f64::consts::PI).sqrt(),
        }
    }

    /// The radius (in multiples of `h`) beyond which the kernel is treated
    /// as zero.
    #[inline]
    pub fn support_radius(self) -> f64 {
        match self {
            Kernel::Epanechnikov => 1.0,
            Kernel::Gaussian => 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epanechnikov_shape() {
        let k = Kernel::Epanechnikov;
        assert!((k.value(0.0) - 0.75).abs() < 1e-12);
        assert_eq!(k.value(1.0), 0.0);
        assert_eq!(k.value(2.0), 0.0);
        assert!(k.value(0.5) > k.value(0.9));
    }

    #[test]
    fn gaussian_shape() {
        let k = Kernel::Gaussian;
        let peak = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((k.value(0.0) - peak).abs() < 1e-12);
        assert!(k.value(1.0) < peak);
        assert!(k.value(3.0) > 0.0); // truncated only by support_radius
    }

    #[test]
    fn kernels_are_monotone_decreasing() {
        for k in [Kernel::Epanechnikov, Kernel::Gaussian] {
            let mut prev = k.value(0.0);
            let mut u = 0.05;
            while u <= 1.0 {
                let v = k.value(u);
                assert!(v <= prev + 1e-15, "{k:?} not decreasing at {u}");
                prev = v;
                u += 0.05;
            }
        }
    }

    #[test]
    fn support_radii() {
        assert_eq!(Kernel::Epanechnikov.support_radius(), 1.0);
        assert_eq!(Kernel::Gaussian.support_radius(), 3.0);
    }
}
