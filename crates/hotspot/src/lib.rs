//! Spatial and temporal hotspot detection (paper §4.3).
//!
//! People's urban activities burst in geographic regions and time periods;
//! the paper turns raw coordinates and timestamps into discrete *hotspot*
//! units via kernel density estimation with the Epanechnikov kernel and
//! mean-shift mode seeking (Definition 5, Eq. 1). Those hotspot units become
//! the `L` and `T` vertices of the activity graph.
//!
//! This crate implements:
//!
//! * the Epanechnikov and Gaussian kernels and KDE ([`kernel`], [`kde`]),
//! * mean-shift over pluggable metric spaces ([`meanshift`], [`space`]) —
//!   planar 2-D for locations, circular 1-D for time of day,
//! * a uniform grid index accelerating window queries ([`grid`]),
//! * detectors producing [`SpatialHotspots`] and [`TemporalHotspots`] with
//!   fast nearest-hotspot assignment for new data points (§4.3's
//!   "choose the closest hotspot" rule).

pub mod detect;
pub mod grid;
pub mod kde;
pub mod kernel;
pub mod meanshift;
pub mod space;

pub use detect::{SpatialHotspotId, SpatialHotspots, TemporalHotspotId, TemporalHotspots};
pub use kernel::Kernel;
pub use meanshift::{MeanShift, MeanShiftParams};
