//! Metric spaces mean-shift can run in.
//!
//! Locations live in a planar 2-D space; times of day live on a circle
//! (23:55 and 00:05 are ten minutes apart). Mean-shift only needs distance
//! and a windowed mean, so both are expressed through one trait.

use mobility::GeoPoint;

/// A metric space with the operations mean-shift needs.
pub trait Space {
    /// A point in the space.
    type Point: Copy + PartialEq + std::fmt::Debug;

    /// Distance between two points.
    fn dist(&self, a: Self::Point, b: Self::Point) -> f64;

    /// The mean of `points`, computed *relative to* `anchor` so that
    /// circular spaces average correctly within a window around the anchor.
    /// `points` is non-empty.
    fn local_mean(&self, anchor: Self::Point, points: &[Self::Point]) -> Self::Point;
}

/// The planar 2-D space of geographic coordinates (degree space; see
/// [`GeoPoint::dist`] for why planar is adequate at city scale).
#[derive(Debug, Clone, Copy, Default)]
pub struct Planar2D;

impl Space for Planar2D {
    type Point = GeoPoint;

    #[inline]
    fn dist(&self, a: GeoPoint, b: GeoPoint) -> f64 {
        a.dist(&b)
    }

    fn local_mean(&self, _anchor: GeoPoint, points: &[GeoPoint]) -> GeoPoint {
        debug_assert!(!points.is_empty());
        let n = points.len() as f64;
        let (mut lat, mut lon) = (0.0, 0.0);
        for p in points {
            lat += p.lat;
            lon += p.lon;
        }
        GeoPoint::new(lat / n, lon / n)
    }
}

/// The circle `[0, period)`, used for time of day with `period = 86 400`.
#[derive(Debug, Clone, Copy)]
pub struct Circular1D {
    /// Circumference of the circle.
    pub period: f64,
}

impl Circular1D {
    /// A circle of the given period.
    pub fn new(period: f64) -> Self {
        assert!(period > 0.0);
        Self { period }
    }

    /// Signed shortest displacement from `a` to `b` in `(-period/2, period/2]`.
    #[inline]
    pub fn signed_diff(&self, a: f64, b: f64) -> f64 {
        let mut d = (b - a).rem_euclid(self.period);
        if d > self.period / 2.0 {
            d -= self.period;
        }
        d
    }

    /// Wraps `x` into `[0, period)`.
    #[inline]
    pub fn wrap(&self, x: f64) -> f64 {
        x.rem_euclid(self.period)
    }
}

impl Space for Circular1D {
    type Point = f64;

    #[inline]
    fn dist(&self, a: f64, b: f64) -> f64 {
        self.signed_diff(a, b).abs()
    }

    fn local_mean(&self, anchor: f64, points: &[f64]) -> f64 {
        debug_assert!(!points.is_empty());
        // Average the signed displacements from the anchor; valid because
        // window radii are far below period/2.
        let mean_diff =
            points.iter().map(|&p| self.signed_diff(anchor, p)).sum::<f64>() / points.len() as f64;
        self.wrap(anchor + mean_diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planar_mean_is_centroid() {
        let s = Planar2D;
        let pts = [GeoPoint::new(0.0, 0.0), GeoPoint::new(2.0, 4.0)];
        let m = s.local_mean(pts[0], &pts);
        assert!((m.lat - 1.0).abs() < 1e-12);
        assert!((m.lon - 2.0).abs() < 1e-12);
        assert!((s.dist(pts[0], pts[1]) - 20f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn circular_distance_wraps() {
        let c = Circular1D::new(24.0);
        assert!((c.dist(23.5, 0.5) - 1.0).abs() < 1e-12);
        assert!((c.dist(0.5, 23.5) - 1.0).abs() < 1e-12);
        assert!((c.dist(6.0, 18.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn circular_signed_diff_signs() {
        let c = Circular1D::new(24.0);
        assert!(c.signed_diff(23.0, 1.0) > 0.0);
        assert!(c.signed_diff(1.0, 23.0) < 0.0);
        assert_eq!(c.signed_diff(5.0, 5.0), 0.0);
    }

    #[test]
    fn circular_mean_crosses_midnight() {
        let c = Circular1D::new(24.0);
        // Points straddling midnight average near midnight, not noon.
        let m = c.local_mean(23.5, &[23.0, 1.0]);
        assert!(m >= 23.9 || m <= 0.1, "mean {m}");
    }

    #[test]
    fn circular_wrap() {
        let c = Circular1D::new(24.0);
        assert_eq!(c.wrap(25.0), 1.0);
        assert_eq!(c.wrap(-1.0), 23.0);
    }

    #[test]
    #[should_panic]
    fn circular_rejects_nonpositive_period() {
        Circular1D::new(0.0);
    }
}
