//! End-to-end hotspot detectors with nearest-hotspot assignment.
//!
//! These wrap the mean-shift machinery into the two detectors the ACTOR
//! pipeline needs: spatial hotspots over record locations and temporal
//! hotspots over records' time of day. After detection, any data point is
//! assigned to its closest hotspot (§4.3 last paragraph) — that assignment
//! defines the `L`/`T` vertices each record contributes to the activity
//! graph.

use mobility::{GeoPoint, SECONDS_PER_DAY};
use serde::{Deserialize, Serialize};

use crate::grid::Grid2D;
use crate::meanshift::{MeanShift, MeanShiftParams};
use crate::space::{Circular1D, Planar2D, Space};

/// Identifier of a spatial hotspot (index into [`SpatialHotspots::centers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpatialHotspotId(pub u32);

impl SpatialHotspotId {
    /// Index form.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a temporal hotspot (index into [`TemporalHotspots::centers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemporalHotspotId(pub u32);

impl TemporalHotspotId {
    /// Index form.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Detected spatial hotspots plus an assignment index.
#[derive(Debug, Clone)]
pub struct SpatialHotspots {
    centers: Vec<GeoPoint>,
    counts: Vec<usize>,
    index: Grid2D,
}

impl SpatialHotspots {
    /// Runs mean-shift over `points` and assigns each point to its nearest
    /// mode. `min_support` drops hotspots that attract fewer points.
    pub fn detect(points: &[GeoPoint], params: MeanShiftParams, min_support: usize) -> Self {
        assert!(!points.is_empty(), "cannot detect hotspots in empty data");
        let _span = obs::span!("hotspot.spatial.detect");
        let window = Grid2D::build(points, params.bandwidth);
        let h = params.bandwidth;
        let neighbors = |q: GeoPoint, out: &mut Vec<GeoPoint>| {
            window.for_each_within(q, h, |_, p| out.push(p));
        };
        let ms = MeanShift::new(Planar2D, params);
        let modes = ms.run(points, neighbors);
        let mut centers: Vec<GeoPoint> = modes.iter().map(|m| m.point).collect();

        // Assign every point to its nearest mode and keep well-supported
        // modes only.
        let mode_index = Grid2D::build(&centers, params.bandwidth.max(1e-9));
        let counts = nearest_counts(&mode_index, points, centers.len());
        let keep: Vec<usize> = (0..centers.len())
            .filter(|&i| counts[i] >= min_support)
            .collect();
        // Degenerate guard: keep at least the best-supported mode.
        let keep = if keep.is_empty() { vec![0] } else { keep };
        obs::counter("hotspot.spatial.kept").add(keep.len() as u64);
        obs::counter("hotspot.spatial.dropped").add((centers.len() - keep.len()) as u64);
        centers = keep.iter().map(|&i| centers[i]).collect();

        let index = Grid2D::build(&centers, params.bandwidth.max(1e-9));
        let final_counts = nearest_counts(&index, points, centers.len());
        Self {
            centers,
            counts: final_counts,
            index,
        }
    }

    /// Rebuilds the structure from previously detected centers (model
    /// loading); counts are zeroed since the raw data is gone.
    ///
    /// Panics on empty `centers`.
    pub fn from_centers(centers: &[GeoPoint], params: MeanShiftParams) -> Self {
        assert!(!centers.is_empty(), "need at least one center");
        let index = Grid2D::build(centers, params.bandwidth.max(1e-9));
        Self {
            centers: centers.to_vec(),
            counts: vec![0; centers.len()],
            index,
        }
    }

    /// Hotspot centers.
    pub fn centers(&self) -> &[GeoPoint] {
        &self.centers
    }

    /// Points assigned to each hotspot during detection.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of hotspots.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True if no hotspots were found (never true after `detect`).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Nearest hotspot to `p` (the §4.3 assignment rule).
    pub fn assign(&self, p: GeoPoint) -> SpatialHotspotId {
        SpatialHotspotId(self.index.nearest(p))
    }

    /// The hotspot's center.
    pub fn center(&self, id: SpatialHotspotId) -> GeoPoint {
        self.centers[id.idx()]
    }
}

/// Detected temporal hotspots (time-of-day modes) plus assignment.
///
/// ```
/// use hotspot::{TemporalHotspots, MeanShiftParams};
///
/// // A burst of lunchtime activity around 12:30.
/// let seconds: Vec<f64> = (0..200).map(|i| 45_000.0 + (i % 40) as f64 * 30.0).collect();
/// let hotspots = TemporalHotspots::detect(
///     &seconds, MeanShiftParams::with_bandwidth(1800.0), 5);
/// assert_eq!(hotspots.len(), 1);
/// // New timestamps are assigned to the closest mode (§4.3).
/// assert_eq!(hotspots.assign(46_000.0).idx(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TemporalHotspots {
    /// Mode positions in seconds of day, ascending.
    centers: Vec<f64>,
    counts: Vec<usize>,
    circle: Circular1D,
}

impl TemporalHotspots {
    /// Runs circular mean-shift over seconds-of-day (period 86 400).
    pub fn detect(seconds: &[f64], params: MeanShiftParams, min_support: usize) -> Self {
        Self::detect_with_period(seconds, SECONDS_PER_DAY as f64, params, min_support)
    }

    /// Runs circular mean-shift with an explicit period — e.g.
    /// `SECONDS_PER_WEEK` to capture weekday/weekend rhythms instead of
    /// daily ones. Values are wrapped into `[0, period)`.
    pub fn detect_with_period(
        seconds: &[f64],
        period: f64,
        params: MeanShiftParams,
        min_support: usize,
    ) -> Self {
        assert!(!seconds.is_empty(), "cannot detect hotspots in empty data");
        assert!(period > 0.0, "period must be positive");
        let _span = obs::span!("hotspot.temporal.detect");
        let circle = Circular1D::new(period);
        let mut sorted: Vec<f64> = seconds.iter().map(|&s| circle.wrap(s)).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite seconds"));
        let h = params.bandwidth;
        let sorted_ref = &sorted;
        let neighbors = move |q: f64, out: &mut Vec<f64>| {
            // Wrapping window scan over the sorted values.
            let (lo, hi) = (q - h, q + h);
            let mut scan = |a: f64, b: f64| {
                let start = sorted_ref.partition_point(|&v| v < a);
                let end = sorted_ref.partition_point(|&v| v <= b);
                out.extend_from_slice(&sorted_ref[start..end]);
            };
            if lo < 0.0 {
                scan(0.0, hi);
                scan(lo + period, period);
            } else if hi > period {
                scan(lo, period);
                scan(0.0, hi - period);
            } else {
                scan(lo, hi);
            }
        };
        let ms = MeanShift::new(circle, params);
        let modes = ms.run(&sorted, neighbors);
        let mut centers: Vec<f64> = modes.iter().map(|m| m.point).collect();

        let mut keep_counts = assign_counts(&centers, &sorted, circle);
        let keep: Vec<usize> = (0..centers.len())
            .filter(|&i| keep_counts[i] >= min_support)
            .collect();
        let keep = if keep.is_empty() { vec![0] } else { keep };
        obs::counter("hotspot.temporal.kept").add(keep.len() as u64);
        obs::counter("hotspot.temporal.dropped").add((centers.len() - keep.len()) as u64);
        centers = keep.iter().map(|&i| centers[i]).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).expect("finite centers"));
        keep_counts = assign_counts(&centers, &sorted, circle);

        Self {
            centers,
            counts: keep_counts,
            circle,
        }
    }

    /// Rebuilds the structure from previously detected centers with a
    /// daily period (model loading); counts are zeroed since the raw data
    /// is gone. Panics on empty `centers`.
    pub fn from_centers(centers: &[f64]) -> Self {
        Self::from_centers_with_period(centers, SECONDS_PER_DAY as f64)
    }

    /// Like [`TemporalHotspots::from_centers`] with an explicit period.
    pub fn from_centers_with_period(centers: &[f64], period: f64) -> Self {
        assert!(!centers.is_empty(), "need at least one center");
        assert!(period > 0.0, "period must be positive");
        let mut centers = centers.to_vec();
        centers.sort_by(|a, b| a.partial_cmp(b).expect("finite centers"));
        let counts = vec![0; centers.len()];
        Self {
            centers,
            counts,
            circle: Circular1D::new(period),
        }
    }

    /// The circular period in seconds (86 400 for daily hotspots).
    pub fn period(&self) -> f64 {
        self.circle.period
    }

    /// Assigns a raw timestamp by wrapping it into this detector's period.
    pub fn assign_timestamp(&self, t: mobility::Timestamp) -> TemporalHotspotId {
        self.assign((t as f64).rem_euclid(self.circle.period))
    }

    /// Hotspot centers in seconds of day, ascending.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Points assigned to each hotspot during detection.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of hotspots.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// True if no hotspots were found (never true after `detect`).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Nearest hotspot to second-of-day `s` on the circle.
    pub fn assign(&self, s: f64) -> TemporalHotspotId {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &c) in self.centers.iter().enumerate() {
            let d = self.circle.dist(s, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        TemporalHotspotId(best as u32)
    }

    /// The hotspot's center second of day.
    pub fn center(&self, id: TemporalHotspotId) -> f64 {
        self.centers[id.idx()]
    }
}

/// Per-hotspot assignment counts of `points` against the center grid,
/// sharded over points and merged by element-wise addition — integer
/// counts, so the parallel total is identical to the serial loop.
fn nearest_counts(index: &Grid2D, points: &[GeoPoint], n_centers: usize) -> Vec<usize> {
    par::par_accumulate(
        points,
        || vec![0usize; n_centers],
        |acc, _, p| acc[index.nearest(*p) as usize] += 1,
        |total, acc| {
            for (t, a) in total.iter_mut().zip(acc) {
                *t += a;
            }
        },
    )
}

fn assign_counts(centers: &[f64], values: &[f64], circle: Circular1D) -> Vec<usize> {
    par::par_accumulate(
        values,
        || vec![0usize; centers.len()],
        |acc, _, &v| {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, &c) in centers.iter().enumerate() {
                let d = circle.dist(v, c);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            acc[best] += 1;
        },
        |total, acc| {
            for (t, a) in total.iter_mut().zip(acc) {
                *t += a;
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::rng::{normal, wrapped_normal};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn spatial_detects_planted_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [
            GeoPoint::new(34.00, -118.20),
            GeoPoint::new(34.10, -118.40),
            GeoPoint::new(33.80, -118.30),
        ];
        let mut pts = Vec::new();
        for c in &centers {
            for _ in 0..300 {
                pts.push(GeoPoint::new(
                    normal(&mut rng, c.lat, 0.005),
                    normal(&mut rng, c.lon, 0.005),
                ));
            }
        }
        let hs = SpatialHotspots::detect(&pts, MeanShiftParams::with_bandwidth(0.02), 5);
        assert_eq!(hs.len(), 3, "{:?}", hs.centers());
        for c in &centers {
            let id = hs.assign(*c);
            assert!(hs.center(id).dist(c) < 0.005);
        }
        assert_eq!(hs.counts().iter().sum::<usize>(), pts.len());
    }

    #[test]
    fn spatial_min_support_drops_noise_modes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pts: Vec<GeoPoint> = (0..500)
            .map(|_| {
                GeoPoint::new(normal(&mut rng, 0.0, 0.004), normal(&mut rng, 0.0, 0.004))
            })
            .collect();
        // One isolated outlier far away.
        pts.push(GeoPoint::new(1.0, 1.0));
        let strict = SpatialHotspots::detect(&pts, MeanShiftParams::with_bandwidth(0.02), 5);
        assert_eq!(strict.len(), 1);
        let lax = SpatialHotspots::detect(&pts, MeanShiftParams::with_bandwidth(0.02), 1);
        assert_eq!(lax.len(), 2);
    }

    #[test]
    fn temporal_detects_morning_and_evening_peaks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut secs = Vec::new();
        for _ in 0..400 {
            secs.push(wrapped_normal(&mut rng, 8.5 * 3600.0, 1800.0, 86_400.0));
            secs.push(wrapped_normal(&mut rng, 21.0 * 3600.0, 1800.0, 86_400.0));
        }
        let hs = TemporalHotspots::detect(&secs, MeanShiftParams::with_bandwidth(3600.0), 10);
        assert_eq!(hs.len(), 2, "{:?}", hs.centers());
        // Centers are sorted ascending.
        assert!(hs.centers()[0] < hs.centers()[1]);
        assert!((hs.centers()[0] - 8.5 * 3600.0).abs() < 1200.0);
        assert!((hs.centers()[1] - 21.0 * 3600.0).abs() < 1200.0);
        // Assignment picks the closest mode, wrapping across midnight.
        let late = hs.assign(23.5 * 3600.0);
        assert_eq!(hs.center(late), hs.centers()[1]);
        assert_eq!(hs.counts().iter().sum::<usize>(), secs.len());
    }

    #[test]
    fn temporal_peak_straddling_midnight() {
        let mut rng = StdRng::seed_from_u64(4);
        let secs: Vec<f64> = (0..500)
            .map(|_| wrapped_normal(&mut rng, 23.8 * 3600.0, 1500.0, 86_400.0))
            .collect();
        let hs = TemporalHotspots::detect(&secs, MeanShiftParams::with_bandwidth(3600.0), 10);
        assert_eq!(hs.len(), 1, "{:?}", hs.centers());
        let circle = Circular1D::new(86_400.0);
        assert!(circle.dist(hs.centers()[0], 23.8 * 3600.0) < 1200.0);
    }

    #[test]
    fn from_centers_round_trips_assignment() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<GeoPoint> = (0..300)
            .map(|_| {
                GeoPoint::new(
                    normal(&mut rng, 34.0, 0.02),
                    normal(&mut rng, -118.2, 0.02),
                )
            })
            .collect();
        let params = MeanShiftParams::with_bandwidth(0.01);
        let detected = SpatialHotspots::detect(&pts, params, 2);
        let rebuilt = SpatialHotspots::from_centers(detected.centers(), params);
        assert_eq!(rebuilt.len(), detected.len());
        for p in pts.iter().step_by(7) {
            assert_eq!(rebuilt.assign(*p), detected.assign(*p));
        }
        // Counts are intentionally zeroed on rebuild.
        assert!(rebuilt.counts().iter().all(|&c| c == 0));

        let secs: Vec<f64> = (0..200)
            .map(|_| wrapped_normal(&mut rng, 20.0 * 3600.0, 3600.0, 86_400.0))
            .collect();
        let tdetected = TemporalHotspots::detect(&secs, MeanShiftParams::with_bandwidth(1800.0), 2);
        let trebuilt = TemporalHotspots::from_centers(tdetected.centers());
        assert_eq!(trebuilt.centers(), tdetected.centers());
        for &s in secs.iter().step_by(7) {
            assert_eq!(trebuilt.assign(s), tdetected.assign(s));
        }
    }

    #[test]
    #[should_panic]
    fn from_centers_rejects_empty() {
        SpatialHotspots::from_centers(&[], MeanShiftParams::with_bandwidth(0.01));
    }

    #[test]
    #[should_panic]
    fn spatial_rejects_empty() {
        SpatialHotspots::detect(&[], MeanShiftParams::with_bandwidth(0.01), 1);
    }

    #[test]
    #[should_panic]
    fn temporal_rejects_empty() {
        TemporalHotspots::detect(&[], MeanShiftParams::with_bandwidth(1800.0), 1);
    }
}
