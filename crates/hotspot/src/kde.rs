//! Kernel density estimation (paper §4.3).
//!
//! `f(x) = 1/(n·h^d) Σ K(‖x − x_i‖ / h)` with the kernels of
//! [`crate::kernel`]. Two concrete estimators are provided: planar 2-D
//! (locations) and circular 1-D (time of day), each with index-accelerated
//! evaluation.

use mobility::GeoPoint;

use crate::grid::Grid2D;
use crate::kernel::Kernel;
use crate::space::{Circular1D, Space};

/// KDE over 2-D geographic points, grid-indexed.
#[derive(Debug, Clone)]
pub struct SpatialKde {
    grid: Grid2D,
    kernel: Kernel,
    bandwidth: f64,
    n: usize,
}

impl SpatialKde {
    /// Builds the estimator. Panics on empty data or non-positive bandwidth.
    pub fn new(points: &[GeoPoint], kernel: Kernel, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let cell = bandwidth * kernel.support_radius();
        Self {
            grid: Grid2D::build(points, cell),
            kernel,
            bandwidth,
            n: points.len(),
        }
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: GeoPoint) -> f64 {
        let radius = self.bandwidth * self.kernel.support_radius();
        let mut sum = 0.0;
        self.grid.for_each_within(x, radius, |_, p| {
            sum += self.kernel.value(x.dist(&p) / self.bandwidth);
        });
        sum / (self.n as f64 * self.bandwidth * self.bandwidth)
    }
}

/// KDE on the circle `[0, period)`, backed by a sorted array.
#[derive(Debug, Clone)]
pub struct CircularKde {
    sorted: Vec<f64>,
    circle: Circular1D,
    kernel: Kernel,
    bandwidth: f64,
}

impl CircularKde {
    /// Builds the estimator over values wrapped into `[0, period)`.
    pub fn new(values: &[f64], period: f64, kernel: Kernel, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(!values.is_empty(), "KDE needs at least one value");
        let circle = Circular1D::new(period);
        assert!(
            bandwidth * kernel.support_radius() < period / 2.0,
            "window must not wrap past half the circle"
        );
        let mut sorted: Vec<f64> = values.iter().map(|&v| circle.wrap(v)).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Self {
            sorted,
            circle,
            kernel,
            bandwidth,
        }
    }

    /// Number of data values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no values (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Calls `f` for every value within `radius` of `x` on the circle.
    pub fn for_each_within<F: FnMut(f64)>(&self, x: f64, radius: f64, mut f: F) {
        let x = self.circle.wrap(x);
        let period = self.circle.period;
        // The window may wrap; scan as up to two linear ranges.
        let lo = x - radius;
        let hi = x + radius;
        let mut scan = |a: f64, b: f64| {
            let start = self.sorted.partition_point(|&v| v < a);
            let end = self.sorted.partition_point(|&v| v <= b);
            for &v in &self.sorted[start..end] {
                f(v);
            }
        };
        if lo < 0.0 {
            scan(0.0, hi);
            scan(lo + period, period);
        } else if hi > period {
            scan(lo, period);
            scan(0.0, hi - period);
        } else {
            scan(lo, hi);
        }
    }

    /// Density estimate at `x` on the circle.
    pub fn density(&self, x: f64) -> f64 {
        let radius = self.bandwidth * self.kernel.support_radius();
        let mut sum = 0.0;
        self.for_each_within(x, radius, |v| {
            sum += self.kernel.value(self.circle.dist(x, v) / self.bandwidth);
        });
        sum / (self.sorted.len() as f64 * self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::rng::normal;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn spatial_density_peaks_at_cluster_center() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<GeoPoint> = (0..500)
            .map(|_| GeoPoint::new(normal(&mut rng, 1.0, 0.05), normal(&mut rng, 2.0, 0.05)))
            .collect();
        let kde = SpatialKde::new(&pts, Kernel::Epanechnikov, 0.1);
        let center = kde.density(GeoPoint::new(1.0, 2.0));
        let off = kde.density(GeoPoint::new(1.5, 2.5));
        assert!(center > 10.0 * off.max(1e-9), "center {center} off {off}");
    }

    #[test]
    fn spatial_density_integrates_to_roughly_one() {
        // Monte-Carlo check over a box containing all the mass.
        let mut rng = StdRng::seed_from_u64(2);
        let pts: Vec<GeoPoint> = (0..300)
            .map(|_| GeoPoint::new(normal(&mut rng, 0.0, 0.2), normal(&mut rng, 0.0, 0.2)))
            .collect();
        let kde = SpatialKde::new(&pts, Kernel::Epanechnikov, 0.15);
        // The Epanechnikov kernel used here is a product over the radial
        // distance, unnormalized for d=2; check it integrates to a stable
        // constant (the 2-D normalizer of the radial profile, 3/(2π)·2π/4…)
        // rather than asserting exactly 1: grid integration at step ds.
        let ds = 0.02;
        let mut integral = 0.0;
        let mut x = -1.5;
        while x < 1.5 {
            let mut y = -1.5;
            while y < 1.5 {
                integral += kde.density(GeoPoint::new(x, y)) * ds * ds;
                y += ds;
            }
            x += ds;
        }
        // ∫K(‖u‖)du over R² for K(u)=0.75(1−u²) on the unit disc is
        // 0.75·π·(1 − 1/2) = 0.375π ≈ 1.178.
        let expected = 0.375 * std::f64::consts::PI;
        assert!(
            (integral - expected).abs() < 0.05,
            "integral {integral} vs {expected}"
        );
    }

    #[test]
    fn circular_density_peaks_at_mode_and_wraps() {
        let mut rng = StdRng::seed_from_u64(3);
        // Mode at 23.8 h on a 24 h circle.
        let vals: Vec<f64> = (0..400)
            .map(|_| (normal(&mut rng, 23.8, 0.3)).rem_euclid(24.0))
            .collect();
        let kde = CircularKde::new(&vals, 24.0, Kernel::Epanechnikov, 0.5);
        let at_mode = kde.density(23.8);
        let wrapped = kde.density(0.1); // just past midnight, still near mode
        let off = kde.density(12.0);
        assert!(at_mode > wrapped);
        assert!(wrapped > 5.0 * off.max(1e-9), "wrapped {wrapped} off {off}");
    }

    #[test]
    fn circular_window_enumerates_both_sides_of_midnight() {
        let kde = CircularKde::new(&[23.9, 0.1, 12.0], 24.0, Kernel::Epanechnikov, 0.5);
        let mut seen = Vec::new();
        kde.for_each_within(0.0, 0.5, |v| seen.push(v));
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, vec![0.1, 23.9]);
        assert_eq!(kde.len(), 3);
        assert!(!kde.is_empty());
    }

    #[test]
    fn pruned_spatial_density_matches_naive_full_scan() {
        // The grid prunes candidates to cells within the kernel support
        // radius (Epanechnikov has compact support: points beyond `h`
        // contribute exactly zero), so the pruned sum must equal the naive
        // all-points sum to floating-point noise.
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<GeoPoint> = (0..800)
            .map(|_| GeoPoint::new(normal(&mut rng, 0.0, 0.3), normal(&mut rng, 0.5, 0.4)))
            .collect();
        for kernel in [Kernel::Epanechnikov, Kernel::Gaussian] {
            let h = 0.12;
            let kde = SpatialKde::new(&pts, kernel, h);
            // Epanechnikov is exactly zero past `h`, so the pruned sum must
            // match an untruncated full scan; the Gaussian is compared
            // against a scan truncated at the same support radius it is
            // documented to use.
            let cutoff = kernel.support_radius();
            let naive = |x: GeoPoint| {
                let sum: f64 = pts
                    .iter()
                    .map(|p| x.dist(p) / h)
                    .filter(|&u| kernel == Kernel::Epanechnikov || u <= cutoff)
                    .map(|u| kernel.value(u))
                    .sum();
                sum / (pts.len() as f64 * h * h)
            };
            for q in [
                GeoPoint::new(0.0, 0.5),
                GeoPoint::new(0.3, 0.1),
                GeoPoint::new(-0.4, 0.9),
                GeoPoint::new(2.0, 2.0),
            ] {
                let pruned = kde.density(q);
                let full = naive(q);
                assert!(
                    (pruned - full).abs() <= 1e-12 * full.max(1.0),
                    "{kernel:?} at {q:?}: pruned {pruned} vs naive {full}"
                );
            }
        }
    }

    #[test]
    fn pruned_circular_density_matches_naive_full_scan() {
        let mut rng = StdRng::seed_from_u64(8);
        let vals: Vec<f64> = (0..600)
            .map(|_| normal(&mut rng, 23.5, 1.0).rem_euclid(24.0))
            .collect();
        let h = 0.7;
        let kde = CircularKde::new(&vals, 24.0, Kernel::Epanechnikov, h);
        let circle = Circular1D::new(24.0);
        let naive = |x: f64| {
            let sum: f64 = vals
                .iter()
                .map(|&v| Kernel::Epanechnikov.value(circle.dist(x, v) / h))
                .sum();
            sum / (vals.len() as f64 * h)
        };
        for q in [23.5, 0.2, 23.9, 12.0, 6.5] {
            let pruned = kde.density(q);
            let full = naive(q);
            assert!(
                (pruned - full).abs() <= 1e-12 * full.max(1.0),
                "at {q}: pruned {pruned} vs naive {full}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn circular_rejects_oversized_bandwidth() {
        CircularKde::new(&[1.0], 24.0, Kernel::Gaussian, 5.0); // 5*3 > 12
    }

    #[test]
    #[should_panic]
    fn spatial_rejects_zero_bandwidth() {
        SpatialKde::new(&[GeoPoint::new(0.0, 0.0)], Kernel::Epanechnikov, 0.0);
    }
}
