//! Uniform grid index over 2-D points.
//!
//! Mean-shift issues many "all points within `h` of x" queries; a uniform
//! grid with cell size `h` answers each from at most 3×3 cells. The same
//! index also accelerates nearest-hotspot assignment (§4.3) by searching
//! outward ring by ring.

use mobility::GeoPoint;

/// A uniform grid over a bounding box, storing point indices per cell.
#[derive(Debug, Clone)]
pub struct Grid2D {
    cell: f64,
    min_lat: f64,
    min_lon: f64,
    n_rows: usize,
    n_cols: usize,
    cells: Vec<Vec<u32>>,
    points: Vec<GeoPoint>,
}

impl Grid2D {
    /// Builds a grid with cell size `cell` over `points`.
    ///
    /// Panics if `cell` is not positive or `points` is empty.
    pub fn build(points: &[GeoPoint], cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        assert!(!points.is_empty(), "grid needs at least one point");
        let mut min_lat = f64::INFINITY;
        let mut max_lat = f64::NEG_INFINITY;
        let mut min_lon = f64::INFINITY;
        let mut max_lon = f64::NEG_INFINITY;
        for p in points {
            min_lat = min_lat.min(p.lat);
            max_lat = max_lat.max(p.lat);
            min_lon = min_lon.min(p.lon);
            max_lon = max_lon.max(p.lon);
        }
        let n_rows = (((max_lat - min_lat) / cell).floor() as usize + 1).max(1);
        let n_cols = (((max_lon - min_lon) / cell).floor() as usize + 1).max(1);
        let mut cells = vec![Vec::new(); n_rows * n_cols];
        let mut grid = Self {
            cell,
            min_lat,
            min_lon,
            n_rows,
            n_cols,
            cells: Vec::new(),
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            let (r, c) = grid.cell_of(*p);
            cells[r * n_cols + c].push(i as u32);
        }
        grid.cells = cells;
        grid
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the grid indexes no points (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    #[inline]
    fn cell_of(&self, p: GeoPoint) -> (usize, usize) {
        let r = ((p.lat - self.min_lat) / self.cell).floor();
        let c = ((p.lon - self.min_lon) / self.cell).floor();
        (
            (r.max(0.0) as usize).min(self.n_rows - 1),
            (c.max(0.0) as usize).min(self.n_cols - 1),
        )
    }

    /// Calls `f` with the index and position of every point within `radius`
    /// of `q`. `radius` must be ≤ the build cell size for the 3×3 scan to be
    /// exhaustive; larger radii scan proportionally more rings.
    pub fn for_each_within<F: FnMut(u32, GeoPoint)>(&self, q: GeoPoint, radius: f64, mut f: F) {
        let rings = (radius / self.cell).ceil() as isize;
        let (qr, qc) = self.cell_of(q);
        let r2 = radius * radius;
        for dr in -rings..=rings {
            let r = qr as isize + dr;
            if r < 0 || r >= self.n_rows as isize {
                continue;
            }
            for dc in -rings..=rings {
                let c = qc as isize + dc;
                if c < 0 || c >= self.n_cols as isize {
                    continue;
                }
                for &i in &self.cells[r as usize * self.n_cols + c as usize] {
                    let p = self.points[i as usize];
                    if q.dist2(&p) <= r2 {
                        f(i, p);
                    }
                }
            }
        }
    }

    /// Collects the points within `radius` of `q`.
    pub fn within(&self, q: GeoPoint, radius: f64) -> Vec<GeoPoint> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |_, p| out.push(p));
        out
    }

    /// Index of the nearest point to `q`, searching outward ring by ring.
    pub fn nearest(&self, q: GeoPoint) -> u32 {
        let (qr, qc) = self.cell_of(q);
        let mut best: Option<(u32, f64)> = None;
        let max_rings = self.n_rows.max(self.n_cols) as isize;
        for ring in 0..=max_rings {
            // Any point in a cell of Chebyshev ring `ring` is at least
            // (ring − 1)·cell away from q, so once the best candidate beats
            // that lower bound no further ring can improve on it.
            if let Some((_, best_d2)) = best {
                let lower = ((ring - 1).max(0)) as f64 * self.cell;
                if lower * lower > best_d2 {
                    break;
                }
            }
            // Scan the cells of this ring.
            for dr in -ring..=ring {
                let r = qr as isize + dr;
                if r < 0 || r >= self.n_rows as isize {
                    continue;
                }
                for dc in -ring..=ring {
                    if dr.abs() != ring && dc.abs() != ring {
                        continue; // interior already scanned
                    }
                    let c = qc as isize + dc;
                    if c < 0 || c >= self.n_cols as isize {
                        continue;
                    }
                    for &i in &self.cells[r as usize * self.n_cols + c as usize] {
                        let d2 = q.dist2(&self.points[i as usize]);
                        if best.is_none_or(|(_, bd)| d2 < bd) {
                            best = Some((i, d2));
                        }
                    }
                }
            }
        }
        best.expect("grid is non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<GeoPoint> {
        vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(0.1, 0.1),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(5.0, 5.0),
        ]
    }

    #[test]
    fn within_matches_brute_force() {
        let points = pts();
        let g = Grid2D::build(&points, 0.5);
        for q in &points {
            for radius in [0.05, 0.3, 0.5] {
                let got = g.within(*q, radius).len();
                let want = points.iter().filter(|p| q.dist(p) <= radius).count();
                assert_eq!(got, want, "q={q:?} r={radius}");
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let points = pts();
        let g = Grid2D::build(&points, 0.5);
        let queries = [
            GeoPoint::new(0.05, 0.05),
            GeoPoint::new(0.9, 0.9),
            GeoPoint::new(10.0, 10.0),
            GeoPoint::new(-3.0, 2.0),
            GeoPoint::new(2.5, 2.5),
        ];
        for q in queries {
            let got = g.nearest(q) as usize;
            let want = points
                .iter()
                .enumerate()
                .min_by(|a, b| q.dist2(a.1).partial_cmp(&q.dist2(b.1)).unwrap())
                .unwrap()
                .0;
            assert_eq!(
                q.dist2(&points[got]),
                q.dist2(&points[want]),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn single_point_grid() {
        let g = Grid2D::build(&[GeoPoint::new(3.0, 4.0)], 1.0);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        assert_eq!(g.nearest(GeoPoint::new(-100.0, 100.0)), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_points() {
        Grid2D::build(&[], 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_cell() {
        Grid2D::build(&pts(), 0.0);
    }

    #[test]
    fn for_each_within_reports_indices() {
        let points = pts();
        let g = Grid2D::build(&points, 1.0);
        let mut seen = Vec::new();
        g.for_each_within(GeoPoint::new(0.0, 0.0), 0.2, |i, _| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }
}
