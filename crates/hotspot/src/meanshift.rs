//! Mean-shift mode seeking (paper Eq. 1).
//!
//! With the Epanechnikov kernel the mean-shift update is exactly
//! `y ← mean(points within bandwidth of y)`; the sequence converges to a
//! local maximum of the kernel density (a *hotspot*, Definition 5).
//! Converged points within a merge radius are collapsed into one mode.

use crate::space::Space;

/// Mean-shift hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct MeanShiftParams {
    /// Window radius `h` of Eq. 1.
    pub bandwidth: f64,
    /// Maximum shift iterations per seed.
    pub max_iters: usize,
    /// Convergence threshold on the shift magnitude.
    pub tolerance: f64,
    /// Converged points closer than this are the same mode.
    pub merge_radius: f64,
    /// Upper bound on the number of seeds; data larger than this is
    /// strided deterministically. The paper seeds from every point (§4.3);
    /// striding only risks missing modes whose basin contains no seed,
    /// which assignment counts expose.
    pub max_seeds: usize,
}

impl MeanShiftParams {
    /// Reasonable defaults for a given bandwidth.
    pub fn with_bandwidth(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0);
        Self {
            bandwidth,
            max_iters: 60,
            tolerance: bandwidth * 1e-3,
            merge_radius: bandwidth * 0.5,
            max_seeds: 4096,
        }
    }

    /// Bandwidth from Silverman's rule of thumb,
    /// `h = 1.06 · σ · n^(−1/(d+4))`, where σ is the mean per-dimension
    /// standard deviation of the `d`-dimensional sample (given here as
    /// column slices). A data-driven default when no domain bandwidth is
    /// known; mean-shift practitioners often shrink it (the rule targets
    /// density smoothing, not mode seeking), which `scale` supports.
    pub fn silverman(columns: &[&[f64]], scale: f64) -> Self {
        assert!(!columns.is_empty(), "need at least one dimension");
        let n = columns[0].len();
        assert!(n > 1, "need at least two points");
        assert!(
            columns.iter().all(|c| c.len() == n),
            "columns must share a length"
        );
        assert!(scale > 0.0);
        let d = columns.len() as f64;
        let mean_sd = columns
            .iter()
            .map(|col| {
                let mean = col.iter().sum::<f64>() / n as f64;
                (col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64)
                    .sqrt()
            })
            .sum::<f64>()
            / d;
        let h = 1.06 * mean_sd * (n as f64).powf(-1.0 / (d + 4.0)) * scale;
        Self::with_bandwidth(h.max(f64::MIN_POSITIVE))
    }
}

/// A detected density mode.
#[derive(Debug, Clone, Copy)]
pub struct Mode<P> {
    /// The mode's location.
    pub point: P,
    /// Number of seeds that converged into this mode.
    pub seeds: usize,
}

/// Mean-shift runner over a [`Space`].
#[derive(Debug, Clone)]
pub struct MeanShift<S: Space> {
    space: S,
    params: MeanShiftParams,
}

impl<S: Space> MeanShift<S> {
    /// Creates a runner.
    pub fn new(space: S, params: MeanShiftParams) -> Self {
        Self { space, params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &MeanShiftParams {
        &self.params
    }

    /// Shifts `start` to its density mode. `neighbors(q, out)` must fill
    /// `out` with all data points within `params.bandwidth` of `q`.
    pub fn seek_mode<F>(&self, start: S::Point, neighbors: &F) -> S::Point
    where
        F: Fn(S::Point, &mut Vec<S::Point>),
    {
        self.seek_mode_iters(start, neighbors).0
    }

    /// [`MeanShift::seek_mode`] plus the number of shift iterations spent,
    /// so `run` can feed the convergence histogram without a second pass.
    fn seek_mode_iters<F>(&self, start: S::Point, neighbors: &F) -> (S::Point, u64)
    where
        F: Fn(S::Point, &mut Vec<S::Point>),
    {
        let mut y = start;
        let mut window = Vec::new();
        for iter in 0..self.params.max_iters {
            window.clear();
            neighbors(y, &mut window);
            if window.is_empty() {
                // Isolated seed: it is its own mode.
                return (y, iter as u64);
            }
            let next = self.space.local_mean(y, &window);
            let shift = self.space.dist(y, next);
            y = next;
            if shift < self.params.tolerance {
                return (y, iter as u64 + 1);
            }
        }
        (y, self.params.max_iters as u64)
    }

    /// Runs mean-shift from (a stride of) `seeds` and merges converged
    /// points into modes, ordered by descending seed support.
    ///
    /// The seeking pass is data-parallel over seeds ([`par::threads`]
    /// workers): each seed's trajectory depends only on the data behind
    /// `neighbors`, never on other seeds, and every seed early-exits the
    /// moment its own shift falls below tolerance instead of marching in
    /// lockstep to `max_iters`. The merge then runs serially in seed order
    /// on the calling thread, so the returned modes are bit-identical to a
    /// single-threaded run for any thread count.
    pub fn run<F>(&self, seeds: &[S::Point], neighbors: F) -> Vec<Mode<S::Point>>
    where
        F: Fn(S::Point, &mut Vec<S::Point>) + Sync,
        S: Sync,
        S::Point: Send + Sync,
    {
        let _span = obs::span!("hotspot.meanshift");
        let iterations = obs::histogram("hotspot.meanshift.iterations");
        let seeds_run = obs::counter("hotspot.meanshift.seeds");
        let merged = obs::counter("hotspot.meanshift.modes_merged");
        let iters_saved = obs::counter("hotspot.meanshift.iters_saved");

        let stride = (seeds.len() / self.params.max_seeds.max(1)).max(1);
        let strided: Vec<S::Point> = seeds.iter().step_by(stride).copied().collect();
        let converged = par::par_map(&strided, |_, &seed| self.seek_mode_iters(seed, &neighbors));

        let mut modes: Vec<Mode<S::Point>> = Vec::new();
        for &(point, iters) in &converged {
            iterations.record(iters);
            iters_saved.add(self.params.max_iters as u64 - iters);
            seeds_run.incr();
            match modes
                .iter_mut()
                .find(|m| self.space.dist(m.point, point) <= self.params.merge_radius)
            {
                Some(m) => {
                    m.seeds += 1;
                    merged.incr();
                }
                None => modes.push(Mode { point, seeds: 1 }),
            }
        }
        obs::counter("hotspot.meanshift.modes").add(modes.len() as u64);
        modes.sort_by_key(|m| std::cmp::Reverse(m.seeds));
        modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Circular1D, Planar2D};
    use mobility::rng::normal;
    use mobility::GeoPoint;
    use rand::{rngs::StdRng, SeedableRng};

    fn planar_neighbors(data: Vec<GeoPoint>, h: f64) -> impl Fn(GeoPoint, &mut Vec<GeoPoint>) {
        move |q, out| {
            for p in &data {
                if q.dist(p) <= h {
                    out.push(*p);
                }
            }
        }
    }

    #[test]
    fn two_gaussians_give_two_modes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.push(GeoPoint::new(
                normal(&mut rng, 0.0, 0.05),
                normal(&mut rng, 0.0, 0.05),
            ));
            data.push(GeoPoint::new(
                normal(&mut rng, 1.0, 0.05),
                normal(&mut rng, 1.0, 0.05),
            ));
        }
        let params = MeanShiftParams::with_bandwidth(0.2);
        let ms = MeanShift::new(Planar2D, params);
        let modes = ms.run(&data.clone(), planar_neighbors(data, 0.2));
        assert_eq!(modes.len(), 2, "{modes:?}");
        let origin = GeoPoint::new(0.0, 0.0);
        let one = GeoPoint::new(1.0, 1.0);
        for m in &modes {
            let d = m.point.dist(&origin).min(m.point.dist(&one));
            assert!(d < 0.05, "mode {:?} off-center", m.point);
        }
    }

    #[test]
    fn modes_are_sorted_by_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut data = Vec::new();
        for _ in 0..300 {
            data.push(GeoPoint::new(
                normal(&mut rng, 0.0, 0.03),
                normal(&mut rng, 0.0, 0.03),
            ));
        }
        for _ in 0..50 {
            data.push(GeoPoint::new(
                normal(&mut rng, 1.0, 0.03),
                normal(&mut rng, 1.0, 0.03),
            ));
        }
        let ms = MeanShift::new(Planar2D, MeanShiftParams::with_bandwidth(0.15));
        let modes = ms.run(&data.clone(), planar_neighbors(data, 0.15));
        assert!(modes.len() >= 2);
        assert!(modes[0].seeds > modes[1].seeds);
        assert!(modes[0].point.dist(&GeoPoint::new(0.0, 0.0)) < 0.05);
    }

    #[test]
    fn isolated_seed_is_its_own_mode() {
        let data = vec![GeoPoint::new(5.0, 5.0)];
        let ms = MeanShift::new(Planar2D, MeanShiftParams::with_bandwidth(0.1));
        // Neighbor fn that never finds anything within range of the seed.
        let mode = ms.seek_mode(GeoPoint::new(0.0, 0.0), &planar_neighbors(data, 0.1));
        assert_eq!(mode, GeoPoint::new(0.0, 0.0));
    }

    #[test]
    fn circular_mode_across_midnight() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..300)
            .map(|_| normal(&mut rng, 23.9, 0.2).rem_euclid(24.0))
            .collect();
        let circle = Circular1D::new(24.0);
        let ms = MeanShift::new(circle, MeanShiftParams::with_bandwidth(0.5));
        let data2 = data.clone();
        let neighbors = move |q: f64, out: &mut Vec<f64>| {
            for &v in &data2 {
                if circle.dist(q, v) <= 0.5 {
                    out.push(v);
                }
            }
        };
        let modes = ms.run(&data, neighbors);
        assert_eq!(modes.len(), 1, "{modes:?}");
        let d = circle.dist(modes[0].point, 23.9);
        assert!(d < 0.15, "mode at {} (dist {d})", modes[0].point);
    }

    #[test]
    fn seed_striding_caps_work() {
        let data: Vec<GeoPoint> = (0..100)
            .map(|i| GeoPoint::new(i as f64 * 1e-4, 0.0))
            .collect();
        let mut params = MeanShiftParams::with_bandwidth(0.5);
        params.max_seeds = 10;
        let ms = MeanShift::new(Planar2D, params);
        let modes = ms.run(&data.clone(), planar_neighbors(data, 0.5));
        let total: usize = modes.iter().map(|m| m.seeds).sum();
        assert_eq!(total, 10, "{modes:?}");
    }

    #[test]
    #[should_panic]
    fn params_reject_bad_bandwidth() {
        MeanShiftParams::with_bandwidth(-1.0);
    }

    #[test]
    fn silverman_tracks_spread_and_sample_size() {
        let mut rng = StdRng::seed_from_u64(9);
        let tight: Vec<f64> = (0..500).map(|_| normal(&mut rng, 0.0, 0.01)).collect();
        let wide: Vec<f64> = (0..500).map(|_| normal(&mut rng, 0.0, 0.1)).collect();
        let h_tight = MeanShiftParams::silverman(&[&tight], 1.0).bandwidth;
        let h_wide = MeanShiftParams::silverman(&[&wide], 1.0).bandwidth;
        assert!(h_wide > 5.0 * h_tight, "{h_tight} vs {h_wide}");
        // More data → smaller bandwidth.
        let h_small_n = MeanShiftParams::silverman(&[&wide[..50]], 1.0).bandwidth;
        assert!(h_small_n > h_wide);
        // Scale multiplies through.
        let h_half = MeanShiftParams::silverman(&[&wide], 0.5).bandwidth;
        assert!((h_half - 0.5 * h_wide).abs() < 1e-12);
    }

    #[test]
    fn silverman_detects_planted_clusters_end_to_end() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut pts = Vec::new();
        for c in [(0.0, 0.0), (1.0, 1.0), (0.0, 1.0)] {
            for _ in 0..200 {
                pts.push(GeoPoint::new(
                    normal(&mut rng, c.0, 0.03),
                    normal(&mut rng, c.1, 0.03),
                ));
            }
        }
        let lats: Vec<f64> = pts.iter().map(|p| p.lat).collect();
        let lons: Vec<f64> = pts.iter().map(|p| p.lon).collect();
        // The raw rule oversmooths multi-modal data; the customary 0.3-0.5
        // shrink finds the modes.
        let params = MeanShiftParams::silverman(&[&lats, &lons], 0.3);
        let ms = MeanShift::new(Planar2D, params);
        let modes = ms.run(&pts.clone(), planar_neighbors(pts, params.bandwidth));
        assert_eq!(modes.len(), 3, "{modes:?}");
    }

    #[test]
    #[should_panic]
    fn silverman_rejects_single_point() {
        MeanShiftParams::silverman(&[&[1.0]], 1.0);
    }
}
