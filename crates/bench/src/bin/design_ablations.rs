//! Design-choice ablations beyond the paper's Table 4 — the decisions
//! DESIGN.md §2 calls out, each swept against test MRR on the
//! UTGEO2011-like preset:
//!
//! * embedding dimension `d` (the paper fixes d = 300),
//! * the negative-sampling degree exponent (the paper prints `d_v^4`;
//!   this reproduction reads it as the word2vec ¾ power — the sweep
//!   shows why the choice matters),
//! * learning-rate annealing on/off,
//! * spatial hotspot bandwidth (granularity of the `L` vertices).
//!
//! Run: `cargo run -p actor-bench --bin design_ablations --release [-- --fast]`

use actor_core::ActorConfig;
use benchkit::{dataset, Flags, ZooConfig};
use evalkit::report::{fmt_mrr, Table};
use evalkit::{evaluate_mrr, EvalParams, PredictionTask};
use mobility::synth::DatasetPreset;

fn eval_config(
    d: &benchkit::Dataset,
    config: &ActorConfig,
    seed: u64,
) -> (f64, f64, f64, actor_core::FitReport) {
    let (model, report) = actor_core::fit(&d.corpus, &d.split.train, config).expect("fit");
    let params = EvalParams {
        seed: seed ^ 0xE7A1,
        ..EvalParams::default()
    };
    let mrr = |task| evaluate_mrr(&model, &d.corpus, &d.split.test, task, &params);
    (
        mrr(PredictionTask::Text),
        mrr(PredictionTask::Location),
        mrr(PredictionTask::Time),
        report,
    )
}

fn main() {
    let flags = Flags::from_env();
    println!("== Design ablations (beyond Table 4) on synth-utgeo2011 ==\n");
    let d = dataset(DatasetPreset::Utgeo2011, flags.seed, flags.fast);
    let base = if flags.fast {
        ZooConfig::fast(flags.threads, flags.seed)
    } else {
        ZooConfig::standard(flags.threads, flags.seed)
    }
    .actor;

    // 1. Embedding dimension.
    println!("--- dimension sweep (paper uses d = 300) ---");
    let mut t = Table::new(["d", "Text", "Location", "Time", "train s"]);
    for dim in [32usize, 64, 128, 256] {
        let cfg = ActorConfig { dim, ..base.clone() };
        let (tx, lo, ti, rep) = eval_config(&d, &cfg, flags.seed);
        t.row([
            dim.to_string(),
            fmt_mrr(tx),
            fmt_mrr(lo),
            fmt_mrr(ti),
            format!("{:.1}", rep.train_seconds),
        ]);
        eprintln!("dim {dim} done");
    }
    println!("{}", t.render());

    // 2. Negative-sampling degree exponent.
    println!("--- noise-distribution exponent (P(v) ∝ d_v^p) ---");
    let mut t = Table::new(["p", "Text", "Location", "Time"]);
    for p in [0.0f64, 0.5, 0.75, 1.0] {
        let cfg = ActorConfig {
            negative_power: p,
            ..base.clone()
        };
        let (tx, lo, ti, _) = eval_config(&d, &cfg, flags.seed);
        t.row([format!("{p}"), fmt_mrr(tx), fmt_mrr(lo), fmt_mrr(ti)]);
        eprintln!("power {p} done");
    }
    println!("{}", t.render());
    println!("expected: 0.5-0.75 best; the paper's literal d_v^4 would be an\nextreme version of p=1 (oversampling hubs).\n");

    // 3. Learning-rate annealing.
    println!("--- learning-rate annealing ---");
    let mut t = Table::new(["anneal", "Text", "Location", "Time"]);
    for anneal in [true, false] {
        let cfg = ActorConfig {
            anneal,
            ..base.clone()
        };
        let (tx, lo, ti, _) = eval_config(&d, &cfg, flags.seed);
        t.row([anneal.to_string(), fmt_mrr(tx), fmt_mrr(lo), fmt_mrr(ti)]);
        eprintln!("anneal {anneal} done");
    }
    println!("{}", t.render());

    // 4. Hierarchical-initialization scale (Algorithm 1 line 4).
    println!("--- hierarchical init scale (unit ← scale × user vector) ---");
    let mut t = Table::new(["init_scale", "Text", "Location", "Time"]);
    for scale in [0.0f32, 0.25, 0.5, 1.0] {
        let cfg = ActorConfig {
            init_scale: scale,
            ..base.clone()
        };
        let (tx, lo, ti, _) = eval_config(&d, &cfg, flags.seed);
        t.row([format!("{scale}"), fmt_mrr(tx), fmt_mrr(lo), fmt_mrr(ti)]);
        eprintln!("init_scale {scale} done");
    }
    println!("{}", t.render());

    // 5. Spatial hotspot bandwidth (granularity of L vertices).
    println!("--- spatial bandwidth (hotspot granularity) ---");
    let mut t = Table::new(["bandwidth", "#spatial", "Text", "Location", "Time"]);
    for bw in [0.004f64, 0.008, 0.016, 0.032] {
        let cfg = ActorConfig {
            spatial_bandwidth: bw,
            ..base.clone()
        };
        let (tx, lo, ti, rep) = eval_config(&d, &cfg, flags.seed);
        t.row([
            format!("{bw}"),
            rep.n_spatial.to_string(),
            fmt_mrr(tx),
            fmt_mrr(lo),
            fmt_mrr(ti),
        ]);
        eprintln!("bandwidth {bw} done");
    }
    println!("{}", t.render());
    println!("expected: too-coarse hotspots merge distinct venues, too-fine ones\nstarve each vertex of training signal; the default sits between.");
}
