//! Measures the telemetry cost on the Hogwild hot loop: times LINE
//! training (the tightest instrumented loop — per-step counter batching
//! in `embed::sgd` plus the per-1024-sample flush in `embed::line`) on a
//! synthetic ring graph and prints throughput. Comparing this binary
//! against a build with the counters stubbed out bounds the obs overhead
//! (acceptance bar: ≤ 2 %).
//!
//! Run: `cargo run -p actor-bench --bin obs_overhead --release [samples] [threads]`

use std::time::Instant;

use embed::{LineOrder, LineParams, LineTrainer, SgdParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8_000_000);
    let threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // A 1000-vertex ring with chords: big enough that the alias tables
    // don't sit in L1 artificially, small enough to build instantly.
    let n = 1000u32;
    let mut edges = Vec::with_capacity(n as usize * 4);
    for i in 0..n {
        for d in 1..=4 {
            edges.push((i, (i + d) % n, 1.0));
        }
    }
    let trainer = LineTrainer::new(n as usize, &edges).expect("non-empty graph");

    println!("LINE second-order, dim 64, {samples} samples, {threads} threads");
    for round in 0..3 {
        let t = Instant::now();
        trainer.train(LineParams {
            dim: 64,
            samples,
            threads,
            sgd: SgdParams::default(),
            order: LineOrder::Second,
            seed: 7,
        });
        let secs = t.elapsed().as_secs_f64();
        println!(
            "round {round}: {secs:.3}s  ({:.2} M samples/s)",
            samples as f64 / secs / 1e6
        );
    }
    let steps = obs::counter("embed.sgd.steps").value();
    println!("embed.sgd.steps counted: {steps}");
}
