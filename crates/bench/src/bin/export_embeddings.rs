//! Exports a trained model's center vectors as TSV for external
//! visualization (e.g. the TensorFlow Embedding Projector): one
//! `vectors.tsv` with tab-separated floats and one `metadata.tsv` with
//! node type and label columns.
//!
//! Run: `cargo run -p actor-bench --bin export_embeddings --release [-- --fast]`
//! Output: `results/embedding_vectors.tsv`, `results/embedding_metadata.tsv`

use std::fmt::Write as _;
use std::fs;

use benchkit::{dataset, Flags, ZooConfig};
use mobility::types::format_time_of_day;
use stgraph::NodeType;

fn main() {
    let flags = Flags::from_env();
    eprintln!("fitting ACTOR on synth-tweet ...");
    let d = dataset(mobility::synth::DatasetPreset::Tweet, flags.seed, flags.fast);
    let cfg = if flags.fast {
        ZooConfig::fast(flags.threads, flags.seed)
    } else {
        ZooConfig::standard(flags.threads, flags.seed)
    }
    .actor;
    let (model, _) = actor_core::fit(&d.corpus, &d.split.train, &cfg).expect("fit");

    let space = *model.space();
    let mut vectors = String::new();
    let mut metadata = String::from("type\tlabel\n");
    for ty in NodeType::ALL {
        for node in space.nodes_of(ty) {
            let v = model.vector(node);
            let mut first = true;
            for x in v {
                if !first {
                    vectors.push('\t');
                }
                let _ = write!(vectors, "{x}");
                first = false;
            }
            vectors.push('\n');
            let local = space.local_of(node);
            let label = match ty {
                NodeType::Time => format_time_of_day(
                    model
                        .temporal_hotspots()
                        .center(hotspot::TemporalHotspotId(local)),
                ),
                NodeType::Location => {
                    let c = model
                        .spatial_hotspots()
                        .center(hotspot::SpatialHotspotId(local));
                    format!("({:.4},{:.4})", c.lat, c.lon)
                }
                NodeType::Word => model.vocab().word(mobility::KeywordId(local)).to_string(),
                NodeType::User => format!("user{local}"),
            };
            let _ = writeln!(metadata, "{}\t{}", ty.label(), label);
        }
    }
    fs::create_dir_all("results").expect("create results dir");
    fs::write("results/embedding_vectors.tsv", vectors).expect("write vectors");
    fs::write("results/embedding_metadata.tsv", metadata).expect("write metadata");
    println!(
        "exported {} x {} vectors to results/embedding_vectors.tsv (+ metadata)",
        space.len(),
        model.store().dim()
    );
}
