//! Tests the paper's "ACTOR significantly outperforms the
//! state-of-the-art" claim (§1): paired bootstrap CIs and sign-flip
//! permutation p-values for ACTOR vs CrossMap(U) — the strongest
//! baseline — on every dataset and task, over one shared query set.
//!
//! Run: `cargo run -p actor-bench --bin significance --release [-- --fast]`

use baselines::{train_crossmap, BaselineParams, CrossMapVariant, Substrate};
use benchkit::{dataset, Flags, ZooConfig};
use evalkit::report::Table;
use evalkit::significance::compare_paired;
use evalkit::{EvalParams, PredictionTask};
use mobility::synth::DatasetPreset;

fn main() {
    let flags = Flags::from_env();
    println!("== Significance: ACTOR vs CrossMap(U), paired on shared queries ==\n");

    let mut table = Table::new([
        "dataset", "task", "ACTOR", "CrossMap(U)", "diff 95% CI", "p", "significant",
    ]);
    for preset in DatasetPreset::ALL {
        let d = dataset(preset, flags.seed, flags.fast);
        let cfg = if flags.fast {
            ZooConfig::fast(flags.threads, flags.seed)
        } else {
            ZooConfig::standard(flags.threads, flags.seed)
        }
        .actor;
        eprintln!("[{}] fitting ACTOR ...", d.corpus.name);
        let (actor, _) = actor_core::fit(&d.corpus, &d.split.train, &cfg).expect("fit");
        eprintln!("[{}] fitting CrossMap(U) ...", d.corpus.name);
        let substrate = Substrate::build(&d.corpus, &d.split.train, &cfg);
        let crossmap = train_crossmap(
            &d.corpus,
            &substrate,
            CrossMapVariant::WithUsers,
            &BaselineParams::matched_to(&cfg),
        );
        let params = EvalParams {
            seed: flags.seed ^ 0xE7A1,
            ..EvalParams::default()
        };
        for task in PredictionTask::ALL {
            let cmp = compare_paired(
                &actor,
                &crossmap,
                &d.corpus,
                &d.split.test,
                task,
                &params,
            );
            table.row([
                d.corpus.name.clone(),
                task.label().to_string(),
                format!("{:.4}", cmp.mrr_a),
                format!("{:.4}", cmp.mrr_b),
                format!("[{:+.4}, {:+.4}]", cmp.diff_ci.0, cmp.diff_ci.1),
                format!("{:.4}", cmp.p_value),
                if cmp.significant() { "yes" } else { "no" }.to_string(),
            ]);
            eprintln!("[{}] {} done", d.corpus.name, task.label());
        }
    }
    println!("{}", table.render());
    println!(
        "reading: a CI above zero with p < 0.05 backs the paper's claim on\n\
         that dataset/task; CIs straddling zero mean the two methods tie\n\
         within noise at this corpus size."
    );
}
