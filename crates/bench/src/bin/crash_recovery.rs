//! Measures what the resilience layer costs and what it saves: times
//! plain `fit` against `fit_checkpointed` under the default checkpoint
//! policy (acceptance bar: ≤ 5 % overhead), then kills the checkpointed
//! run mid-training with a seeded [`FaultPlan`] and times the resumed
//! completion — the work saved is the epochs the resume did *not* have
//! to replay.
//!
//! Run: `cargo run -p actor-bench --bin crash_recovery --release [epochs] [rounds]`

use std::path::PathBuf;
use std::time::Instant;

use actor_core::{fit, fit_checkpointed, fit_resume, ActorConfig, ResilienceOptions};
use evalkit::{evaluate_mrr, EvalParams, PredictionTask};
use mobility::synth::{generate, DatasetPreset};
use mobility::{CorpusSplit, SplitSpec};
use resilience::FaultPlan;

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("actor-crash-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Process CPU seconds (utime + stime across all threads), or `None`
/// off-Linux. CPU time is the acceptance metric for checkpoint overhead:
/// the writer thread's serialization/CRC/copy work all lands here, while
/// shared-host wall-clock noise (CPU steal, disk-latency spikes) does
/// not.
fn cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Skip past the parenthesized comm field, which may contain spaces.
    let rest = stat.rsplit(") ").next()?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: f64 = fields.get(11)?.parse().ok()?;
    let stime: f64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) / 100.0)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let epochs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let rounds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(7)).expect("synth corpus");
    let split = CorpusSplit::new(&corpus, SplitSpec::default()).expect("split");
    let config = ActorConfig {
        max_epochs: epochs,
        seed: 7,
        ..ActorConfig::default()
    };

    println!(
        "== crash_recovery: {} records, {} epochs, default checkpoint policy ==\n",
        corpus.len(),
        epochs
    );

    // 1. Checkpoint overhead: paired plain / checkpointed rounds. One
    // untimed warm-up of each, then each timed round runs both fits
    // back-to-back under the same ambient conditions (page cache,
    // background flusher, scheduler) and contributes one time ratio;
    // the median ratio strips disk-latency outliers in either direction.
    let dir = ckpt_dir("overhead");
    let opts = ResilienceOptions::new(&dir);
    let _ = fit(&corpus, &split.train, &config).expect("plain fit");
    let _ = fit_checkpointed(&corpus, &split.train, &config, &opts).expect("ckpt fit");
    let mut best_plain = f64::INFINITY;
    let mut best_ckpt = f64::INFINITY;
    let mut cpu_plain = 0.0;
    let mut cpu_ckpt = 0.0;
    let mut ratios = Vec::with_capacity(rounds);
    let mut written = 0;
    for _ in 0..rounds {
        let c = cpu_seconds();
        let t = Instant::now();
        let _ = fit(&corpus, &split.train, &config).expect("plain fit");
        let plain = t.elapsed().as_secs_f64();
        best_plain = best_plain.min(plain);
        cpu_plain += cpu_seconds().zip(c).map_or(0.0, |(b, a)| b - a);

        let c = cpu_seconds();
        let t = Instant::now();
        let (_, _, res) = fit_checkpointed(&corpus, &split.train, &config, &opts).expect("ckpt fit");
        let ckpt = t.elapsed().as_secs_f64();
        best_ckpt = best_ckpt.min(ckpt);
        cpu_ckpt += cpu_seconds().zip(c).map_or(0.0, |(b, a)| b - a);
        ratios.push(ckpt / plain);
        written = res.checkpoints_written;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let wall_overhead = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    println!("plain fit:        {best_plain:.3}s wall (best of {rounds}), {cpu_plain:.2}s cpu (sum of {rounds})");
    println!("checkpointed fit: {best_ckpt:.3}s wall (best of {rounds}), {cpu_ckpt:.2}s cpu ({written} snapshots)");
    if cpu_plain > 0.0 && cpu_ckpt > 0.0 {
        let cpu_overhead = (cpu_ckpt / cpu_plain - 1.0) * 100.0;
        println!(
            "overhead:         {cpu_overhead:+.2}% cpu (bar: < 5%), {wall_overhead:+.2}% wall (median of {rounds} paired rounds)\n"
        );
    } else {
        println!("overhead:         {wall_overhead:+.2}% wall (median of {rounds} paired rounds; bar: < 5%)\n");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // 2. Crash and recover: kill past the halfway sample count, resume.
    let dir = ckpt_dir("crash");
    let mut opts = ResilienceOptions::new(&dir);
    let spe = 7 * config.batch_size as u64 * config.batches_per_type as u64;
    let kill_at = epochs as u64 / 2 * spe;
    opts.fault = Some(FaultPlan::new(7).with_worker_failure_after(kill_at));
    let t = Instant::now();
    let err = fit_checkpointed(&corpus, &split.train, &config, &opts).err();
    let until_crash = t.elapsed().as_secs_f64();
    println!("killed after {until_crash:.3}s: {err:?}");

    opts.fault = None;
    let t = Instant::now();
    let (model, _, res) = fit_resume(&corpus, &split.train, &config, &opts).expect("resume");
    let resume_secs = t.elapsed().as_secs_f64();
    let from = res.resumed_from.expect("resumed from a checkpoint").epoch;
    println!(
        "resumed from epoch {from}/{epochs} in {resume_secs:.3}s — skipped {:.0}% of the run",
        from as f64 / epochs as f64 * 100.0
    );

    let mrr = evaluate_mrr(
        &model,
        &corpus,
        &split.test,
        PredictionTask::Location,
        &EvalParams::default(),
    );
    println!("resumed-model location MRR: {mrr:.4}");
    let _ = std::fs::remove_dir_all(&dir);
}
