//! Regenerates **Fig. 12**: the scalability study on the TWEET-like
//! preset —
//!
//! * (a) running time vs number of sampled edges (×1..×4): linear,
//! * (b) strong scaling: fixed budget, threads 1..4: near-linear speedup,
//! * (c) weak scaling: budget and threads grow together: flat time,
//! * (d) preprocessing threads 1..4: hotspot detection + graph build
//!   (the data-parallel front-end; see `preprocess_scaling` for the
//!   dedicated 100k-record study).
//!
//! Run: `cargo run -p actor-bench --bin fig12_scalability --release [-- --fast]`

use std::time::Instant;

use actor_core::ActorConfig;
use benchkit::{dataset, Flags, ObsScope, ZooConfig};
use evalkit::report::Table;
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::GeoPoint;
use stgraph::{ActivityGraphBuilder, BuildOptions, UserGraph};

/// Fits ACTOR and returns the SGD-loop seconds (hotspots/graphs excluded,
/// matching the paper's "running time" which is the training loop).
fn train_seconds(corpus: &mobility::Corpus, train: &[mobility::RecordId], cfg: &ActorConfig) -> f64 {
    let (_, report) = actor_core::fit(corpus, train, cfg).expect("fit");
    report.train_seconds
}

fn main() {
    let _obs = ObsScope::start("fig12_scalability");
    let flags = Flags::from_env();
    println!("== Fig. 12: scalability of ACTOR on synth-tweet ==\n");

    let d = dataset(mobility::synth::DatasetPreset::Tweet, flags.seed, flags.fast);
    let base = if flags.fast {
        ZooConfig::fast(1, flags.seed)
    } else {
        ZooConfig::standard(1, flags.seed)
    }
    .actor;
    let base_samples = base.samples_per_type() * 7;

    // (a) edge-sample scaling, single thread.
    println!(
        "--- Fig. 12a: running time vs sampled edges (1 thread, base = {:.1}M samples) ---",
        base_samples as f64 / 1e6
    );
    let mut ta = Table::new(["edge multiple", "samples (M)", "seconds", "sec/base"]);
    let mut base_time = 0.0;
    for mult in 1..=4 {
        let cfg = ActorConfig {
            threads: 1,
            batches_per_type: base.batches_per_type * mult,
            ..base.clone()
        };
        let secs = train_seconds(&d.corpus, &d.split.train, &cfg);
        if mult == 1 {
            base_time = secs;
        }
        ta.row([
            format!("x{mult}"),
            format!("{:.1}", (base_samples * mult as u64) as f64 / 1e6),
            format!("{secs:.2}"),
            format!("{:.2}", secs / base_time),
        ]);
        eprintln!("12a x{mult}: {secs:.2}s");
    }
    println!("{}", ta.render());
    println!("expected: sec/base ≈ 1, 2, 3, 4 (linear in sampled edges)\n");

    // (b) strong scaling.
    println!("--- Fig. 12b: running time vs threads (fixed budget) ---");
    let mut tb = Table::new(["threads", "seconds", "speedup"]);
    let mut t1 = 0.0;
    for threads in 1..=4 {
        let cfg = ActorConfig {
            threads,
            ..base.clone()
        };
        let secs = train_seconds(&d.corpus, &d.split.train, &cfg);
        if threads == 1 {
            t1 = secs;
        }
        tb.row([
            threads.to_string(),
            format!("{secs:.2}"),
            format!("{:.2}", t1 / secs),
        ]);
        eprintln!("12b {threads} threads: {secs:.2}s");
    }
    println!("{}", tb.render());
    println!("expected: near-linear speedup (Hogwild, paper §6.5)\n");

    // (c) weak scaling.
    println!("--- Fig. 12c: threads and edges grow together ---");
    let mut tc = Table::new(["threads", "samples (M)", "seconds", "vs 1-thread"]);
    let mut w1 = 0.0;
    for threads in 1..=4 {
        let cfg = ActorConfig {
            threads,
            batches_per_type: base.batches_per_type * threads,
            ..base.clone()
        };
        let secs = train_seconds(&d.corpus, &d.split.train, &cfg);
        if threads == 1 {
            w1 = secs;
        }
        tc.row([
            threads.to_string(),
            format!("{:.1}", (base_samples * threads as u64) as f64 / 1e6),
            format!("{secs:.2}"),
            format!("{:.2}", secs / w1),
        ]);
        eprintln!("12c {threads} threads: {secs:.2}s");
    }
    println!("{}", tc.render());
    println!("expected: roughly constant time (good weak scaling, paper §6.5)\n");

    // (d) preprocessing threads: the data-parallel front-end (hotspot
    // detection + graph build) ahead of any SGD sample.
    println!("--- Fig. 12d: preprocessing time vs threads (detect + build) ---");
    let points: Vec<GeoPoint> = d
        .split
        .train
        .iter()
        .map(|&id| d.corpus.record(id).location)
        .collect();
    let seconds: Vec<f64> = d
        .split
        .train
        .iter()
        .map(|&id| d.corpus.record(id).second_of_day())
        .collect();
    let mut td = Table::new(["threads", "seconds", "speedup"]);
    let mut p1 = 0.0;
    for threads in 1..=4 {
        let guard = par::override_threads(threads);
        let t0 = Instant::now();
        let spatial =
            SpatialHotspots::detect(&points, MeanShiftParams::with_bandwidth(0.01), 3);
        let temporal =
            TemporalHotspots::detect(&seconds, MeanShiftParams::with_bandwidth(1800.0), 3);
        let builder =
            ActivityGraphBuilder::new(&d.corpus, &spatial, &temporal, BuildOptions::default());
        let (graph, _) = builder.build(&d.split.train);
        let _users = UserGraph::build(&d.corpus, &d.split.train);
        let secs = t0.elapsed().as_secs_f64();
        drop(guard);
        if threads == 1 {
            p1 = secs;
        }
        td.row([
            threads.to_string(),
            format!("{secs:.2}"),
            format!("{:.2}", p1 / secs.max(1e-9)),
        ]);
        eprintln!("12d {threads} threads: {secs:.2}s ({} edges)", graph.n_edges());
    }
    println!("{}", td.render());
    println!("expected: near-linear speedup with identical outputs (determinism suite)");
}
