//! Regenerates **Table 4**: the ablation test — ACTOR w/o inter,
//! ACTOR w/o intra, and ACTOR-complete across all datasets and tasks.
//!
//! Run: `cargo run -p actor-bench --bin table4 --release [-- --fast]`

use actor_core::Variant;
use benchkit::{dataset, paper, Flags, ZooConfig};
use evalkit::report::{fmt_mrr, Table};
use evalkit::{evaluate_mrr, EvalParams, PredictionTask};
use mobility::synth::DatasetPreset;

fn main() {
    let flags = Flags::from_env();
    println!("== Table 4: MRR for ablation test ==\n");

    let mut sums = vec![[0.0f64; 9]; Variant::ALL.len()];
    for run in 0..flags.runs {
        let run_seed = flags.seed + run as u64 * 211;
        for (di, preset) in DatasetPreset::ALL.into_iter().enumerate() {
            let d = dataset(preset, run_seed, flags.fast);
            let base_cfg = if flags.fast {
                ZooConfig::fast(flags.threads, run_seed)
            } else {
                ZooConfig::standard(flags.threads, run_seed)
            }
            .actor;
            for (vi, variant) in Variant::ALL.into_iter().enumerate() {
                let config = variant.apply(base_cfg.clone());
                eprintln!(
                    "[run {run}] fitting {} on {} ...",
                    variant.label(),
                    d.corpus.name
                );
                let (model, _) =
                    actor_core::fit(&d.corpus, &d.split.train, &config).expect("fit");
                let eval_params = EvalParams {
                    seed: run_seed ^ 0xE7A1,
                    ..EvalParams::default()
                };
                for (ti, task) in PredictionTask::ALL.into_iter().enumerate() {
                    sums[vi][di * 3 + ti] +=
                        evaluate_mrr(&model, &d.corpus, &d.split.test, task, &eval_params);
                }
            }
        }
    }

    let header = [
        "Variant",
        "utgeo:Text",
        "utgeo:Loc",
        "utgeo:Time",
        "tweet:Text",
        "tweet:Loc",
        "tweet:Time",
        "4sq:Text",
        "4sq:Loc",
        "4sq:Time",
    ];
    let mut table = Table::new(header);
    for (vi, variant) in Variant::ALL.into_iter().enumerate() {
        let mut cells = vec![variant.label().to_string()];
        cells.extend((0..9).map(|c| fmt_mrr(sums[vi][c] / flags.runs as f64)));
        table.row(cells);
    }
    println!("Measured (synthetic presets):\n{}", table.render());

    let mut ptable = Table::new(header);
    for (name, row) in paper::TABLE4 {
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|v| paper::cell(*v)));
        ptable.row(cells);
    }
    println!("Paper's Table 4 (original datasets):\n{}", ptable.render());
    println!(
        "Expected shape: removing either structure drops MRR slightly; the\n\
         inter-record structure matters most on utgeo (the only preset with\n\
         user mentions), while on tweet/4sq the author-unit links alone still\n\
         help (paper §6.3)."
    );
}
