//! Regenerates the **neighbor-search studies of §6.4** (Figs. 9-11):
//! a spatial query (the paper queries the port of Los Angeles), a
//! temporal query (10:00 pm), and a textual query (a venue keyword),
//! comparing ACTOR's neighbors against CrossMap's.
//!
//! Run: `cargo run -p actor-bench --bin fig9_11_neighbors --release [-- --fast]`

use baselines::{train_crossmap, BaselineParams, CrossMapVariant, Substrate};
use benchkit::{dataset, Flags, ZooConfig};
use evalkit::neighbor::{NeighborReport, NeighborSearcher};
use evalkit::report::Table;
use mobility::GeoPoint;

fn print_side_by_side(title: &str, a: &NeighborReport, b: &NeighborReport) {
    println!("--- {title} ---");
    println!("query: {}\n", a.query);
    let mut table = Table::new(["ACTOR word", "score", "CrossMap word", "score"]);
    for i in 0..a.words.len().max(b.words.len()) {
        let (aw, asc) = a
            .words
            .get(i)
            .map(|(w, s)| (w.clone(), format!("{s:.3}")))
            .unwrap_or_default();
        let (bw, bsc) = b
            .words
            .get(i)
            .map(|(w, s)| (w.clone(), format!("{s:.3}")))
            .unwrap_or_default();
        table.row([aw, asc, bw, bsc]);
    }
    println!("{}", table.render());

    let mut ttable = Table::new(["ACTOR time", "score", "CrossMap time", "score"]);
    for i in 0..a.times.len().max(b.times.len()).min(5) {
        let (at, asc) = a
            .times
            .get(i)
            .map(|(t, s)| (t.clone(), format!("{s:.3}")))
            .unwrap_or_default();
        let (bt, bsc) = b
            .times
            .get(i)
            .map(|(t, s)| (t.clone(), format!("{s:.3}")))
            .unwrap_or_default();
        ttable.row([at, asc, bt, bsc]);
    }
    println!("{}", ttable.render());

    let mut ptable = Table::new(["ACTOR place", "score", "CrossMap place", "score"]);
    for i in 0..a.places.len().max(b.places.len()).min(5) {
        let fmt = |p: &(GeoPoint, f64)| {
            (
                format!("({:.4},{:.4})", p.0.lat, p.0.lon),
                format!("{:.3}", p.1),
            )
        };
        let (ap, asc) = a.places.get(i).map(fmt).unwrap_or_default();
        let (bp, bsc) = b.places.get(i).map(fmt).unwrap_or_default();
        ptable.row([ap, asc, bp, bsc]);
    }
    println!("{}", ptable.render());
}

fn main() {
    let flags = Flags::from_env();
    println!("== Neighbor search (Figs. 9-11): ACTOR vs CrossMap on synth-tweet ==\n");

    let d = dataset(mobility::synth::DatasetPreset::Tweet, flags.seed, flags.fast);
    let zoo_cfg = if flags.fast {
        ZooConfig::fast(flags.threads, flags.seed)
    } else {
        ZooConfig::standard(flags.threads, flags.seed)
    };
    eprintln!("fitting ACTOR ...");
    let (actor, _) = actor_core::fit(&d.corpus, &d.split.train, &zoo_cfg.actor).expect("fit");
    eprintln!("fitting CrossMap ...");
    let substrate = Substrate::build(&d.corpus, &d.split.train, &zoo_cfg.actor);
    let crossmap = train_crossmap(
        &d.corpus,
        &substrate,
        CrossMapVariant::Plain,
        &BaselineParams::matched_to(&zoo_cfg.actor),
    );
    let cm = crossmap.model();
    let k = 10;
    // One searcher per model: the snapshot, scratch buffers, and cache are
    // built once and reused across all three figures' queries.
    let actor_search = NeighborSearcher::new(&actor);
    let cm_search = NeighborSearcher::new(cm);

    // Fig. 9 analogue: the "port" activity's anchor inside the LA bbox.
    // (The paper queries the port of LA at (33.7395, -118.2599).)
    let port = GeoPoint::new(33.7175, -118.2470);
    print_side_by_side(
        "Fig. 9: spatial query at the port anchor",
        &actor_search.spatial(port, k),
        &cm_search.spatial(port, k),
    );
    println!("expected: ACTOR's words are port-specific (dock/ship/berth...),\nCrossMap drifts to generic chatter.\n");

    // Fig. 10 analogue: 10:00 pm.
    let ten_pm = 22.0 * 3600.0;
    print_side_by_side(
        "Fig. 10: temporal query at 22:00",
        &actor_search.temporal(ten_pm, k),
        &cm_search.temporal(ten_pm, k),
    );
    println!("expected: both return late-evening hotspots; ACTOR's words name\nspecific nighttime activities.\n");

    // Fig. 11 analogue: a venue keyword (the paper queries a sports pub).
    let venue = "stadium_venue_0_00";
    match (
        actor_search.textual(venue, k),
        cm_search.textual(venue, k),
    ) {
        (Some(a), Some(b)) => {
            print_side_by_side(&format!("Fig. 11: textual query \"{venue}\""), &a, &b);
            println!("expected: neighbors name the venue's activity (game/score/team...)\nand nearby hotspots.\n");
        }
        _ => println!("venue token {venue} not in vocabulary — regenerate dataset"),
    }
}
