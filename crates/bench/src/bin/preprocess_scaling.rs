//! Preprocessing scalability: data-parallel hotspot detection + sharded
//! graph construction vs the serial front-end.
//!
//! Times the full pipeline front-end — spatial + temporal mean-shift
//! hotspot detection, sharded activity/user-graph co-occurrence counting,
//! per-type CSR/alias/negative-table builds, and meta-graph instance
//! counting — on a ~100k-record synthetic corpus across 1/2/4/8
//! preprocessing threads (`par::override_threads`). The outputs are held
//! bit-identical across thread counts by `tests/parallel_determinism.rs`;
//! this bin cross-checks the cheap invariants (hotspot and edge counts)
//! on every run.
//!
//! The full run asserts the ISSUE acceptance bar — ≥ 3× combined
//! detect+build speedup at 8 threads vs 1 — when the host actually has
//! ≥ 8 cores (threads beyond the core count cannot speed anything up, so
//! the bar is meaningless on smaller hosts and is reported but not
//! enforced there).
//!
//! Run: `cargo run -p actor-bench --release --bin preprocess_scaling [-- --smoke]`

use std::time::Instant;

use benchkit::ObsScope;
use evalkit::report::Table;
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::synth::{generate, DatasetPreset};
use mobility::{Corpus, GeoPoint, RecordId};
use stgraph::{
    ActivityGraphBuilder, BuildOptions, EdgeSampler, EdgeType, MetaGraph, NegativeTable,
    UserGraph,
};

struct Args {
    smoke: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 20140801,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; usage: [--smoke] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Cheap per-run invariants; the determinism suite holds the strong
/// bit-identical contract, this keeps the bench honest about measuring
/// the same work at every thread count.
#[derive(Debug, PartialEq)]
struct Shape {
    n_spatial: usize,
    n_temporal: usize,
    n_edges: usize,
    n_user_edges: usize,
    m4_instances: f64,
}

/// Runs the complete preprocessing front-end and returns (seconds, shape).
fn run_front_end(corpus: &Corpus, ids: &[RecordId]) -> (f64, Shape) {
    let t0 = Instant::now();

    let points: Vec<GeoPoint> = ids.iter().map(|&id| corpus.record(id).location).collect();
    let seconds: Vec<f64> = ids.iter().map(|&id| corpus.record(id).second_of_day()).collect();
    let spatial = SpatialHotspots::detect(&points, MeanShiftParams::with_bandwidth(0.01), 3);
    let temporal = TemporalHotspots::detect(&seconds, MeanShiftParams::with_bandwidth(1800.0), 3);

    let builder = ActivityGraphBuilder::new(corpus, &spatial, &temporal, BuildOptions::default());
    let (graph, _units) = builder.build(ids);
    let user_graph = UserGraph::build(corpus, ids);

    let mut tables = 0usize;
    for ty in EdgeType::ALL {
        if EdgeSampler::new(&graph, ty).is_some() {
            tables += 1;
        }
        let (a, b) = ty.endpoints();
        for side in [a, b] {
            if NegativeTable::new(&graph, ty, side).is_some() {
                tables += 1;
            }
        }
    }
    assert!(tables >= 4, "degenerate corpus: only {tables} sampler tables");

    let m4 = MetaGraph::M4.count_instances(&graph, &user_graph);

    let secs = t0.elapsed().as_secs_f64();
    (
        secs,
        Shape {
            n_spatial: spatial.len(),
            n_temporal: temporal.len(),
            n_edges: graph.n_edges(),
            n_user_edges: user_graph.n_edges(),
            m4_instances: m4,
        },
    )
}

fn main() {
    let _obs = ObsScope::start("preprocess_scaling");
    let args = parse_args();
    let n_records = if args.smoke { 6_000 } else { 100_000 };

    // Utgeo2011 has mentions, so the user graph and all the UT/UL/UW
    // tables plus inter meta-graph counting are part of the measured work.
    let mut cfg = DatasetPreset::Utgeo2011.config(args.seed);
    cfg.n_records = n_records;
    let t0 = Instant::now();
    let (corpus, _) = generate(cfg).expect("synthesize corpus");
    let ids: Vec<RecordId> = (0..corpus.len()).map(RecordId::from).collect();
    println!(
        "== preprocess_scaling: {} records{} (corpus built in {:.2}s) ==",
        corpus.len(),
        if args.smoke { " (smoke)" } else { "" },
        t0.elapsed().as_secs_f64()
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cores: {cores}\n");

    let mut table = Table::new(["threads", "detect+build (s)", "speedup"]);
    let mut t1 = 0.0f64;
    let mut speedup_at_8 = 0.0f64;
    let mut reference: Option<Shape> = None;
    for threads in [1usize, 2, 4, 8] {
        let guard = par::override_threads(threads);
        let (secs, shape) = run_front_end(&corpus, &ids);
        drop(guard);
        match &reference {
            None => reference = Some(shape),
            Some(r) => assert_eq!(
                *r, shape,
                "preprocessing output changed shape at {threads} threads"
            ),
        }
        if threads == 1 {
            t1 = secs;
        }
        let speedup = t1 / secs.max(1e-9);
        if threads == 8 {
            speedup_at_8 = speedup;
        }
        table.row([
            threads.to_string(),
            format!("{secs:.3}"),
            format!("{speedup:.2}x"),
        ]);
        eprintln!("{threads} threads: {secs:.3}s ({speedup:.2}x)");
    }
    println!("{}", table.render());
    let shape = reference.expect("at least one run");
    println!(
        "outputs: {} spatial / {} temporal hotspots, {} graph edges, {} user edges, M4 = {:.0}",
        shape.n_spatial, shape.n_temporal, shape.n_edges, shape.n_user_edges, shape.m4_instances
    );

    // Acceptance bar (full run on a big-enough host only): ≥ 3× combined
    // detect+build speedup at 8 threads vs 1.
    if !args.smoke && cores >= 8 {
        assert!(
            speedup_at_8 >= 3.0,
            "8-thread detect+build only {speedup_at_8:.2}x faster than 1 thread"
        );
        println!("preprocess_scaling: all assertions passed");
    } else if !args.smoke {
        println!(
            "speedup bar skipped: host has {cores} cores (< 8); measured {speedup_at_8:.2}x at 8 threads"
        );
    } else {
        println!("preprocess_scaling (smoke): shape invariants passed");
    }
}
