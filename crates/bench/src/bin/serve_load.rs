//! Load generator for the `actor-serve` query engine.
//!
//! Two phases:
//!
//! 1. **Index benchmark** — ANN (HNSW) vs brute-force top-10 over a
//!    synthetic clustered model, per modality: recall@10 and speedup.
//! 2. **Concurrent load** — worker threads fire a skewed mix of spatial /
//!    temporal / keyword / composite queries at one engine while a
//!    publisher hot-swaps fresh snapshots underneath them; reports QPS,
//!    latency percentiles (from the `serve.query.latency_us` obs
//!    histogram), cache hit rate, and asserts zero query failures.
//!
//! Run: `cargo run -p actor-bench --release --bin serve_load [-- --smoke]`
//!
//! `--smoke` shrinks the corpus and duration for CI; the full run (~12k
//! nodes per modality) additionally asserts the ISSUE acceptance bar:
//! ANN ≥ 10× faster than exact at recall@10 ≥ 0.95.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actor_core::TrainedModel;
use mobility::GeoPoint;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serve::hnsw::SearchScratch;
use serve::snapshot::Snapshot;
use serve::testkit::{probe_near, synthetic_model};
use serve::{EngineParams, QueryEngine, QueryRequest};
use stgraph::NodeType;

struct Args {
    smoke: bool,
    threads: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: 4,
        seed: 20140801,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    })
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; usage: [--smoke] [--threads N] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Phase 1: recall@10 and latency of ANN vs exact, per modality.
fn index_benchmark(
    model: &TrainedModel,
    snap: &Snapshot,
    n: usize,
    probes: usize,
    seed: u64,
    full: bool,
) {
    println!("-- phase 1: ANN vs brute force (top-10, {probes} probes/modality) --");
    let mut scratch = SearchScratch::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = snap.normalized().dim();
    for ty in [NodeType::Word, NodeType::Time, NodeType::Location] {
        let offset = snap.artifacts().space().offset(ty) as usize;
        // Pre-build normalized probe vectors near indexed rows.
        let queries: Vec<Vec<f32>> = (0..probes)
            .map(|i| {
                let raw = probe_near(model, offset + (i * 131) % n, 0.05, &mut rng);
                let mut unit = vec![0.0f32; dim];
                embed::math::normalize_into(&raw, &mut unit);
                unit
            })
            .collect();

        // Warm up, then time each path.
        let _ = snap.top_k(ty, &queries[0], 10, None, &mut scratch);
        let t0 = Instant::now();
        let ann: Vec<Vec<_>> = queries
            .iter()
            .map(|q| snap.top_k(ty, q, 10, None, &mut scratch))
            .collect();
        let ann_time = t0.elapsed();
        let t0 = Instant::now();
        let exact: Vec<Vec<_>> = queries
            .iter()
            .map(|q| snap.top_k_exact(ty, q, 10, &mut scratch))
            .collect();
        let exact_time = t0.elapsed();

        let mut hit = 0usize;
        let mut total = 0usize;
        for (a, e) in ann.iter().zip(&exact) {
            total += e.len();
            hit += e.iter().filter(|(id, _)| a.iter().any(|(aid, _)| aid == id)).count();
        }
        let recall = hit as f64 / total.max(1) as f64;
        let speedup = exact_time.as_secs_f64() / ann_time.as_secs_f64().max(1e-12);
        println!(
            "  {ty:?}: ann={} us/query  exact={} us/query  speedup={speedup:.1}x  recall@10={recall:.3}",
            ann_time.as_micros() / probes as u128,
            exact_time.as_micros() / probes as u128,
        );
        assert!(
            recall >= 0.95,
            "{ty:?} recall@10 {recall:.3} below the 0.95 bar"
        );
        if full {
            assert!(
                speedup >= 10.0,
                "{ty:?} ANN speedup {speedup:.1}x below the 10x bar at n={n}"
            );
        }
    }
}

/// Phase 2: concurrent mixed load with a hot-swapping publisher.
fn load_benchmark(
    engine: Arc<QueryEngine>,
    model: &TrainedModel,
    n: usize,
    args: &Args,
    duration: Duration,
) {
    println!(
        "-- phase 2: {} workers, publisher swapping every 250 ms, {} ms --",
        args.threads,
        duration.as_millis()
    );
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut publishes = 0u64;

    let answered: u64 = std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..args.threads as u64 {
            let engine = engine.clone();
            let stop = stop.clone();
            let seed = args.seed ^ (t + 1);
            workers.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut answered = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Square the draw for a skewed (cacheable) workload.
                    let u: f64 = rng.random::<f64>();
                    let i = ((u * u) * n as f64) as usize % n;
                    let req = match answered % 4 {
                        0 => QueryRequest::spatial(
                            GeoPoint::new(33.5 + (i % 97) as f64 * 0.01, -118.4),
                            10,
                        ),
                        1 => QueryRequest::temporal((i * 7919 % 86_400) as f64, 10),
                        2 => QueryRequest::keyword(format!("word{:05}", i), 10),
                        _ => QueryRequest::composite(
                            Some((i * 3571 % 86_400) as f64),
                            Some(GeoPoint::new(33.9, -118.1)),
                            vec![format!("word{:05}", i)],
                        )
                        .with_k(10),
                    };
                    // Acceptance bar: zero failures while snapshots swap.
                    engine.query(&req).expect("query failed under load");
                    answered += 1;
                }
                answered
            }));
        }

        // Publisher: rebuild + hot-swap on a fixed cadence.
        while started.elapsed() < duration {
            std::thread::sleep(Duration::from_millis(250).min(duration / 4));
            engine.publish(model);
            publishes += 1;
        }
        stop.store(true, Ordering::Relaxed);
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });

    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.stats();
    assert_eq!(stats.publishes, publishes);
    assert_eq!(stats.epoch, 1 + publishes);
    assert!(publishes >= 1, "load window too short to exercise hot-swap");

    let hist = obs::snapshot()
        .histograms
        .into_iter()
        .find(|h| h.name == "serve.query.latency_us")
        .expect("engine records query latency");
    println!(
        "  answered={answered} qps={:.0} p50={}us p95={}us p99={}us max={}us",
        answered as f64 / elapsed,
        hist.p50,
        hist.p95,
        hist.p99,
        hist.max
    );
    println!(
        "  cache: {} hits / {} misses ({:.1}% hit rate)  publishes={publishes}  final epoch={}",
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hits as f64 / stats.queries.max(1) as f64,
        stats.epoch
    );
    assert!(stats.cache_hits > 0, "skewed workload should hit the cache");
}

fn main() {
    let args = parse_args();
    let (n, dim, probes, duration) = if args.smoke {
        (2_500, 32, 50, Duration::from_millis(600))
    } else {
        (12_000, 64, 200, Duration::from_secs(3))
    };
    println!(
        "== serve_load: {n} nodes/modality, dim {dim}{} ==",
        if args.smoke { " (smoke)" } else { "" }
    );

    let t0 = Instant::now();
    let model = synthetic_model(n, dim, args.seed);
    println!("model built in {:.2}s", t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let engine = Arc::new(QueryEngine::new(&model, EngineParams::default()));
    let snap = engine.snapshot();
    println!(
        "snapshot + HNSW indexes built in {:.2}s (ANN: words={} times={} places={})",
        t0.elapsed().as_secs_f64(),
        snap.is_ann(NodeType::Word),
        snap.is_ann(NodeType::Time),
        snap.is_ann(NodeType::Location),
    );
    assert!(snap.is_ann(NodeType::Word), "corpus must exceed ANN threshold");

    index_benchmark(&model, &snap, n, probes, args.seed ^ 0xBEEF, !args.smoke);
    drop(snap);
    load_benchmark(engine, &model, n, &args, duration);
    println!("serve_load: all assertions passed");
}
