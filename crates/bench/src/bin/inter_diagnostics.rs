//! Decomposes the inter-record pathway on the mention-rich preset:
//! which of its three ingredients — mentioned-user edges, the hierarchical
//! initialization, the `M_inter` training itself — helps or hurts, and by
//! how much. A finer-grained companion to Table 4's single `w/o inter`
//! switch.
//!
//! Run: `cargo run -p actor-bench --bin inter_diagnostics --release [-- --fast]`

use actor_core::ActorConfig;
use benchkit::{dataset, Flags, ZooConfig};
use evalkit::report::{fmt_mrr, Table};
use evalkit::{evaluate_mrr, EvalParams, PredictionTask};
use mobility::synth::DatasetPreset;

fn main() {
    let flags = Flags::from_env();
    println!("== Inter-record pathway diagnostics (synth-utgeo2011) ==\n");
    let d = dataset(DatasetPreset::Utgeo2011, flags.seed, flags.fast);
    let base = if flags.fast {
        ZooConfig::fast(flags.threads, flags.seed)
    } else {
        ZooConfig::standard(flags.threads, flags.seed)
    }
    .actor;

    let variants: Vec<(&str, ActorConfig)> = vec![
        ("complete", base.clone()),
        (
            "no mentioned-user edges",
            ActorConfig {
                include_mentioned_users: false,
                ..base.clone()
            },
        ),
        (
            "no hierarchical init",
            ActorConfig {
                init_scale: 0.0,
                ..base.clone()
            },
        ),
        (
            "no inter at all (w/o inter)",
            ActorConfig {
                use_inter: false,
                ..base.clone()
            },
        ),
    ];

    let mut table = Table::new(["variant", "Text", "Location", "Time"]);
    for (name, config) in variants {
        let (model, _) = actor_core::fit(&d.corpus, &d.split.train, &config).expect("fit");
        let params = EvalParams {
            seed: flags.seed ^ 0xE7A1,
            ..EvalParams::default()
        };
        let mut cells = vec![name.to_string()];
        for task in PredictionTask::ALL {
            cells.push(fmt_mrr(evaluate_mrr(
                &model,
                &d.corpus,
                &d.split.test,
                task,
                &params,
            )));
        }
        table.row(cells);
        eprintln!("{name} done");
    }
    println!("{}", table.render());
}
