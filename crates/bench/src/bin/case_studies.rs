//! Regenerates the **case studies of §6.2.4**: Fig. 4/5 (activity
//! prediction ranking), Fig. 6/Table 3 (time prediction ranking), and
//! Fig. 7/8 (location prediction ranking) — ACTOR vs CrossMap on the
//! TWEET-like preset, one ranked candidate table per task.
//!
//! Run: `cargo run -p actor-bench --bin case_studies --release [-- --fast]`

use baselines::{train_crossmap, BaselineParams, CrossMapVariant, Substrate};
use benchkit::{dataset, Flags, ZooConfig};
use evalkit::casestudy::compare;
use evalkit::report::Table;
use evalkit::tasks::{build_queries, EvalParams, PredictionTask};
use evalkit::CrossModalModel;

fn main() {
    let flags = Flags::from_env();
    println!("== Case studies (Figs. 4-8, Table 3): ACTOR vs CrossMap ==\n");

    let d = dataset(mobility::synth::DatasetPreset::Tweet, flags.seed, flags.fast);
    let zoo_cfg = if flags.fast {
        ZooConfig::fast(flags.threads, flags.seed)
    } else {
        ZooConfig::standard(flags.threads, flags.seed)
    };
    eprintln!("fitting ACTOR on {} ...", d.corpus.name);
    let (actor, _) = actor_core::fit(&d.corpus, &d.split.train, &zoo_cfg.actor).expect("fit");
    eprintln!("fitting CrossMap ...");
    let substrate = Substrate::build(&d.corpus, &d.split.train, &zoo_cfg.actor);
    let crossmap = train_crossmap(
        &d.corpus,
        &substrate,
        CrossMapVariant::Plain,
        &BaselineParams::matched_to(&zoo_cfg.actor),
    );

    let queries = build_queries(
        &d.split.test,
        &EvalParams {
            seed: flags.seed ^ 0xCA5E,
            ..EvalParams::default()
        },
    );

    for task in PredictionTask::ALL {
        // Pick the first query where ACTOR ranks the truth strictly better
        // than CrossMap (the situation the paper's case studies illustrate),
        // falling back to the first query.
        let chosen = queries
            .iter()
            .find(|q| {
                let cs = compare(&actor, &crossmap, &d.corpus, q, task);
                cs.gt_rank_a() < cs.gt_rank_b() && cs.gt_rank_a() <= 2
            })
            .unwrap_or(&queries[0]);
        let cs = compare(&actor, &crossmap, &d.corpus, chosen, task);

        println!(
            "--- {} prediction (query record {:?}) ---",
            task.label(),
            chosen.record
        );
        let gt = d.corpus.record(chosen.record);
        let words: Vec<&str> = gt
            .keywords
            .iter()
            .map(|&k| d.corpus.vocab().word(k))
            .collect();
        println!(
            "ground truth: text=\"{}\" loc=({:.4},{:.4}) time={}",
            words.join(" "),
            gt.location.lat,
            gt.location.lon,
            mobility::types::format_time_of_day(gt.second_of_day()),
        );
        let mut table = Table::new(["Candidate", "GT", actor.name(), crossmap.name()]);
        for row in &cs.rows {
            let mut cand = row.candidate.clone();
            if cand.len() > 60 {
                cand.truncate(57);
                cand.push_str("...");
            }
            table.row([
                cand,
                if row.is_ground_truth { "*".into() } else { String::new() },
                row.rank_a.to_string(),
                row.rank_b.to_string(),
            ]);
        }
        println!("{}", table.render());
        println!(
            "ground-truth rank: ACTOR {} vs CrossMap {} (paper's examples: 1 vs 7, 1 vs 7, 1 vs 3)\n",
            cs.gt_rank_a(),
            cs.gt_rank_b()
        );
    }
}
