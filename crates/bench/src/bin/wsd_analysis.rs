//! Word-sense disambiguation analysis (paper §1's second motivation).
//!
//! The generator plants polysemous words ("rock" appears in both concert
//! and hiking records — the synthetic analogue of the paper's
//! "ape = imitate vs. Planet of the Apes" example). A model that treats
//! words individually embeds such a word between its senses; the
//! intra-record bag-of-words structure lets surrounding context pick the
//! sense. This binary measures, for every planted polysemous word:
//!
//! * the **bare margin** — how much closer the word alone is to sense A's
//!   home location than to sense B's (≈ 0 for a truly ambiguous word),
//! * the **contextual margin** — the same once two theme words of sense A
//!   join the query bag,
//!
//! under ACTOR-complete vs. ACTOR w/o intra. Expected: contextual margins
//! are strongly positive (context resolves the sense); the complete model
//! gains at least as much as the ablated one.
//!
//! Run: `cargo run -p actor-bench --bin wsd_analysis --release [-- --fast]`

use actor_core::{TrainedModel, Variant};
use benchkit::{dataset, Flags, ZooConfig};
use embed::math::cosine;
use evalkit::report::Table;
use mobility::synth::{Theme, POLYSEMOUS, THEMES};
use mobility::GeoPoint;

fn theme_by_name(name: &str) -> &'static Theme {
    THEMES
        .iter()
        .find(|t| t.name == name)
        .expect("polysemous entries reference catalogue themes")
}

fn anchor_point(theme: &Theme, bbox: (f64, f64, f64, f64)) -> GeoPoint {
    let (lat0, lon0, lat1, lon1) = bbox;
    GeoPoint::new(
        lat0 + theme.anchor.1 * (lat1 - lat0),
        lon0 + theme.anchor.0 * (lon1 - lon0),
    )
}

/// Margin of `query_words` toward theme A's home hotspot over theme B's.
fn margin(model: &TrainedModel, query: &[&str], a: GeoPoint, b: GeoPoint) -> Option<f64> {
    let ids: Option<Vec<_>> = query.iter().map(|w| model.vocab().get(w)).collect();
    let qv = model.text_vector(&ids?);
    let va = model.vector(model.location_node(a));
    let vb = model.vector(model.location_node(b));
    Some(cosine(&qv, va) - cosine(&qv, vb))
}

fn main() {
    let flags = Flags::from_env();
    println!("== Word-sense disambiguation analysis (synth-tweet) ==\n");
    let d = dataset(mobility::synth::DatasetPreset::Tweet, flags.seed, flags.fast);
    let bbox = mobility::synth::DatasetPreset::Tweet.config(flags.seed).bbox;
    let base = if flags.fast {
        ZooConfig::fast(flags.threads, flags.seed)
    } else {
        ZooConfig::standard(flags.threads, flags.seed)
    }
    .actor;

    eprintln!("fitting ACTOR-complete ...");
    let (complete, _) =
        actor_core::fit(&d.corpus, &d.split.train, &base).expect("fit complete");
    eprintln!("fitting ACTOR w/o intra ...");
    let (ablated, _) = actor_core::fit(
        &d.corpus,
        &d.split.train,
        &Variant::WithoutIntra.apply(base.clone()),
    )
    .expect("fit ablated");

    let n_activities = base_activity_count(&d);
    let mut table = Table::new([
        "word",
        "sense A",
        "sense B",
        "bare",
        "ctx (complete)",
        "ctx (w/o intra)",
    ]);
    let mut gains_complete = Vec::new();
    let mut gains_ablated = Vec::new();
    for (word, themes) in POLYSEMOUS {
        let [a_name, b_name] = [themes[0], themes[1]];
        let ta = theme_by_name(a_name);
        let tb = theme_by_name(b_name);
        // Both senses must be in the generated world (first n_activities
        // themes) for the comparison to exist.
        let in_world = |t: &Theme| THEMES.iter().position(|x| x.name == t.name).unwrap() < n_activities;
        if !in_world(ta) || !in_world(tb) {
            continue;
        }
        let pa = anchor_point(ta, bbox);
        let pb = anchor_point(tb, bbox);
        let context: Vec<&str> = ta.words.iter().take(2).copied().collect();
        let mut query = vec![*word];
        query.extend(&context);

        let (Some(bare), Some(ctx_c), Some(ctx_a)) = (
            margin(&complete, &[word], pa, pb),
            margin(&complete, &query, pa, pb),
            margin(&ablated, &query, pa, pb),
        ) else {
            continue;
        };
        gains_complete.push(ctx_c - bare);
        if let Some(bare_a) = margin(&ablated, &[word], pa, pb) {
            gains_ablated.push(ctx_a - bare_a);
        }
        table.row([
            word.to_string(),
            a_name.to_string(),
            b_name.to_string(),
            format!("{bare:+.3}"),
            format!("{ctx_c:+.3}"),
            format!("{ctx_a:+.3}"),
        ]);
    }
    println!("{}", table.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean disambiguation gain: complete {:+.3}, w/o intra {:+.3}",
        mean(&gains_complete),
        mean(&gains_ablated)
    );
    println!(
        "\nreading: 'bare' near zero = the lone word is genuinely ambiguous;\n\
         positive 'ctx' = two context words of sense A pull the query toward\n\
         sense A's home location (the paper's Fig. 1 / WSD argument)."
    );
}

fn base_activity_count(d: &benchkit::Dataset) -> usize {
    // The preset records the activity count in its ground truth range.
    d.ground_truth
        .location_activity
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}
