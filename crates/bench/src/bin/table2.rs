//! Regenerates **Table 2**: Mean Reciprocal Rank for cross-modal
//! retrieval — 8 methods × 3 datasets × 3 tasks, averaged over `--runs`
//! repetitions (the paper averages 5).
//!
//! Run: `cargo run -p actor-bench --bin table2 --release [-- --fast --runs 5]`

use benchkit::{dataset, paper, train_zoo, Flags, ZooConfig};
use evalkit::report::{fmt_mrr, Table};
use evalkit::{evaluate_mrr, EvalParams, PredictionTask};
use mobility::synth::DatasetPreset;

fn main() {
    let flags = Flags::from_env();
    println!(
        "== Table 2: MRR for cross-modal retrieval ({} run{}) ==\n",
        flags.runs,
        if flags.runs > 1 { "s" } else { "" }
    );

    // measured[method][dataset*3 + task] accumulated over runs.
    let method_names = [
        "LGTA",
        "MGTM",
        "metapath2vec",
        "LINE",
        "LINE(U)",
        "CrossMap",
        "CrossMap(U)",
        "ACTOR",
    ];
    let mut sums = vec![[0.0f64; 9]; method_names.len()];
    let mut supported = vec![[true; 9]; method_names.len()];

    for run in 0..flags.runs {
        let run_seed = flags.seed + run as u64 * 101;
        for (di, preset) in DatasetPreset::ALL.into_iter().enumerate() {
            let d = dataset(preset, run_seed, flags.fast);
            let zoo_cfg = if flags.fast {
                ZooConfig::fast(flags.threads, run_seed)
            } else {
                ZooConfig::standard(flags.threads, run_seed)
            };
            eprintln!("[run {run}] training zoo on {} ...", d.corpus.name);
            let zoo = train_zoo(&d.corpus, &d.split.train, &zoo_cfg);
            let eval_params = EvalParams {
                seed: run_seed ^ 0xE7A1,
                ..EvalParams::default()
            };
            for (mi, entry) in zoo.iter().enumerate() {
                assert_eq!(entry.name, method_names[mi], "zoo order drifted");
                for (ti, task) in PredictionTask::ALL.into_iter().enumerate() {
                    let col = di * 3 + ti;
                    if task == PredictionTask::Time && !entry.model.supports_time() {
                        supported[mi][col] = false;
                        continue;
                    }
                    let mrr = evaluate_mrr(
                        entry.model.as_ref(),
                        &d.corpus,
                        &d.split.test,
                        task,
                        &eval_params,
                    );
                    sums[mi][col] += mrr;
                }
                eprintln!(
                    "[run {run}] {:<14} {} done ({:.1}s train)",
                    entry.name, d.corpus.name, entry.train_seconds
                );
            }
        }
    }

    let mut table = Table::new([
        "Method",
        "utgeo:Text",
        "utgeo:Loc",
        "utgeo:Time",
        "tweet:Text",
        "tweet:Loc",
        "tweet:Time",
        "4sq:Text",
        "4sq:Loc",
        "4sq:Time",
    ]);
    for (mi, name) in method_names.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for col in 0..9 {
            if supported[mi][col] {
                cells.push(fmt_mrr(sums[mi][col] / flags.runs as f64));
            } else {
                cells.push("/".to_string());
            }
        }
        table.row(cells);
    }
    println!("\nMeasured (synthetic presets):\n{}", table.render());

    let mut ptable = Table::new([
        "Method",
        "utgeo:Text",
        "utgeo:Loc",
        "utgeo:Time",
        "tweet:Text",
        "tweet:Loc",
        "tweet:Time",
        "4sq:Text",
        "4sq:Loc",
        "4sq:Time",
    ]);
    for (name, row) in paper::TABLE2 {
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|v| paper::cell(*v)));
        ptable.row(cells);
    }
    println!("Paper's Table 2 (original datasets):\n{}", ptable.render());
    println!(
        "Expected shape (not absolute values): topic models < metapath2vec <\n\
         LINE < LINE(U)/CrossMap < CrossMap(U) < ACTOR; time MRRs far below\n\
         text/location; 4SQ columns highest."
    );
}
