//! Regenerates **Table 1**: dataset statistics — record counts, splits,
//! activity-graph scale (|V|, |E|), hotspot counts, vocabulary and user
//! counts — for the three synthetic presets, next to the paper's numbers.
//!
//! Run: `cargo run -p actor-bench --bin table1 --release [-- --fast]`

use actor_core::ActorConfig;
use baselines::Substrate;
use benchkit::{dataset, paper, Flags, ObsScope};
use evalkit::report::Table;
use mobility::synth::DatasetPreset;

fn main() {
    let _obs = ObsScope::start("table1");
    let flags = Flags::from_env();
    println!("== Table 1: statistics of datasets (synthetic presets) ==\n");

    let mut table = Table::new([
        "DATA", "#Tweets", "#Train", "#Valid", "#Test", "|V|", "|E|", "#Spatial", "#Temporal",
        "#Word", "#User",
    ]);
    for preset in DatasetPreset::ALL {
        let d = dataset(preset, flags.seed, flags.fast);
        let cfg = ActorConfig {
            threads: flags.threads,
            ..ActorConfig::default()
        };
        let substrate = Substrate::build(&d.corpus, &d.split.train, &cfg);
        let stats = substrate.graph_user.stats();
        let cstats = d.corpus.stats();
        table.row([
            d.corpus.name.clone(),
            d.corpus.len().to_string(),
            d.split.train.len().to_string(),
            d.split.valid.len().to_string(),
            d.split.test.len().to_string(),
            stats.n_nodes().to_string(),
            stats.n_edges().to_string(),
            substrate.spatial.len().to_string(),
            substrate.temporal.len().to_string(),
            d.corpus.vocab().len().to_string(),
            cstats.users.to_string(),
        ]);
        println!(
            "[{}] mention rate {:.1}% (paper reports 16.8% for UTGEO2011)",
            d.corpus.name,
            100.0 * cstats.mention_rate()
        );
    }
    println!("\n{}", table.render());

    println!("Paper's Table 1 (original datasets, for scale comparison):\n");
    let mut ptable = Table::new([
        "DATA", "#Tweets", "|V|", "|E|", "#Spatial", "#Temporal", "#Word", "#User",
    ]);
    for &(name, tweets, v, e, sp, te, w, u) in paper::TABLE1 {
        ptable.row([
            name.to_string(),
            tweets.to_string(),
            v.to_string(),
            e.to_string(),
            sp.to_string(),
            te.to_string(),
            w.to_string(),
            u.to_string(),
        ]);
    }
    println!("{}", ptable.render());
    println!(
        "Synthetic presets are scaled ~20-50x below the originals so the full\n\
         table-2 sweep runs on a laptop; structural ratios (mention rate, venue\n\
         coupling, vocabulary richness) follow the source datasets (DESIGN.md §3)."
    );
}
