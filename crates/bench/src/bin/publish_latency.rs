//! Publish-path latency: full snapshot rebuild vs incremental delta apply.
//!
//! Measures the cost of making a model generation servable, two ways:
//!
//! 1. **Full rebuild** — `Snapshot::build`: copy + normalize every row,
//!    rebuild every HNSW graph from scratch.
//! 2. **Delta apply** — `Snapshot::apply_delta`: reuse the previous
//!    snapshot's buffers, re-normalize only the dirty rows, re-insert only
//!    the drifted nodes into the per-modality HNSW graphs.
//!
//! Both paths are timed at 0.1%, 1%, and 10% dirty fractions over a
//! synthetic clustered model. The full run (12k nodes/modality) asserts
//! the ISSUE acceptance bar: delta apply at ≤ 1% dirty is ≥ 10× faster
//! than a full rebuild.
//!
//! Run: `cargo run -p actor-bench --release --bin publish_latency [-- --smoke]`

use std::time::{Duration, Instant};

use actor_core::TrainedModel;
use benchkit::ObsScope;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serve::snapshot::{IndexParams, Snapshot};
use serve::testkit::synthetic_model;

struct Args {
    smoke: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 20140801,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; usage: [--smoke] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Drifts `rows` random rows of `model` inside a fresh generation window
/// and returns the drained delta covering exactly those rows.
fn drift_rows(model: &mut TrainedModel, rows: usize, rng: &mut StdRng) -> actor_core::StoreDelta {
    let n = model.space().len();
    let sync = model.store().close_generation();
    for _ in 0..rows {
        let i = rng.random_range(0..n);
        let drifted: Vec<f32> = model
            .store()
            .centers
            .row(i)
            .iter()
            .map(|&x| x + rng.random_range(-0.05f32..0.05))
            .collect();
        model.store_mut().centers.set_row(i, &drifted);
    }
    model.store().drain_dirty(sync)
}

fn main() {
    let _obs = ObsScope::start("publish_latency");
    let args = parse_args();
    let (n, dim, reps) = if args.smoke { (2_000, 32, 2) } else { (12_000, 64, 5) };
    println!(
        "== publish_latency: {n} nodes/modality, dim {dim}{} ==",
        if args.smoke { " (smoke)" } else { "" }
    );

    let mut rng = StdRng::seed_from_u64(args.seed);
    let t0 = Instant::now();
    let mut model = synthetic_model(n, dim, args.seed);
    let total = model.space().len();
    println!("model built in {:.2}s ({total} nodes total)", t0.elapsed().as_secs_f64());

    let params = IndexParams::default();
    let t0 = Instant::now();
    let mut snap = Snapshot::build(&model, &params, 1);
    let base_build = t0.elapsed();
    println!("baseline full build: {:.1} ms", base_build.as_secs_f64() * 1e3);

    for &fraction in &[0.001f64, 0.01, 0.1] {
        let rows = ((total as f64 * fraction) as usize).max(1);
        let mut delta_total = Duration::ZERO;
        let mut build_total = Duration::ZERO;
        let mut dirty_rows = 0usize;
        for _ in 0..reps {
            let delta = drift_rows(&mut model, rows, &mut rng);
            dirty_rows += delta.dirty_rows();

            let t0 = Instant::now();
            let next = Snapshot::apply_delta(&snap, &model, &delta, &params, snap.epoch() + 1);
            delta_total += t0.elapsed();

            let t0 = Instant::now();
            let rebuilt = Snapshot::build(&model, &params, snap.epoch() + 1);
            build_total += t0.elapsed();
            drop(rebuilt);
            snap = next;
        }
        let delta_ms = delta_total.as_secs_f64() * 1e3 / reps as f64;
        let build_ms = build_total.as_secs_f64() * 1e3 / reps as f64;
        let speedup = build_ms / delta_ms.max(1e-9);
        println!(
            "  {:>5.1}% dirty ({:>5} rows/publish): delta apply {delta_ms:>8.2} ms  full rebuild {build_ms:>8.2} ms  speedup {speedup:>6.1}x",
            fraction * 100.0,
            dirty_rows / reps,
        );
        // Acceptance bar (full run only): ≤ 1% dirty must be ≥ 10× faster
        // than rebuilding from scratch.
        if !args.smoke && fraction <= 0.01 {
            assert!(
                speedup >= 10.0,
                "delta apply at {:.1}% dirty only {speedup:.1}x faster than full rebuild",
                fraction * 100.0
            );
        }
    }
    println!("publish_latency: all assertions passed");
}
