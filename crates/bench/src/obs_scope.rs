//! Binary-wide telemetry scope for the experiment binaries.
//!
//! Each `src/bin/` entry point opens one [`ObsScope`] at the top of
//! `main`. The scope starts the live [`obs::Reporter`] when
//! `ACTOR_OBS_INTERVAL_MS` is set and, when it drops at process exit,
//! prints the final aggregated stage tree to stderr and appends one
//! `{"type":"run",...}` line to the `ACTOR_OBS_JSON` file after the
//! reporter's snapshot stream ends (schema in `docs/OBSERVABILITY.md`).

use std::io::Write as _;

/// RAII guard bracketing a whole experiment run.
pub struct ObsScope {
    label: &'static str,
    baseline: obs::Snapshot,
    reporter: Option<obs::Reporter>,
}

impl ObsScope {
    /// Opens the scope; `label` names the binary in the run summary.
    pub fn start(label: &'static str) -> Self {
        Self {
            label,
            baseline: obs::snapshot(),
            reporter: obs::Reporter::from_env(),
        }
    }
}

impl Drop for ObsScope {
    fn drop(&mut self) {
        let telemetry = obs::RunTelemetry::since(&self.baseline);
        // Stop the reporter first so its final snapshot lands in the JSONL
        // before the run summary line.
        drop(self.reporter.take());
        eprintln!("\n-- telemetry: {} ({:.1}s) --", self.label, telemetry.wall_seconds);
        eprint!("{}", telemetry.render_tree());
        if let Ok(path) = std::env::var(obs::ENV_JSON) {
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| {
                    writeln!(
                        f,
                        "{{\"type\":\"run\",\"label\":\"{}\",\"data\":{}}}",
                        self.label,
                        telemetry.to_json()
                    )
                });
            if let Err(e) = appended {
                eprintln!("[obs] cannot append run summary to {path}: {e}");
            }
        }
    }
}
