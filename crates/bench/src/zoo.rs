//! The model zoo: trains every Table 2 method on one dataset.

use actor_core::{ActorConfig, TrainedModel};
use baselines::{
    train_crossmap, train_lgta, train_line, train_metapath2vec, train_mgtm, BaselineParams,
    CrossMapVariant, LgtaParams, LineVariant, MetapathParams, MgtmParams, Substrate,
};
use evalkit::CrossModalModel;
use mobility::{Corpus, RecordId};

/// Budgets for one zoo training run.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// ACTOR (and ablation) configuration; baselines are budget-matched.
    pub actor: ActorConfig,
}

impl ZooConfig {
    /// Standard budgets for the full-size presets.
    pub fn standard(threads: usize, seed: u64) -> Self {
        let actor = ActorConfig {
            dim: 128,
            threads,
            seed,
            max_epochs: 100,
            // 256-edge batches × 120 × 100 epochs ≈ 3.1M samples per edge
            // type — a few passes over each type's edges at preset scale.
            batches_per_type: 120,
            pretrain_samples: 2_000_000,
            ..ActorConfig::default()
        };
        Self { actor }
    }

    /// Reduced budgets for `--fast` runs.
    pub fn fast(threads: usize, seed: u64) -> Self {
        let actor = ActorConfig {
            threads,
            seed,
            ..ActorConfig::fast()
        };
        Self { actor }
    }
}

/// A trained zoo entry.
pub struct ZooModel {
    /// Report name (Table 2 row label).
    pub name: String,
    /// The model behind the evaluation trait.
    pub model: Box<dyn CrossModalModel>,
    /// Training wall-clock seconds.
    pub train_seconds: f64,
}

/// Trains every Table 2 method (paper row order) on one dataset.
pub fn train_zoo(corpus: &Corpus, train_ids: &[RecordId], config: &ZooConfig) -> Vec<ZooModel> {
    let actor_cfg = &config.actor;
    let base = BaselineParams::matched_to(actor_cfg);
    let substrate = Substrate::build(corpus, train_ids, actor_cfg);

    let mut zoo: Vec<ZooModel> = Vec::new();
    let mut push = |name: &str, seconds: f64, model: Box<dyn CrossModalModel>| {
        zoo.push(ZooModel {
            name: name.to_string(),
            model,
            train_seconds: seconds,
        });
    };

    let timed = |f: &mut dyn FnMut() -> Box<dyn CrossModalModel>| -> (f64, Box<dyn CrossModalModel>) {
        let t = std::time::Instant::now();
        let m = f();
        (t.elapsed().as_secs_f64(), m)
    };

    let (s, m) = timed(&mut || {
        Box::new(train_lgta(
            corpus,
            train_ids,
            actor_cfg,
            &LgtaParams::default(),
        ))
    });
    push("LGTA", s, m);

    let (s, m) = timed(&mut || {
        Box::new(train_mgtm(
            corpus,
            train_ids,
            actor_cfg,
            &MgtmParams::default(),
        ))
    });
    push("MGTM", s, m);

    let (s, m) = timed(&mut || {
        Box::new(train_metapath2vec(
            corpus,
            &substrate,
            &MetapathParams::default(),
            &base,
        ))
    });
    push("metapath2vec", s, m);

    let (s, m) = timed(&mut || {
        Box::new(train_line(corpus, &substrate, LineVariant::Plain, &base))
    });
    push("LINE", s, m);

    let (s, m) = timed(&mut || {
        Box::new(train_line(corpus, &substrate, LineVariant::WithUsers, &base))
    });
    push("LINE(U)", s, m);

    let (s, m) = timed(&mut || {
        Box::new(train_crossmap(
            corpus,
            &substrate,
            CrossMapVariant::Plain,
            &base,
        ))
    });
    push("CrossMap", s, m);

    let (s, m) = timed(&mut || {
        Box::new(train_crossmap(
            corpus,
            &substrate,
            CrossMapVariant::WithUsers,
            &base,
        ))
    });
    push("CrossMap(U)", s, m);

    let (s, m) = timed(&mut || {
        let (model, _) = actor_core::fit(corpus, train_ids, actor_cfg).expect("ACTOR fit");
        Box::new(model)
    });
    push("ACTOR", s, m);

    zoo
}

/// Trains only ACTOR (used by case studies and scalability binaries).
pub fn train_actor(corpus: &Corpus, train_ids: &[RecordId], config: &ActorConfig) -> TrainedModel {
    actor_core::fit(corpus, train_ids, config).expect("ACTOR fit").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::dataset;
    use mobility::synth::DatasetPreset;

    #[test]
    fn zoo_trains_all_eight_methods() {
        let d = dataset(DatasetPreset::Foursquare, 3, true);
        let mut cfg = ZooConfig::fast(2, 3);
        cfg.actor.max_epochs = 5;
        cfg.actor.batches_per_type = 4;
        cfg.actor.pretrain_samples = 20_000;
        let zoo = train_zoo(&d.corpus, &d.split.train, &cfg);
        let names: Vec<&str> = zoo.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "LGTA",
                "MGTM",
                "metapath2vec",
                "LINE",
                "LINE(U)",
                "CrossMap",
                "CrossMap(U)",
                "ACTOR"
            ]
        );
        // Topic models must report no time support; embeddings must.
        assert!(!zoo[0].model.supports_time());
        assert!(zoo[3].model.supports_time());
    }
}
