//! Shared harness code for the experiment binaries.
//!
//! One binary per paper table/figure lives in `src/bin/`; this library
//! holds the pieces they share: dataset generation, the model zoo,
//! paper-reference numbers, and a tiny CLI-flag helper. See DESIGN.md §4
//! for the experiment-to-binary index.

pub mod datasets;
pub mod flags;
pub mod obs_scope;
pub mod paper;
pub mod zoo;

pub use datasets::{dataset, Dataset};
pub use flags::Flags;
pub use obs_scope::ObsScope;
pub use zoo::{train_zoo, ZooConfig, ZooModel};
