//! Dataset generation for the experiment binaries.

use mobility::synth::{generate, DatasetPreset, GroundTruth};
use mobility::{Corpus, CorpusSplit, SplitSpec};

/// A generated dataset with its split and latent ground truth.
pub struct Dataset {
    /// The preset that produced it.
    pub preset: DatasetPreset,
    /// The corpus.
    pub corpus: Corpus,
    /// Train/valid/test record ids.
    pub split: CorpusSplit,
    /// Generator ground truth (for diagnostics only — no model sees it).
    pub ground_truth: GroundTruth,
}

/// Generates a preset's corpus and split. `fast` shrinks the corpus ~10×.
pub fn dataset(preset: DatasetPreset, seed: u64, fast: bool) -> Dataset {
    let mut config = preset.config(seed);
    if fast {
        config.n_records /= 10;
        config.n_users /= 5;
        config.n_communities /= 2;
    }
    let (corpus, ground_truth) = generate(config).expect("preset configs are valid");
    let split = CorpusSplit::new(
        &corpus,
        SplitSpec {
            seed: seed ^ 0x51_17,
            ..SplitSpec::default()
        },
    )
    .expect("default split fractions are valid");
    Dataset {
        preset,
        corpus,
        split,
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_dataset_generates_quickly_and_splits() {
        let d = dataset(DatasetPreset::Foursquare, 1, true);
        assert_eq!(d.corpus.len(), 2_000);
        assert_eq!(d.split.len(), d.corpus.len());
        assert!(!d.split.test.is_empty());
        assert_eq!(d.ground_truth.location_activity.len(), d.corpus.len());
    }
}
