//! Minimal CLI-flag parsing for the experiment binaries.

/// Flags shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Flags {
    /// `--fast`: shrink corpora and training budgets (~10× faster, same
    /// qualitative shape). Useful for smoke-testing a harness.
    pub fast: bool,
    /// `--threads N`: Hogwild worker threads (default 4).
    pub threads: usize,
    /// `--seed N`: base RNG seed.
    pub seed: u64,
    /// `--runs N`: repetitions to average (the paper averages 5 runs).
    pub runs: usize,
}

impl Default for Flags {
    fn default() -> Self {
        Self {
            fast: false,
            threads: 4,
            seed: 20140801,
            runs: 1,
        }
    }
}

impl Flags {
    /// Parses from an argument iterator (skip the program name first).
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Result<Self, String> {
        let mut flags = Self::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" => flags.fast = true,
                "--threads" => {
                    flags.threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--threads needs a positive integer")?;
                }
                "--seed" => {
                    flags.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed needs an integer")?;
                }
                "--runs" => {
                    flags.runs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--runs needs a positive integer")?;
                }
                "--help" | "-h" => {
                    return Err("usage: [--fast] [--threads N] [--seed N] [--runs N]".into())
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if flags.threads == 0 || flags.runs == 0 {
            return Err("--threads and --runs must be positive".into());
        }
        Ok(flags)
    }

    /// Parses from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(f) => f,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Flags, String> {
        Flags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let f = parse(&[]).unwrap();
        assert!(!f.fast);
        assert_eq!(f.threads, 4);
        assert_eq!(f.runs, 1);
    }

    #[test]
    fn all_flags() {
        let f = parse(&["--fast", "--threads", "2", "--seed", "7", "--runs", "3"]).unwrap();
        assert!(f.fast);
        assert_eq!(f.threads, 2);
        assert_eq!(f.seed, 7);
        assert_eq!(f.runs, 3);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
