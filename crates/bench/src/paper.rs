//! Reference numbers from the paper, printed next to measured values so
//! every run is a self-contained paper-vs-reproduction comparison.

/// A table row: method name plus nine MRR cells
/// (utgeo text/loc/time, tweet …, 4sq …); `None` marks "/" cells.
pub type MrrRow = (&'static str, [Option<f64>; 9]);

/// Table 2 as printed in the paper.
pub const TABLE2: &[MrrRow] = &[
    ("LGTA", [Some(0.3571), Some(0.3440), None, Some(0.4615), Some(0.4439), None, Some(0.5739), Some(0.5409), None]),
    ("MGTM", [Some(0.2993), Some(0.3022), None, Some(0.3615), Some(0.3619), None, Some(0.4538), Some(0.4191), None]),
    ("metapath2vec", [Some(0.5062), Some(0.5267), Some(0.3169), Some(0.5083), Some(0.5369), Some(0.2986), Some(0.8475), Some(0.8673), Some(0.3262)]),
    ("LINE", [Some(0.5433), Some(0.5442), Some(0.3427), Some(0.6246), Some(0.5997), Some(0.3235), Some(0.9076), Some(0.8954), Some(0.3637)]),
    ("LINE(U)", [Some(0.5830), Some(0.5798), Some(0.3578), Some(0.6315), Some(0.6066), Some(0.3297), Some(0.9078), Some(0.8972), Some(0.3719)]),
    ("CrossMap", [Some(0.5778), Some(0.6015), Some(0.3852), Some(0.6701), Some(0.6561), Some(0.3439), Some(0.9393), Some(0.9138), Some(0.3690)]),
    ("CrossMap(U)", [Some(0.5808), Some(0.6070), Some(0.3712), Some(0.6894), Some(0.6632), Some(0.3469), Some(0.9441), Some(0.9137), Some(0.3735)]),
    ("ACTOR", [Some(0.6207), Some(0.6275), Some(0.3885), Some(0.6991), Some(0.6805), Some(0.3509), Some(0.9519), Some(0.9211), Some(0.3758)]),
];

/// Table 4 (ablation) rows, same column layout as [`TABLE2`].
pub const TABLE4: &[MrrRow] = &[
    ("ACTOR w/o inter", [Some(0.6040), Some(0.6025), Some(0.3723), Some(0.6930), Some(0.6742), Some(0.3498), Some(0.9492), Some(0.9148), Some(0.3754)]),
    ("ACTOR w/o intra", [Some(0.6072), Some(0.6104), Some(0.3628), Some(0.6904), Some(0.6635), Some(0.3481), Some(0.9443), Some(0.9137), Some(0.3765)]),
    ("ACTOR-complete", [Some(0.6207), Some(0.6275), Some(0.3885), Some(0.6991), Some(0.6805), Some(0.3509), Some(0.9519), Some(0.9211), Some(0.3758)]),
];

/// A Table 1 row: (dataset, #tweets, |V|, |E|, #spatial, #temporal,
/// #word, #user) as reported in the paper.
pub type ScaleRow = (&'static str, u64, u64, u64, u64, u64, u64, u64);

/// Table 1 rows for scale comparison.
pub const TABLE1: &[ScaleRow] = &[
    ("UTGEO2011", 671_978, 148_287, 16_081_265, 8_946, 34, 20_000, 119_307),
    ("TWEET", 1_188_405, 174_578, 28_521_412, 10_420, 27, 20_000, 144_131),
    ("4SQ", 479_298, 73_048, 4_920_504, 11_456, 29, 3_973, 57_590),
];

/// Formats an optional MRR cell (the "/" convention of Table 2).
pub fn cell(v: Option<f64>) -> String {
    v.map_or_else(|| "/".to_string(), |x| format!("{x:.4}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_wins_every_populated_column_in_table2() {
        let actor = &TABLE2.last().unwrap().1;
        for (name, row) in &TABLE2[..TABLE2.len() - 1] {
            for (i, v) in row.iter().enumerate() {
                if let (Some(v), Some(a)) = (v, actor[i]) {
                    assert!(a > *v, "{name} beats ACTOR in column {i}");
                }
            }
        }
    }

    #[test]
    fn ablation_complete_row_matches_table2_actor() {
        assert_eq!(TABLE4[2].1, TABLE2[7].1);
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(cell(None), "/");
        assert_eq!(cell(Some(0.62066)), "0.6207");
    }
}
