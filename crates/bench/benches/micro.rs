//! Criterion microbenchmarks backing the paper's complexity claim
//! (§5.4: one optimization step costs `O(d(K+1))` given O(1) alias
//! sampling, overall `O(dK|E|)`):
//!
//! * alias-table build and draw,
//! * one negative-sampling SGD step (scalar in `d`),
//! * one mean-shift mode seek,
//! * activity-graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use embed::{EmbeddingStore, NegativeSamplingUpdate, SgdParams};
use hotspot::{MeanShiftParams, SpatialHotspots, TemporalHotspots};
use mobility::synth::{generate, DatasetPreset};
use mobility::GeoPoint;
use rand::{rngs::StdRng, Rng, SeedableRng};
use stgraph::{ActivityGraphBuilder, AliasTable, BuildOptions};

fn bench_alias(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let weights: Vec<f64> = (0..100_000).map(|_| rng.random_range(0.1..10.0)).collect();

    {
        let mut g = c.benchmark_group("alias_build");
        g.sample_size(30);
        g.bench_function("alias/build_100k", |b| {
            b.iter(|| AliasTable::new(black_box(&weights)).unwrap())
        });
        g.finish();
    }

    let table = AliasTable::new(&weights).unwrap();
    c.bench_function("alias/sample", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(table.sample(&mut rng)))
    });
}

fn bench_sgd_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgd/step");
    for dim in [32usize, 128, 300] {
        let mut rng = StdRng::seed_from_u64(3);
        let store = EmbeddingStore::init(1000, dim, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let mut upd = NegativeSamplingUpdate::new(dim, SgdParams::default());
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                let center = rng.random_range(0..1000);
                let ctx = rng.random_range(0..1000);
                upd.step(&store, center, ctx, &mut rng, |r| r.random_range(0..1000))
            })
        });
    }
    group.finish();
}

fn bench_meanshift(c: &mut Criterion) {
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(5)).unwrap();
    let points: Vec<GeoPoint> = corpus.records().iter().map(|r| r.location).collect();
    let seconds: Vec<f64> = corpus.records().iter().map(|r| r.second_of_day()).collect();

    let mut c = c.benchmark_group("meanshift");
    c.sample_size(10);
    c.bench_function("meanshift/spatial_3k", |b| {
        b.iter(|| {
            SpatialHotspots::detect(
                black_box(&points),
                MeanShiftParams::with_bandwidth(0.008),
                3,
            )
        })
    });
    c.bench_function("meanshift/temporal_3k", |b| {
        b.iter(|| {
            TemporalHotspots::detect(
                black_box(&seconds),
                MeanShiftParams::with_bandwidth(1800.0),
                3,
            )
        })
    });
    c.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let (corpus, _) = generate(DatasetPreset::Foursquare.small_config(6)).unwrap();
    let points: Vec<GeoPoint> = corpus.records().iter().map(|r| r.location).collect();
    let seconds: Vec<f64> = corpus.records().iter().map(|r| r.second_of_day()).collect();
    let spatial = SpatialHotspots::detect(&points, MeanShiftParams::with_bandwidth(0.008), 3);
    let temporal = TemporalHotspots::detect(&seconds, MeanShiftParams::with_bandwidth(1800.0), 3);
    let ids: Vec<mobility::RecordId> = (0..corpus.len()).map(mobility::RecordId::from).collect();

    let mut c = c.benchmark_group("graph");
    c.sample_size(10);
    c.bench_function("graph/build_3k_records", |b| {
        let builder =
            ActivityGraphBuilder::new(&corpus, &spatial, &temporal, BuildOptions::default());
        b.iter(|| builder.build(black_box(&ids)))
    });
    c.finish();
}

criterion_group!(
    benches,
    bench_alias,
    bench_sgd_step,
    bench_meanshift,
    bench_graph_build
);
criterion_main!(benches);
