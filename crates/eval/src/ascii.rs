//! Terminal-friendly ASCII rendering of spatial data.
//!
//! The paper's qualitative figures overlay results on a city map; a
//! terminal-first library settles for a character grid: density maps of
//! record locations and hotspot overlays that make `detect` output
//! legible at a glance in examples and experiment logs.

use mobility::GeoPoint;

/// Density shading ramp from empty to dense.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders points as a `width × height` character density grid.
/// Returns an empty string for no points.
pub fn density_map(points: &[GeoPoint], width: usize, height: usize) -> String {
    render(points, &[], width, height)
}

/// Like [`density_map`] with hotspot centers overlaid as `O`.
pub fn density_map_with_hotspots(
    points: &[GeoPoint],
    hotspots: &[GeoPoint],
    width: usize,
    height: usize,
) -> String {
    render(points, hotspots, width, height)
}

fn render(points: &[GeoPoint], hotspots: &[GeoPoint], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
    if points.is_empty() {
        return String::new();
    }
    let mut min_lat = f64::INFINITY;
    let mut max_lat = f64::NEG_INFINITY;
    let mut min_lon = f64::INFINITY;
    let mut max_lon = f64::NEG_INFINITY;
    for p in points.iter().chain(hotspots) {
        min_lat = min_lat.min(p.lat);
        max_lat = max_lat.max(p.lat);
        min_lon = min_lon.min(p.lon);
        max_lon = max_lon.max(p.lon);
    }
    let lat_span = (max_lat - min_lat).max(1e-12);
    let lon_span = (max_lon - min_lon).max(1e-12);
    let cell_of = |p: &GeoPoint| -> (usize, usize) {
        // Row 0 is the northern (max-lat) edge, like a map.
        let r = ((max_lat - p.lat) / lat_span * (height - 1) as f64).round() as usize;
        let c = ((p.lon - min_lon) / lon_span * (width - 1) as f64).round() as usize;
        (r.min(height - 1), c.min(width - 1))
    };

    let mut counts = vec![0usize; width * height];
    for p in points {
        let (r, c) = cell_of(p);
        counts[r * width + c] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(0).max(1);

    let mut grid: Vec<char> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                RAMP[0]
            } else {
                // Log shading: sparse cells stay visible next to dense ones.
                let level = ((c as f64).ln_1p() / (max_count as f64).ln_1p()
                    * (RAMP.len() - 1) as f64)
                    .ceil() as usize;
                RAMP[level.clamp(1, RAMP.len() - 1)]
            }
        })
        .collect();
    for h in hotspots {
        let (r, c) = cell_of(h);
        grid[r * width + c] = 'O';
    }

    let mut out = String::with_capacity((width + 1) * height);
    for row in grid.chunks(width) {
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_points_give_empty_map() {
        assert_eq!(density_map(&[], 10, 5), "");
    }

    #[test]
    fn grid_dimensions_match() {
        let pts = vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)];
        let map = density_map(&pts, 12, 6);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines.iter().all(|l| l.chars().count() == 12));
    }

    #[test]
    fn dense_cells_shade_darker_than_sparse() {
        let mut pts = Vec::new();
        for _ in 0..100 {
            pts.push(GeoPoint::new(0.0, 0.0)); // dense SW corner
        }
        pts.push(GeoPoint::new(1.0, 1.0)); // single point NE corner
        let map = density_map(&pts, 10, 10);
        let lines: Vec<&str> = map.lines().collect();
        // North row holds the lone NE point, south row the dense cell.
        let ne = lines[0].chars().last().unwrap();
        let sw = lines[9].chars().next().unwrap();
        let rank = |c: char| RAMP.iter().position(|&r| r == c).unwrap();
        assert!(rank(sw) > rank(ne), "sw {sw:?} vs ne {ne:?}");
    }

    #[test]
    fn hotspots_are_marked() {
        let pts = vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)];
        let map = density_map_with_hotspots(&pts, &[GeoPoint::new(0.0, 0.0)], 8, 8);
        assert!(map.contains('O'));
    }

    #[test]
    fn map_orientation_is_north_up() {
        // One point far north, one far south.
        let pts = vec![GeoPoint::new(10.0, 0.0), GeoPoint::new(0.0, 0.0)];
        let map = density_map(&pts, 5, 5);
        let lines: Vec<&str> = map.lines().collect();
        assert!(lines[0].trim() != "", "north point on top row");
        assert!(lines[4].trim() != "", "south point on bottom row");
        for l in &lines[1..4] {
            assert_eq!(l.trim(), "", "middle rows empty");
        }
    }

    #[test]
    #[should_panic]
    fn tiny_grid_rejected() {
        density_map(&[GeoPoint::new(0.0, 0.0)], 1, 5);
    }
}
