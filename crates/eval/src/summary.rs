//! Convenience: evaluate a model on all three tasks at once.

use mobility::{Corpus, RecordId};

use crate::model::CrossModalModel;
use crate::tasks::{build_queries, score_query, EvalParams, PredictionTask};

/// MRRs for one model across the three prediction tasks; `time` is `None`
/// for models without a temporal modality (Table 2's "/" cells).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSummary {
    /// Model name as reported by [`CrossModalModel::name`].
    pub model: String,
    /// Activity (text) prediction MRR.
    pub text: f64,
    /// Location prediction MRR.
    pub location: f64,
    /// Time prediction MRR, when supported.
    pub time: Option<f64>,
    /// Number of queries evaluated per task.
    pub n_queries: usize,
}

impl TaskSummary {
    /// The MRR for a task (Time may be absent).
    pub fn get(&self, task: PredictionTask) -> Option<f64> {
        match task {
            PredictionTask::Text => Some(self.text),
            PredictionTask::Location => Some(self.location),
            PredictionTask::Time => self.time,
        }
    }
}

/// Evaluates `model` on every task with one shared query set (queries are
/// built once, so all three MRRs use identical candidates).
pub fn evaluate_all<M: CrossModalModel + ?Sized>(
    model: &M,
    corpus: &Corpus,
    test_ids: &[RecordId],
    params: &EvalParams,
) -> TaskSummary {
    let queries = build_queries(test_ids, params);
    let mean = |task: PredictionTask| -> f64 {
        if queries.is_empty() {
            return 0.0;
        }
        queries
            .iter()
            .map(|q| score_query(model, corpus, q, task))
            .sum::<f64>()
            / queries.len() as f64
    };
    TaskSummary {
        model: model.name().to_string(),
        text: mean(PredictionTask::Text),
        location: mean(PredictionTask::Location),
        time: model.supports_time().then(|| mean(PredictionTask::Time)),
        n_queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::evaluate_mrr;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, GeoPoint, KeywordId, SplitSpec, Timestamp};

    struct LocOnly;
    impl CrossModalModel for LocOnly {
        fn score_location(&self, _: Timestamp, _: &[KeywordId], c: GeoPoint) -> f64 {
            -c.lat.abs()
        }
        fn score_time(&self, _: GeoPoint, _: &[KeywordId], _: Timestamp) -> f64 {
            0.0
        }
        fn score_text(&self, _: Timestamp, _: GeoPoint, c: &[KeywordId]) -> f64 {
            c.len() as f64
        }
        fn name(&self) -> &str {
            "loc-only"
        }
        fn supports_time(&self) -> bool {
            false
        }
    }

    #[test]
    fn summary_matches_per_task_evaluation() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(60)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let params = EvalParams {
            max_queries: 25,
            ..EvalParams::default()
        };
        let s = evaluate_all(&LocOnly, &corpus, &split.test, &params);
        assert_eq!(s.model, "loc-only");
        assert_eq!(s.n_queries, 25);
        assert_eq!(s.time, None);
        let loc = evaluate_mrr(
            &LocOnly,
            &corpus,
            &split.test,
            PredictionTask::Location,
            &params,
        );
        assert_eq!(s.location, loc);
        assert_eq!(s.get(PredictionTask::Location), Some(loc));
        assert_eq!(s.get(PredictionTask::Time), None);
        assert!(s.get(PredictionTask::Text).is_some());
    }
}
