//! Mean Reciprocal Rank (Eq. 15).

/// Reciprocal rank of the ground-truth candidate given all candidate
/// scores (higher = better).
///
/// Ties take the *average rank* of the tied block (the standard fair
/// convention): a model that scores every candidate identically earns the
/// expected rank of a random permutation, neither the top nor the floor.
///
/// ```
/// use evalkit::reciprocal_rank;
///
/// // Ground truth (index 0) outscored by one candidate → rank 2.
/// assert_eq!(reciprocal_rank(&[0.8, 0.9, 0.1], 0), 0.5);
/// // Strict winner → rank 1.
/// assert_eq!(reciprocal_rank(&[0.9, 0.8, 0.1], 0), 1.0);
/// ```
pub fn reciprocal_rank(scores: &[f64], gt_index: usize) -> f64 {
    assert!(gt_index < scores.len(), "ground-truth index out of range");
    let gt = scores[gt_index];
    let mut better = 0usize;
    let mut tied = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if i == gt_index {
            continue;
        }
        if s > gt {
            better += 1;
        } else if s == gt {
            tied += 1;
        }
    }
    1.0 / (better as f64 + tied as f64 / 2.0 + 1.0)
}

/// Mean of reciprocal ranks over a query set.
pub fn mean_reciprocal_rank(ranks: &[f64]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().sum::<f64>() / ranks.len() as f64
}

/// Whether the ground truth lands in the top `k` under average-rank tie
/// handling (fractional when a tie block straddles the cutoff).
///
/// `hit_at_k(scores, gt, 1)` is the Precision@1 contribution of a query;
/// averaging it over queries gives Recall@k (one relevant item per query).
pub fn hit_at_k(scores: &[f64], gt_index: usize, k: usize) -> f64 {
    assert!(gt_index < scores.len(), "ground-truth index out of range");
    assert!(k >= 1, "k must be at least 1");
    let gt = scores[gt_index];
    let mut better = 0usize;
    let mut tied = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if i == gt_index {
            continue;
        }
        if s > gt {
            better += 1;
        } else if s == gt {
            tied += 1;
        }
    }
    if better >= k {
        return 0.0;
    }
    // Slots left for the tie block (which includes the ground truth).
    let slots = (k - better) as f64;
    let block = (tied + 1) as f64;
    (slots / block).min(1.0)
}

/// Mean Recall@k over queries: each query contributes its
/// [`hit_at_k`]. `queries` holds `(scores, gt_index)` pairs.
pub fn recall_at_k(queries: &[(Vec<f64>, usize)], k: usize) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries
        .iter()
        .map(|(scores, gt)| hit_at_k(scores, *gt, k))
        .sum::<f64>()
        / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_rank_is_one() {
        assert_eq!(reciprocal_rank(&[0.9, 0.1, 0.2], 0), 1.0);
    }

    #[test]
    fn middle_ranks() {
        // gt scores 0.5; one better.
        assert_eq!(reciprocal_rank(&[0.9, 0.5, 0.2], 1), 0.5);
        // two better.
        assert!((reciprocal_rank(&[0.9, 0.2, 0.8, 0.3], 1) - 1.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn ties_take_average_rank() {
        // All equal among 3: average rank 2 → RR 1/2.
        assert!((reciprocal_rank(&[0.5, 0.5, 0.5], 0) - 0.5).abs() < 1e-12);
        // One better, one tied: rank 2 + 0.5 → RR 1/2.5.
        assert!((reciprocal_rank(&[0.9, 0.5, 0.5], 1) - 1.0 / 2.5).abs() < 1e-12);
        // All equal among 11: average rank 6 → RR 1/6 (what a constant
        // scorer earns per query).
        let scores = [0.0; 11];
        assert!((reciprocal_rank(&scores, 0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn mean_over_queries() {
        assert_eq!(mean_reciprocal_rank(&[1.0, 0.5]), 0.75);
        assert_eq!(mean_reciprocal_rank(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_gt_index_panics() {
        reciprocal_rank(&[1.0], 3);
    }

    #[test]
    fn hit_at_k_basic_cases() {
        // GT strictly best: hits any k.
        assert_eq!(hit_at_k(&[0.9, 0.1, 0.2], 0, 1), 1.0);
        // One better: misses k=1, hits k=2.
        assert_eq!(hit_at_k(&[0.9, 0.5, 0.2], 1, 1), 0.0);
        assert_eq!(hit_at_k(&[0.9, 0.5, 0.2], 1, 2), 1.0);
        // Three-way tie at the top, k=1: one slot for a 3-block → 1/3.
        assert!((hit_at_k(&[0.5, 0.5, 0.5], 0, 1) - 1.0 / 3.0).abs() < 1e-12);
        // Same tie, k=3: everyone fits.
        assert_eq!(hit_at_k(&[0.5, 0.5, 0.5], 0, 3), 1.0);
    }

    #[test]
    fn recall_at_k_averages_queries() {
        let queries = vec![
            (vec![0.9, 0.1], 0usize), // hit at 1
            (vec![0.1, 0.9], 0usize), // miss at 1
        ];
        assert_eq!(recall_at_k(&queries, 1), 0.5);
        assert_eq!(recall_at_k(&queries, 2), 1.0);
        assert_eq!(recall_at_k(&[], 3), 0.0);
    }

    #[test]
    #[should_panic]
    fn hit_at_k_rejects_zero_k() {
        hit_at_k(&[1.0], 0, 0);
    }

    #[test]
    fn random_scores_average_near_expected() {
        // With 11 candidates and random scores, E[RR] = H(11)/11 ≈ 0.274.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let mut rrs = Vec::new();
        for _ in 0..20_000 {
            let scores: Vec<f64> = (0..11).map(|_| rng.random::<f64>()).collect();
            rrs.push(reciprocal_rank(&scores, 0));
        }
        let mrr = mean_reciprocal_rank(&rrs);
        let expected = (1..=11).map(|k| 1.0 / k as f64).sum::<f64>() / 11.0;
        assert!((mrr - expected).abs() < 0.01, "{mrr} vs {expected}");
    }
}
