//! Query and candidate-set construction for cross-modal prediction
//! (§6.2.1).
//!
//! For each test record, the observed modalities form the query and the
//! held-out modality is the ground truth; 10 noise candidates are drawn
//! from *other* test records (the paper draws noise "from the spatial
//! hotspots / test corpus"), giving candidate sets of size 11.

use mobility::{Corpus, GeoPoint, KeywordId, RecordId, Timestamp};
use rand::seq::IndexedRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::model::CrossModalModel;
use crate::mrr::{mean_reciprocal_rank, reciprocal_rank};

/// The three sub-tasks of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionTask {
    /// Predict the text ("activity prediction").
    Text,
    /// Predict the location.
    Location,
    /// Predict the timestamp.
    Time,
}

impl PredictionTask {
    /// All tasks in the paper's column order.
    pub const ALL: [PredictionTask; 3] = [
        PredictionTask::Text,
        PredictionTask::Location,
        PredictionTask::Time,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            PredictionTask::Text => "Text",
            PredictionTask::Location => "Location",
            PredictionTask::Time => "Time",
        }
    }
}

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalParams {
    /// Noise candidates per query (the paper uses 10 → candidate set 11).
    pub n_noise: usize,
    /// Maximum queries (caps very large test sets); `usize::MAX` = all.
    pub max_queries: usize,
    /// Candidate-sampling seed.
    pub seed: u64,
}

impl Default for EvalParams {
    fn default() -> Self {
        Self {
            n_noise: 10,
            max_queries: usize::MAX,
            seed: 0xE7A1,
        }
    }
}

/// One prediction query: a test record plus the records providing its
/// noise candidates. Candidate 0 is always the ground truth.
#[derive(Debug, Clone)]
pub struct Query {
    /// The query (ground-truth) record.
    pub record: RecordId,
    /// Noise-candidate source records (distinct from `record`).
    pub noise: Vec<RecordId>,
}

/// Builds the query set for a task over `test_ids`.
pub fn build_queries(test_ids: &[RecordId], params: &EvalParams) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = test_ids.len().min(params.max_queries);
    let mut queries = Vec::with_capacity(n);
    for &rid in test_ids.iter().take(n) {
        let mut noise = Vec::with_capacity(params.n_noise);
        // Rejection-sample distinct records; duplicates among noise are
        // allowed only when the test set is smaller than the candidate set.
        let mut guard = 0;
        while noise.len() < params.n_noise {
            let cand = *test_ids.choose(&mut rng).expect("non-empty test set");
            if cand != rid || test_ids.len() == 1 {
                noise.push(cand);
            }
            guard += 1;
            if guard > params.n_noise * 50 {
                break;
            }
        }
        queries.push(Query { record: rid, noise });
    }
    queries
}

/// Scores one query under `model`, returning the reciprocal rank of the
/// ground truth.
pub fn score_query<M: CrossModalModel + ?Sized>(
    model: &M,
    corpus: &Corpus,
    query: &Query,
    task: PredictionTask,
) -> f64 {
    let gt = corpus.record(query.record);
    let mut scores = Vec::with_capacity(query.noise.len() + 1);
    match task {
        PredictionTask::Location => {
            let score =
                |p: GeoPoint| model.score_location(gt.timestamp, &gt.keywords, p);
            scores.push(score(gt.location));
            for &nid in &query.noise {
                scores.push(score(corpus.record(nid).location));
            }
        }
        PredictionTask::Time => {
            let score = |t: Timestamp| model.score_time(gt.location, &gt.keywords, t);
            scores.push(score(gt.timestamp));
            for &nid in &query.noise {
                scores.push(score(corpus.record(nid).timestamp));
            }
        }
        PredictionTask::Text => {
            let score = |w: &[KeywordId]| model.score_text(gt.timestamp, gt.location, w);
            scores.push(score(&gt.keywords));
            for &nid in &query.noise {
                scores.push(score(&corpus.record(nid).keywords));
            }
        }
    }
    reciprocal_rank(&scores, 0)
}

/// Full MRR evaluation of `model` on `test_ids` for one task.
pub fn evaluate_mrr<M: CrossModalModel + ?Sized>(
    model: &M,
    corpus: &Corpus,
    test_ids: &[RecordId],
    task: PredictionTask,
    params: &EvalParams,
) -> f64 {
    let queries = build_queries(test_ids, params);
    let rrs: Vec<f64> = queries
        .iter()
        .map(|q| score_query(model, corpus, q, task))
        .collect();
    mean_reciprocal_rank(&rrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    /// An oracle that scores candidates by closeness to the ground truth
    /// it secretly knows — must reach MRR 1. A scrambler must sit near
    /// the random baseline.
    struct Oracle {
        gt_location: GeoPoint,
        gt_time: Timestamp,
        gt_words: Vec<KeywordId>,
    }

    impl CrossModalModel for Oracle {
        fn score_location(&self, _: Timestamp, _: &[KeywordId], c: GeoPoint) -> f64 {
            -c.dist(&self.gt_location)
        }
        fn score_time(&self, _: GeoPoint, _: &[KeywordId], c: Timestamp) -> f64 {
            -((c - self.gt_time).abs() as f64)
        }
        fn score_text(&self, _: Timestamp, _: GeoPoint, c: &[KeywordId]) -> f64 {
            if c == self.gt_words.as_slice() {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    #[test]
    fn oracle_reaches_mrr_one() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(3)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let params = EvalParams {
            max_queries: 20,
            ..EvalParams::default()
        };
        let queries = build_queries(&split.test, &params);
        for q in &queries {
            let gt = corpus.record(q.record);
            let oracle = Oracle {
                gt_location: gt.location,
                gt_time: gt.timestamp,
                gt_words: gt.keywords.clone(),
            };
            for task in PredictionTask::ALL {
                let rr = score_query(&oracle, &corpus, q, task);
                // Location/time can tie when two test records share a
                // value; text bags are effectively unique.
                if task == PredictionTask::Text {
                    assert_eq!(rr, 1.0);
                } else {
                    assert!(rr >= 0.5, "task {task:?} rr {rr}");
                }
            }
        }
    }

    struct Constant;
    impl CrossModalModel for Constant {
        fn score_location(&self, _: Timestamp, _: &[KeywordId], _: GeoPoint) -> f64 {
            0.0
        }
        fn score_time(&self, _: GeoPoint, _: &[KeywordId], _: Timestamp) -> f64 {
            0.0
        }
        fn score_text(&self, _: Timestamp, _: GeoPoint, _: &[KeywordId]) -> f64 {
            0.0
        }
        fn name(&self) -> &str {
            "constant"
        }
    }

    #[test]
    fn constant_model_earns_floor_mrr() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(4)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let params = EvalParams {
            max_queries: 10,
            ..EvalParams::default()
        };
        let mrr = evaluate_mrr(&Constant, &corpus, &split.test, PredictionTask::Text, &params);
        // Average-rank ties: a constant scorer earns rank (11+1)/2 = 6.
        assert!((mrr - 1.0 / 6.0).abs() < 1e-9, "{mrr}");
    }

    #[test]
    fn queries_have_requested_noise_and_exclude_self() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(5)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let params = EvalParams::default();
        let queries = build_queries(&split.test, &params);
        assert_eq!(queries.len(), split.test.len());
        for q in &queries {
            assert_eq!(q.noise.len(), 10);
            assert!(!q.noise.contains(&q.record));
        }
        let _ = corpus;
    }

    #[test]
    fn query_building_is_deterministic() {
        let ids: Vec<RecordId> = (0u32..50).map(RecordId::from).collect();
        let a = build_queries(&ids, &EvalParams::default());
        let b = build_queries(&ids, &EvalParams::default());
        assert_eq!(a[7].noise, b[7].noise);
    }

    #[test]
    fn max_queries_caps() {
        let ids: Vec<RecordId> = (0u32..50).map(RecordId::from).collect();
        let q = build_queries(
            &ids,
            &EvalParams {
                max_queries: 5,
                ..EvalParams::default()
            },
        );
        assert_eq!(q.len(), 5);
    }
}
