//! Fixed-width text tables for the experiment binaries.

/// A simple left-aligned text table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with column-wise padding and a separator under the header.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        for (w, h) in widths.iter_mut().zip(&self.header) {
            *w = (*w).max(h.chars().count());
        }
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < n_cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats an MRR to the paper's four decimal places.
pub fn fmt_mrr(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(["Method", "Text"]);
        t.row(["ACTOR", "0.6207"]);
        t.row(["LGTA-longname", "0.3571"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "0.6207" starts at the same offset in both rows.
        let off2 = lines[2].find("0.6207").unwrap();
        let off3 = lines[3].find("0.3571").unwrap();
        assert_eq!(off2, off3);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["A", "B", "C"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn mrr_formatting() {
        assert_eq!(fmt_mrr(0.62066), "0.6207");
        assert_eq!(fmt_mrr(1.0), "1.0000");
    }
}
