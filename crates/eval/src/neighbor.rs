//! Qualitative neighbor search (§6.4, Figs. 9–11).
//!
//! Given a spatial, temporal, or textual query, return the most similar
//! units of each modality — the tables the paper prints next to the LA
//! map (top words and times for a place; top words for a time of day;
//! top words, places, and times for a venue keyword).

use actor_core::TrainedModel;
use mobility::{types::format_time_of_day, GeoPoint};
use stgraph::{NodeId, NodeType};

/// Result of a neighbor query: top-k per modality.
#[derive(Debug, Clone)]
pub struct NeighborReport {
    /// Query description for display.
    pub query: String,
    /// Top keywords with scores.
    pub words: Vec<(String, f64)>,
    /// Top temporal hotspots as `HH:MM:SS` with scores.
    pub times: Vec<(String, f64)>,
    /// Top spatial hotspot centers with scores.
    pub places: Vec<(GeoPoint, f64)>,
}

/// Runs a spatial query: the hotspot nearest `point` (Fig. 9).
pub fn spatial_query(model: &TrainedModel, point: GeoPoint, k: usize) -> NeighborReport {
    let node = model.location_node(point);
    let query = model.vector(node).to_vec();
    report(model, format!("location ({:.4}, {:.4})", point.lat, point.lon), &query, k)
}

/// Runs a temporal query: the hotspot nearest a second-of-day (Fig. 10).
pub fn temporal_query(model: &TrainedModel, second_of_day: f64, k: usize) -> NeighborReport {
    let node = model.time_of_day_node(second_of_day);
    let query = model.vector(node).to_vec();
    report(
        model,
        format!("time {}", format_time_of_day(second_of_day)),
        &query,
        k,
    )
}

/// Runs a textual query on a vocabulary keyword (Fig. 11). Returns `None`
/// for out-of-vocabulary words.
pub fn textual_query(model: &TrainedModel, word: &str, k: usize) -> Option<NeighborReport> {
    let kw = model.vocab().get(word)?;
    let query = model.vector(model.word_node(kw)).to_vec();
    Some(report(model, format!("keyword \"{word}\""), &query, k))
}

fn report(model: &TrainedModel, query_desc: String, query: &[f32], k: usize) -> NeighborReport {
    let words = model.nearest_words(query, k);
    let times = model
        .nearest_of_type(query, NodeType::Time, k)
        .into_iter()
        .map(|(n, s)| (format_time_of_day(time_center(model, n)), s))
        .collect();
    let places = model
        .nearest_of_type(query, NodeType::Location, k)
        .into_iter()
        .map(|(n, s)| (location_center(model, n), s))
        .collect();
    NeighborReport {
        query: query_desc,
        words,
        times,
        places,
    }
}

fn time_center(model: &TrainedModel, node: NodeId) -> f64 {
    let local = model.space().local_of(node);
    model
        .temporal_hotspots()
        .center(hotspot::TemporalHotspotId(local))
}

fn location_center(model: &TrainedModel, node: NodeId) -> GeoPoint {
    let local = model.space().local_of(node);
    model
        .spatial_hotspots()
        .center(hotspot::SpatialHotspotId(local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    fn model() -> TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(21)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        actor_core::fit(&corpus, &split.train, &ActorConfig::fast())
            .unwrap()
            .0
    }

    #[test]
    fn queries_return_k_results_per_modality() {
        let m = model();
        let r = spatial_query(&m, GeoPoint::new(30.3, -97.7), 5);
        assert_eq!(r.words.len(), 5);
        assert_eq!(r.places.len(), 5);
        assert!(r.times.len() <= 5 && !r.times.is_empty());
        assert!(r.query.starts_with("location"));

        let r = temporal_query(&m, 22.0 * 3600.0, 4);
        assert_eq!(r.words.len(), 4);
        assert!(r.query.starts_with("time 22:00"));
    }

    #[test]
    fn textual_query_handles_oov() {
        let m = model();
        assert!(textual_query(&m, "definitely_not_a_word_xyz", 3).is_none());
        let r = textual_query(&m, "beach", 3).unwrap();
        // The query word itself tops its own neighbor list.
        assert_eq!(r.words[0].0, "beach");
        assert!(r.words[0].1 > 0.99);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let m = model();
        let r = spatial_query(&m, GeoPoint::new(30.2, -97.8), 8);
        for pair in r.words.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        for pair in r.places.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
