//! Qualitative neighbor search (§6.4, Figs. 9–11).
//!
//! Given a spatial, temporal, or textual query, return the most similar
//! units of each modality — the tables the paper prints next to the LA
//! map (top words and times for a place; top words for a time of day;
//! top words, places, and times for a venue keyword).
//!
//! Since the serving engine landed, this module is a presentation layer
//! over [`serve::QueryEngine`]: the engine owns the scoring kernel
//! (`embed::math::dot_unit` over rows normalized once per snapshot), the
//! reusable search scratch, and the result cache, so repeated queries no
//! longer clone query vectors or rebuild candidate lists per call. Build a
//! [`NeighborSearcher`] once and reuse it; the free functions remain for
//! one-off queries and construct a throwaway searcher internally.

use actor_core::TrainedModel;
use mobility::{types::format_time_of_day, GeoPoint};
use serve::{EngineParams, QueryEngine, QueryRequest, QueryResponse};

/// Result of a neighbor query: top-k per modality.
#[derive(Debug, Clone)]
pub struct NeighborReport {
    /// Query description for display.
    pub query: String,
    /// Top keywords with scores.
    pub words: Vec<(String, f64)>,
    /// Top temporal hotspots as `HH:MM:SS` with scores.
    pub times: Vec<(String, f64)>,
    /// Top spatial hotspot centers with scores.
    pub places: Vec<(GeoPoint, f64)>,
}

impl NeighborReport {
    fn from_response(r: QueryResponse) -> Self {
        Self {
            query: r.query,
            words: r.words,
            times: r
                .times
                .into_iter()
                .map(|(s, score)| (format_time_of_day(s), score))
                .collect(),
            places: r.places,
        }
    }
}

/// A reusable neighbor-search handle: one frozen snapshot of the model,
/// one set of per-thread scratch buffers, one cache — amortized across
/// every query it answers.
pub struct NeighborSearcher {
    engine: QueryEngine,
}

impl NeighborSearcher {
    /// Freezes `model` into a serving snapshot. Eval-sized models sit
    /// below the ANN threshold, so answers stay exact (identical ranking
    /// to scanning the model directly).
    pub fn new(model: &TrainedModel) -> Self {
        Self {
            engine: QueryEngine::new(model, EngineParams::default()),
        }
    }

    /// Wraps an engine that is already serving (shares its snapshot,
    /// cache, and index mode).
    pub fn from_engine(engine: QueryEngine) -> Self {
        Self { engine }
    }

    /// The engine underneath (e.g. for stats).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Spatial query: the hotspot nearest `point` (Fig. 9).
    pub fn spatial(&self, point: GeoPoint, k: usize) -> NeighborReport {
        let r = self
            .engine
            .query(&QueryRequest::spatial(point, k))
            .expect("spatial queries cannot fail");
        NeighborReport::from_response(r)
    }

    /// Temporal query: the hotspot nearest a second-of-day (Fig. 10).
    pub fn temporal(&self, second_of_day: f64, k: usize) -> NeighborReport {
        let r = self
            .engine
            .query(&QueryRequest::temporal(second_of_day, k))
            .expect("temporal queries cannot fail");
        NeighborReport::from_response(r)
    }

    /// Textual query on a vocabulary keyword (Fig. 11); `None` for
    /// out-of-vocabulary words.
    pub fn textual(&self, word: &str, k: usize) -> Option<NeighborReport> {
        self.engine
            .query(&QueryRequest::keyword(word, k))
            .ok()
            .map(NeighborReport::from_response)
    }
}

/// Runs a spatial query: the hotspot nearest `point` (Fig. 9).
///
/// One-off convenience; for repeated queries build a [`NeighborSearcher`].
pub fn spatial_query(model: &TrainedModel, point: GeoPoint, k: usize) -> NeighborReport {
    NeighborSearcher::new(model).spatial(point, k)
}

/// Runs a temporal query: the hotspot nearest a second-of-day (Fig. 10).
///
/// One-off convenience; for repeated queries build a [`NeighborSearcher`].
pub fn temporal_query(model: &TrainedModel, second_of_day: f64, k: usize) -> NeighborReport {
    NeighborSearcher::new(model).temporal(second_of_day, k)
}

/// Runs a textual query on a vocabulary keyword (Fig. 11). Returns `None`
/// for out-of-vocabulary words.
///
/// One-off convenience; for repeated queries build a [`NeighborSearcher`].
pub fn textual_query(model: &TrainedModel, word: &str, k: usize) -> Option<NeighborReport> {
    NeighborSearcher::new(model).textual(word, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};
    use stgraph::NodeType;

    fn model() -> TrainedModel {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(21)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        actor_core::fit(&corpus, &split.train, &ActorConfig::fast())
            .unwrap()
            .0
    }

    #[test]
    fn queries_return_k_results_per_modality() {
        let m = model();
        let r = spatial_query(&m, GeoPoint::new(30.3, -97.7), 5);
        assert_eq!(r.words.len(), 5);
        assert_eq!(r.places.len(), 5);
        assert!(r.times.len() <= 5 && !r.times.is_empty());
        assert!(r.query.starts_with("location"));

        let r = temporal_query(&m, 22.0 * 3600.0, 4);
        assert_eq!(r.words.len(), 4);
        assert!(r.query.starts_with("time 22:00"));
    }

    #[test]
    fn textual_query_handles_oov() {
        let m = model();
        assert!(textual_query(&m, "definitely_not_a_word_xyz", 3).is_none());
        let r = textual_query(&m, "beach", 3).unwrap();
        // The query word itself tops its own neighbor list.
        assert_eq!(r.words[0].0, "beach");
        assert!(r.words[0].1 > 0.99);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let m = model();
        let r = spatial_query(&m, GeoPoint::new(30.2, -97.8), 8);
        for pair in r.words.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        for pair in r.places.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn searcher_matches_direct_model_ranking() {
        // The engine path must reproduce §6.2.1 semantics: cosine ranking
        // against the raw model, word for word, score for score.
        let m = model();
        let searcher = NeighborSearcher::new(&m);
        let p = GeoPoint::new(30.25, -97.75);
        let got = searcher.spatial(p, 6);
        let raw = m.vector(m.location_node(p)).to_vec();
        let reference = m.nearest_words(&raw, 6);
        assert_eq!(
            got.words.iter().map(|(w, _)| w.clone()).collect::<Vec<_>>(),
            reference.iter().map(|(w, _)| w.clone()).collect::<Vec<_>>()
        );
        for (a, b) in got.words.iter().zip(&reference) {
            assert!((a.1 - b.1).abs() < 1e-5, "{} vs {}", a.1, b.1);
        }
        let ref_places = m.nearest_of_type(&raw, NodeType::Location, 6);
        assert_eq!(got.places.len(), ref_places.len());
        for (a, b) in got.places.iter().zip(&ref_places) {
            assert!((a.1 - b.1).abs() < 1e-5);
        }
    }

    #[test]
    fn searcher_reuse_hits_the_cache() {
        let m = model();
        let searcher = NeighborSearcher::new(&m);
        let _ = searcher.temporal(9.0 * 3600.0, 5);
        let _ = searcher.temporal(9.0 * 3600.0, 5);
        assert!(searcher.engine().stats().cache_hits >= 1);
    }
}
