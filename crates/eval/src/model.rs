//! The model interface every compared method implements.

use actor_core::TrainedModel;
use mobility::{GeoPoint, KeywordId, Timestamp};

/// A cross-modal activity model: given any two of (time, location, text),
/// score a candidate value of the third (§3's three prediction problems).
///
/// Scores need only be *comparable within one query*; each method is free
/// to use cosine similarity, log-likelihood, or any other monotone
/// quantity.
pub trait CrossModalModel {
    /// Scores a candidate location given the record's time and text.
    fn score_location(&self, t: Timestamp, words: &[KeywordId], candidate: GeoPoint) -> f64;

    /// Scores a candidate timestamp given the record's location and text.
    fn score_time(&self, location: GeoPoint, words: &[KeywordId], candidate: Timestamp) -> f64;

    /// Scores a candidate text given the record's time and location.
    fn score_text(&self, t: Timestamp, location: GeoPoint, candidate: &[KeywordId]) -> f64;

    /// Display name used in report tables.
    fn name(&self) -> &str;

    /// Whether the model supports time prediction. Geographical topic
    /// models (LGTA, MGTM) have no temporal modality — Table 2 prints "/"
    /// in their Time columns.
    fn supports_time(&self) -> bool {
        true
    }
}

impl CrossModalModel for TrainedModel {
    fn score_location(&self, t: Timestamp, words: &[KeywordId], candidate: GeoPoint) -> f64 {
        let tv = self.vector(self.time_node(t)).to_vec();
        let wv = self.text_vector(words);
        let query = self.query_vector(&[&tv, &wv]);
        self.score(&query, self.location_node(candidate))
    }

    fn score_time(&self, location: GeoPoint, words: &[KeywordId], candidate: Timestamp) -> f64 {
        let lv = self.vector(self.location_node(location)).to_vec();
        let wv = self.text_vector(words);
        let query = self.query_vector(&[&lv, &wv]);
        self.score(&query, self.time_node(candidate))
    }

    fn score_text(&self, t: Timestamp, location: GeoPoint, candidate: &[KeywordId]) -> f64 {
        let tv = self.vector(self.time_node(t)).to_vec();
        let lv = self.vector(self.location_node(location)).to_vec();
        let query = self.query_vector(&[&tv, &lv]);
        let cv = self.text_vector(candidate);
        embed::math::cosine(&query, &cv)
    }

    fn name(&self) -> &str {
        "ACTOR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, SplitSpec};

    #[test]
    fn actor_scores_are_finite_and_in_cosine_range() {
        let (corpus, _) = generate(DatasetPreset::Utgeo2011.small_config(11)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let (model, _) = actor_core::fit(&corpus, &split.train, &ActorConfig::fast()).unwrap();
        let r = corpus.record(split.test[0]);
        let s1 = model.score_location(r.timestamp, &r.keywords, r.location);
        let s2 = model.score_time(r.location, &r.keywords, r.timestamp);
        let s3 = model.score_text(r.timestamp, r.location, &r.keywords);
        for s in [s1, s2, s3] {
            assert!(s.is_finite());
            assert!((-1.0..=1.0).contains(&s), "{s}");
        }
        assert_eq!(model.name(), "ACTOR");
    }
}
