//! Side-by-side case studies (§6.2.4: Fig. 5, Table 3, Fig. 8).
//!
//! Runs the same query under two models and reports each candidate's rank
//! in both — the format of the paper's ACTOR-vs-CrossMap tables.

use mobility::Corpus;

use crate::model::CrossModalModel;
use crate::tasks::{PredictionTask, Query};

/// One candidate's description and its rank under each model.
#[derive(Debug, Clone)]
pub struct CaseRow {
    /// Candidate description (text, timestamp, or coordinates).
    pub candidate: String,
    /// True for the ground-truth row.
    pub is_ground_truth: bool,
    /// 1-based rank under the first model.
    pub rank_a: usize,
    /// 1-based rank under the second model.
    pub rank_b: usize,
}

/// A completed case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// First model's name.
    pub model_a: String,
    /// Second model's name.
    pub model_b: String,
    /// The task.
    pub task: PredictionTask,
    /// Rows in candidate order (ground truth first).
    pub rows: Vec<CaseRow>,
}

impl CaseStudy {
    /// Rank of the ground truth under model A.
    pub fn gt_rank_a(&self) -> usize {
        self.rows[0].rank_a
    }

    /// Rank of the ground truth under model B.
    pub fn gt_rank_b(&self) -> usize {
        self.rows[0].rank_b
    }
}

/// Scores `query` under both models and assembles the comparison table.
pub fn compare<A: CrossModalModel + ?Sized, B: CrossModalModel + ?Sized>(
    model_a: &A,
    model_b: &B,
    corpus: &Corpus,
    query: &Query,
    task: PredictionTask,
) -> CaseStudy {
    let describe = |rid: mobility::RecordId| -> String {
        let r = corpus.record(rid);
        match task {
            PredictionTask::Text => {
                let words: Vec<&str> =
                    r.keywords.iter().map(|&k| corpus.vocab().word(k)).collect();
                words.join(" ")
            }
            PredictionTask::Time => format!(
                "day {} {}",
                (r.timestamp - mobility::synth::EPOCH_BASE) / mobility::SECONDS_PER_DAY,
                mobility::types::format_time_of_day(r.second_of_day())
            ),
            PredictionTask::Location => {
                format!("({:.4}, {:.4})", r.location.lat, r.location.lon)
            }
        }
    };

    let candidates: Vec<mobility::RecordId> =
        std::iter::once(query.record).chain(query.noise.iter().copied()).collect();
    let gt = corpus.record(query.record);

    fn scores_for<M: CrossModalModel + ?Sized>(
        model: &M,
        corpus: &Corpus,
        gt: &mobility::Record,
        candidates: &[mobility::RecordId],
        task: PredictionTask,
    ) -> Vec<f64> {
        candidates
            .iter()
            .map(|&rid| {
                let c = corpus.record(rid);
                match task {
                    PredictionTask::Text => {
                        model.score_text(gt.timestamp, gt.location, &c.keywords)
                    }
                    PredictionTask::Location => {
                        model.score_location(gt.timestamp, &gt.keywords, c.location)
                    }
                    PredictionTask::Time => {
                        model.score_time(gt.location, &gt.keywords, c.timestamp)
                    }
                }
            })
            .collect()
    }

    let sa = scores_for(model_a, corpus, gt, &candidates, task);
    let sb = scores_for(model_b, corpus, gt, &candidates, task);
    let ranks = |scores: &[f64]| -> Vec<usize> {
        // rank = 1 + number of strictly better candidates, ties broken by
        // index (earlier candidate wins).
        (0..scores.len())
            .map(|i| {
                1 + scores
                    .iter()
                    .enumerate()
                    .filter(|&(j, &s)| s > scores[i] || (s == scores[i] && j < i))
                    .count()
            })
            .collect()
    };
    let ra = ranks(&sa);
    let rb = ranks(&sb);

    let rows = candidates
        .iter()
        .enumerate()
        .map(|(i, &rid)| CaseRow {
            candidate: describe(rid),
            is_ground_truth: i == 0,
            rank_a: ra[i],
            rank_b: rb[i],
        })
        .collect();

    CaseStudy {
        model_a: model_a.name().to_string(),
        model_b: model_b.name().to_string(),
        task,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{build_queries, EvalParams};
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, GeoPoint, KeywordId, SplitSpec, Timestamp};

    struct Oracle {
        gt: mobility::Record,
    }
    impl CrossModalModel for Oracle {
        fn score_location(&self, _: Timestamp, _: &[KeywordId], c: GeoPoint) -> f64 {
            -c.dist(&self.gt.location)
        }
        fn score_time(&self, _: GeoPoint, _: &[KeywordId], c: Timestamp) -> f64 {
            -((c - self.gt.timestamp).abs() as f64)
        }
        fn score_text(&self, _: Timestamp, _: GeoPoint, c: &[KeywordId]) -> f64 {
            -((c.len() as i64 - self.gt.keywords.len() as i64).abs() as f64)
                + if c == self.gt.keywords.as_slice() { 100.0 } else { 0.0 }
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    struct Anti;
    impl CrossModalModel for Anti {
        fn score_location(&self, _: Timestamp, _: &[KeywordId], c: GeoPoint) -> f64 {
            c.lon
        }
        fn score_time(&self, _: GeoPoint, _: &[KeywordId], c: Timestamp) -> f64 {
            c as f64
        }
        fn score_text(&self, _: Timestamp, _: GeoPoint, c: &[KeywordId]) -> f64 {
            c.len() as f64
        }
        fn name(&self) -> &str {
            "anti"
        }
    }

    #[test]
    fn compare_ranks_ground_truth_first_for_oracle() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(9)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let queries = build_queries(
            &split.test,
            &EvalParams {
                max_queries: 3,
                ..EvalParams::default()
            },
        );
        for q in &queries {
            let oracle = Oracle {
                gt: corpus.record(q.record).clone(),
            };
            let cs = compare(&oracle, &Anti, &corpus, q, PredictionTask::Text);
            assert_eq!(cs.gt_rank_a(), 1);
            assert_eq!(cs.rows.len(), 11);
            assert!(cs.rows[0].is_ground_truth);
            assert!(cs.rows[1..].iter().all(|r| !r.is_ground_truth));
            // Ranks are a permutation of 1..=11.
            let mut ra: Vec<usize> = cs.rows.iter().map(|r| r.rank_a).collect();
            ra.sort_unstable();
            assert_eq!(ra, (1..=11).collect::<Vec<_>>());
            assert_eq!(cs.model_a, "oracle");
            assert_eq!(cs.model_b, "anti");
        }
    }

    #[test]
    fn descriptions_match_task() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(10)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let queries = build_queries(
            &split.test,
            &EvalParams {
                max_queries: 1,
                ..EvalParams::default()
            },
        );
        let oracle = Oracle {
            gt: corpus.record(queries[0].record).clone(),
        };
        let cs = compare(&oracle, &Anti, &corpus, &queries[0], PredictionTask::Location);
        assert!(cs.rows[0].candidate.starts_with('('));
        let cs = compare(&oracle, &Anti, &corpus, &queries[0], PredictionTask::Time);
        assert!(cs.rows[0].candidate.starts_with("day "));
    }
}
