//! Evaluation harness for cross-modal spatiotemporal activity models
//! (paper §6.2–§6.4).
//!
//! * [`model`] — the [`CrossModalModel`] trait every compared method
//!   implements (given two modalities, score a candidate for the third),
//!   plus its implementation for ACTOR's [`actor_core::TrainedModel`];
//! * [`tasks`] — query/candidate-set construction: ground truth + 10
//!   noise candidates drawn from other test records (§6.2.1);
//! * [`mrr`] — Mean Reciprocal Rank (Eq. 15) with pessimistic tie
//!   handling;
//! * [`neighbor`] — the qualitative neighbor-search queries of §6.4;
//! * [`casestudy`] — side-by-side ranking tables (Fig. 5, Table 3);
//! * [`report`] — fixed-width text tables matching the paper's layout.

pub mod ascii;
pub mod casestudy;
pub mod model;
pub mod mrr;
pub mod neighbor;
pub mod report;
pub mod significance;
pub mod summary;
pub mod tasks;

pub use model::CrossModalModel;
pub use mrr::{hit_at_k, mean_reciprocal_rank, recall_at_k, reciprocal_rank};
pub use significance::{compare_paired, PairedComparison};
pub use summary::{evaluate_all, TaskSummary};
pub use tasks::{evaluate_mrr, EvalParams, PredictionTask, Query};
