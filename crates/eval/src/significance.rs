//! Paired significance testing between two models.
//!
//! The paper states ACTOR "significantly outperforms the state-of-the-art
//! methods" (§1); this module makes that claim testable: both models
//! score the *same* queries, and the per-query reciprocal-rank differences
//! feed a paired bootstrap (confidence interval on the MRR difference)
//! and a sign-flip permutation test (p-value under the null of no
//! difference).

use mobility::{Corpus, RecordId};
use rand::seq::IndexedRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::model::CrossModalModel;
use crate::tasks::{build_queries, score_query, EvalParams, PredictionTask};

/// Result of a paired comparison of model A against model B.
#[derive(Debug, Clone)]
pub struct PairedComparison {
    /// Model A's name.
    pub model_a: String,
    /// Model B's name.
    pub model_b: String,
    /// The task compared.
    pub task: PredictionTask,
    /// Mean reciprocal rank of A.
    pub mrr_a: f64,
    /// Mean reciprocal rank of B.
    pub mrr_b: f64,
    /// Bootstrap 95 % confidence interval on `MRR(A) − MRR(B)`.
    pub diff_ci: (f64, f64),
    /// Two-sided sign-flip permutation p-value for the mean difference.
    pub p_value: f64,
    /// Number of paired queries.
    pub n_queries: usize,
}

impl PairedComparison {
    /// True when the confidence interval excludes zero and p < 0.05 —
    /// the conventional "significantly different" reading.
    pub fn significant(&self) -> bool {
        self.p_value < 0.05 && (self.diff_ci.0 > 0.0 || self.diff_ci.1 < 0.0)
    }
}

/// Number of bootstrap resamples / permutations.
const RESAMPLES: usize = 2_000;

/// Runs the paired comparison on a shared query set.
pub fn compare_paired<A, B>(
    model_a: &A,
    model_b: &B,
    corpus: &Corpus,
    test_ids: &[RecordId],
    task: PredictionTask,
    params: &EvalParams,
) -> PairedComparison
where
    A: CrossModalModel + ?Sized,
    B: CrossModalModel + ?Sized,
{
    let queries = build_queries(test_ids, params);
    let rr_a: Vec<f64> = queries
        .iter()
        .map(|q| score_query(model_a, corpus, q, task))
        .collect();
    let rr_b: Vec<f64> = queries
        .iter()
        .map(|q| score_query(model_b, corpus, q, task))
        .collect();
    let diffs: Vec<f64> = rr_a.iter().zip(&rr_b).map(|(a, b)| a - b).collect();
    let n = diffs.len();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let observed = mean(&diffs);

    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x51677);

    // Bootstrap CI on the mean difference.
    let mut boot_means = Vec::with_capacity(RESAMPLES);
    for _ in 0..RESAMPLES {
        let resample_mean = (0..n)
            .map(|_| *diffs.choose(&mut rng).expect("non-empty"))
            .sum::<f64>()
            / n.max(1) as f64;
        boot_means.push(resample_mean);
    }
    boot_means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let lo = boot_means[(RESAMPLES as f64 * 0.025) as usize];
    let hi = boot_means[(RESAMPLES as f64 * 0.975) as usize - 1];

    // Sign-flip permutation test: under H0 the sign of each paired
    // difference is arbitrary.
    let mut extreme = 0usize;
    for _ in 0..RESAMPLES {
        let flipped = diffs
            .iter()
            .map(|&d| if rng.random::<bool>() { d } else { -d })
            .sum::<f64>()
            / n.max(1) as f64;
        if flipped.abs() >= observed.abs() {
            extreme += 1;
        }
    }
    let p_value = (extreme as f64 + 1.0) / (RESAMPLES as f64 + 1.0);

    PairedComparison {
        model_a: model_a.name().to_string(),
        model_b: model_b.name().to_string(),
        task,
        mrr_a: mean(&rr_a),
        mrr_b: mean(&rr_b),
        diff_ci: (lo, hi),
        p_value,
        n_queries: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::synth::{generate, DatasetPreset};
    use mobility::{CorpusSplit, GeoPoint, KeywordId, SplitSpec, Timestamp};

    struct Oracle;
    impl CrossModalModel for Oracle {
        fn score_location(&self, t: Timestamp, _: &[KeywordId], c: GeoPoint) -> f64 {
            // Knows nothing about truth but is deterministic per candidate:
            // useless, near-random.
            (c.lat * 1000.0 + t as f64 * 1e-7).sin()
        }
        fn score_time(&self, l: GeoPoint, _: &[KeywordId], c: Timestamp) -> f64 {
            ((c as f64) * 1e-5 + l.lon).sin()
        }
        fn score_text(&self, _: Timestamp, _: GeoPoint, c: &[KeywordId]) -> f64 {
            c.len() as f64
        }
        fn name(&self) -> &str {
            "noise-a"
        }
    }

    /// Cheats by looking the query's true location up by timestamp
    /// (timestamps are effectively unique in the synthetic corpora).
    struct TrueOracle {
        by_timestamp: std::collections::HashMap<Timestamp, GeoPoint>,
    }
    impl CrossModalModel for TrueOracle {
        fn score_location(&self, t: Timestamp, _: &[KeywordId], c: GeoPoint) -> f64 {
            match self.by_timestamp.get(&t) {
                Some(true_loc) => -true_loc.dist2(&c),
                None => 0.0,
            }
        }
        fn score_time(&self, _: GeoPoint, _: &[KeywordId], _: Timestamp) -> f64 {
            0.0
        }
        fn score_text(&self, _: Timestamp, _: GeoPoint, c: &[KeywordId]) -> f64 {
            -(c.len() as f64)
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    #[test]
    fn identical_models_are_not_significant() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(90)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let params = EvalParams {
            max_queries: 40,
            ..EvalParams::default()
        };
        let cmp = compare_paired(
            &Oracle,
            &Oracle,
            &corpus,
            &split.test,
            PredictionTask::Text,
            &params,
        );
        assert_eq!(cmp.mrr_a, cmp.mrr_b);
        assert!(!cmp.significant(), "{cmp:?}");
        assert!(cmp.p_value > 0.9, "identical models: p {:.3}", cmp.p_value);
        assert!(cmp.diff_ci.0 <= 0.0 && cmp.diff_ci.1 >= 0.0);
    }

    #[test]
    fn clearly_better_model_is_significant() {
        let (corpus, _) = generate(DatasetPreset::Tweet.small_config(91)).unwrap();
        let split = CorpusSplit::new(&corpus, SplitSpec::default()).unwrap();
        let params = EvalParams {
            max_queries: 60,
            ..EvalParams::default()
        };
        // text task: Oracle scores longer texts higher; TrueOracle scores
        // shorter higher. Both are weak, but on location the TrueOracle's
        // nearest-corpus-location trick ranks the truth first always.
        let oracle = TrueOracle {
            by_timestamp: split
                .test
                .iter()
                .map(|&id| {
                    let r = corpus.record(id);
                    (r.timestamp, r.location)
                })
                .collect(),
        };
        let cmp = compare_paired(
            &oracle,
            &Oracle,
            &corpus,
            &split.test,
            PredictionTask::Location,
            &params,
        );
        assert!(cmp.mrr_a > cmp.mrr_b, "{cmp:?}");
        assert!(cmp.significant(), "{cmp:?}");
        assert!(cmp.diff_ci.0 > 0.0);
        assert_eq!(cmp.n_queries, 60);
    }
}
