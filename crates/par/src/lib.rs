//! `actor-par` — deterministic scoped-thread data parallelism for the
//! preprocessing pipeline.
//!
//! Training already scales across cores through the Hogwild driver
//! (`embed::hogwild`); this crate gives the stages *in front* of it —
//! hotspot detection, co-occurrence counting, alias/negative-table
//! construction, meta-graph instance counting — the same treatment,
//! generalizing the Hogwild shard-splitting contract:
//!
//! * **Deterministic shard boundaries** — [`shards`] cuts `len` items into
//!   contiguous ranges whose sizes differ by at most one, exactly like the
//!   Hogwild sample split (`base + u64::from(t < extra)`).
//! * **Per-shard seeds** — [`shard_seed`] reproduces the Hogwild
//!   golden-ratio stream derivation, so sharded randomized stages can keep
//!   seed-stable streams per shard.
//! * **`ACTOR_THREADS` override** — [`threads`] resolves the worker count
//!   from the programmatic override, then the `ACTOR_THREADS` environment
//!   variable, then the machine's available parallelism.
//!
//! The central correctness requirement of the parallel front-end is that
//! **parallel output is bit-identical to serial output** for any thread
//! count: callers must combine per-shard results with an order-canonical
//! merge (shard 0 first, then shard 1, …), never first-writer-wins. The
//! combinators here hand results back in shard order to make that the
//! path of least resistance; `tests/parallel_determinism.rs` at the
//! workspace root holds the pipeline to it.
//!
//! All spawning uses `std::thread::scope`, so borrowed inputs need no
//! `'static` bounds and a panicking shard is re-raised on the caller with
//! the shard named (mirroring the Hogwild driver's diagnostics).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Environment variable overriding the preprocessing thread count.
pub const ENV_THREADS: &str = "ACTOR_THREADS";

/// Golden-ratio multiplier of the Hogwild per-thread seed derivation.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Programmatic thread-count override (0 = unset). Takes precedence over
/// the environment; set through [`override_threads`] only.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes override holders so concurrently running tests/benches
/// cannot observe each other's thread counts.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Worker threads for parallel preprocessing: the [`override_threads`]
/// guard if one is live, else a positive integer `ACTOR_THREADS`, else the
/// machine's available parallelism (1 when unknown).
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var(ENV_THREADS) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// RAII guard of a programmatic thread-count override; dropping it
/// restores the previous value. See [`override_threads`].
pub struct ThreadsOverride {
    prev: usize,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ThreadsOverride {
    fn drop(&mut self) {
        OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Forces [`threads`] to return `n` until the guard drops. Guards are
/// process-global and serialized by an internal lock, so two tests that
/// both override block one another instead of racing; keep the guard's
/// scope tight. Panics if `n == 0`.
pub fn override_threads(n: usize) -> ThreadsOverride {
    assert!(n > 0, "thread override must be positive");
    let lock = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let prev = OVERRIDE.swap(n, Ordering::Relaxed);
    ThreadsOverride { prev, _lock: lock }
}

/// Cuts `0..len` into at most `n_shards` contiguous ranges whose sizes
/// differ by at most one — the Hogwild split applied to item index space.
/// Empty trailing shards are not emitted: `shards(3, 8)` is three ranges
/// of one item each. `shards(0, n)` is empty. Panics if `n_shards == 0`.
pub fn shards(len: usize, n_shards: usize) -> Vec<Range<usize>> {
    assert!(n_shards > 0, "need at least one shard");
    let n = n_shards.min(len);
    let mut out = Vec::with_capacity(n);
    if len == 0 {
        return out;
    }
    let base = len / n;
    let extra = len % n;
    let mut start = 0;
    for s in 0..n {
        let size = base + usize::from(s < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// The deterministic RNG seed of `shard` under base `seed` — the same
/// golden-ratio derivation the Hogwild driver gives worker `shard`, so a
/// sharded stage and a training run derived from one seed stay
/// decorrelated per shard yet exactly reproducible.
#[inline]
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ GOLDEN.wrapping_mul(shard as u64 + 1)
}

/// Runs `f(shard_index, range)` once per shard of `0..len` across
/// [`threads`] workers and returns the results in shard order.
///
/// Shard 0 runs on the calling thread (a one-shard region spawns
/// nothing); a panicking shard is re-raised here naming the shard.
fn run_sharded<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let ranges = shards(len, threads());
    let n = ranges.len();
    obs::counter("par.regions").incr();
    obs::histogram("par.shards").record(n as u64);
    match n {
        0 => Vec::new(),
        1 => vec![f(0, ranges.into_iter().next().expect("one shard"))],
        _ => std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = ranges[1..]
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let r = r.clone();
                    scope.spawn(move || f(i + 1, r))
                })
                .collect();
            let mut out = Vec::with_capacity(n);
            out.push(f(0, ranges[0].clone()));
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        let detail = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&'static str>().copied())
                            .unwrap_or("<non-string panic payload>");
                        panic!("par shard {} of {n} panicked: {detail}", i + 1);
                    }
                }
            }
            out
        }),
    }
}

/// Maps contiguous chunks of `items` in parallel: `f(shard_index, chunk)`
/// runs once per shard, results return in shard order. The chunk of shard
/// `s` is exactly `&items[shards(items.len(), k)[s]]` for the resolved
/// shard count `k` — deterministic boundaries, order-canonical results.
pub fn par_map_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    run_sharded(items.len(), |s, range| f(s, &items[range]))
}

/// Maps every item of `items` in parallel, preserving item order:
/// `out[i] == f(i, &items[i])`. A convenience over [`par_map_chunks`] for
/// small lists of independent heavyweight jobs (per-edge-type CSR, alias
/// and negative tables).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_sharded(items.len(), |_, range| {
        range
            .map(|i| f(i, &items[i]))
            .collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Runs `f(shard_index, range)` for each shard of `0..len` concurrently,
/// for side-effecting work over disjoint index ranges (e.g. filling
/// disjoint slices of a pre-allocated buffer).
pub fn par_for_shards<F>(len: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    run_sharded(len, f);
}

/// Sharded accumulate-then-merge reduction: each shard folds its items
/// into a fresh accumulator from `init`, then the per-shard accumulators
/// are merged **in shard order** on the calling thread.
///
/// This is the order-canonical replacement for a mutex-guarded shared
/// accumulator: as long as `merge` is associative over the values `fold`
/// produces (integer-valued `f64` co-occurrence counts are — their
/// addition is exact), the result is bit-identical for every thread
/// count, including 1.
pub fn par_accumulate<T, A, I, F, M>(items: &[T], init: I, fold: F, mut merge: M) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &T) + Sync,
    M: FnMut(&mut A, A),
{
    let mut accs = run_sharded(items.len(), |_, range| {
        let mut acc = init();
        for i in range {
            fold(&mut acc, i, &items[i]);
        }
        acc
    })
    .into_iter();
    let mut total = accs.next().unwrap_or_else(&init);
    for acc in accs {
        merge(&mut total, acc);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn shards_cover_and_balance() {
        for len in [0usize, 1, 2, 7, 8, 9, 100, 1003] {
            for n in [1usize, 2, 3, 8, 64] {
                let s = shards(len, n);
                assert!(s.len() <= n);
                let total: usize = s.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} n={n}");
                // Contiguous and ascending.
                let mut expect = 0;
                for r in &s {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                // Balanced to within one item.
                if let (Some(max), Some(min)) =
                    (s.iter().map(|r| r.len()).max(), s.iter().map(|r| r.len()).min())
                {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn shards_match_hogwild_split() {
        // 1003 samples over 4 threads: hogwild gives base=250, extra=3.
        let s = shards(1003, 4);
        assert_eq!(
            s.iter().map(|r| r.len()).collect::<Vec<_>>(),
            vec![251, 251, 251, 250]
        );
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        shards(10, 0);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|s| shard_seed(42, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        assert_eq!(seeds, (0..16).map(|s| shard_seed(42, s)).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_chunks_is_order_canonical() {
        let _guard = override_threads(4);
        let items: Vec<u32> = (0..100).collect();
        let sums = par_map_chunks(&items, |_, chunk| chunk.iter().sum::<u32>());
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<u32>(), (0..100).sum::<u32>());
        // Shard order: shard 0 holds the smallest items.
        assert!(sums[0] < sums[3]);
    }

    #[test]
    fn par_map_preserves_item_order() {
        let _guard = override_threads(3);
        let items: Vec<usize> = (0..17).collect();
        let doubled = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, (0..17).map(|x| x * 2).collect::<Vec<usize>>());
    }

    #[test]
    fn par_for_shards_covers_every_index_once() {
        let _guard = override_threads(4);
        let hits: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        par_for_shards(50, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_accumulate_merges_in_shard_order() {
        let items: Vec<u64> = (0..1000).collect();
        let count = |n_threads: usize| -> HashMap<u64, f64> {
            let _guard = override_threads(n_threads);
            par_accumulate(
                &items,
                HashMap::new,
                |acc, _, &x| *acc.entry(x % 7).or_insert(0.0) += 1.0,
                |total, acc| {
                    for (k, v) in acc {
                        *total.entry(k).or_insert(0.0) += v;
                    }
                },
            )
        };
        let serial = count(1);
        for n in [2, 3, 8] {
            assert_eq!(count(n), serial, "{n} threads");
        }
    }

    #[test]
    fn empty_input_yields_empty_or_init() {
        let empty: [u8; 0] = [];
        assert!(par_map_chunks(&empty, |_, c: &[u8]| c.len()).is_empty());
        assert!(par_map(&empty, |_, &x| x).is_empty());
        par_for_shards(0, |_, _| panic!("must not run"));
        let acc = par_accumulate(&empty, || 7u32, |_, _, _| {}, |a, b| *a += b);
        assert_eq!(acc, 7);
    }

    #[test]
    fn override_guard_restores_previous_value() {
        {
            let _a = override_threads(5);
            assert_eq!(threads(), 5);
        }
        // Guard dropped: back to the environment/machine default, which is
        // at least 1 and not necessarily 5.
        assert!(threads() >= 1);
    }

    #[test]
    fn shard_panic_is_reraised_with_context() {
        let result = std::panic::catch_unwind(|| {
            let _guard = override_threads(4);
            par_for_shards(100, |s, _| {
                if s == 2 {
                    panic!("shard data corrupt");
                }
            });
        });
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("par shard 2 of 4 panicked"), "{msg}");
        assert!(msg.contains("shard data corrupt"), "{msg}");
    }
}
