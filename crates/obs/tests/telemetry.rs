//! Integration tests for the telemetry layer: span nesting and
//! aggregation through the public API, counter exactness under concurrent
//! writers, and JSONL schema round-trips through a real JSON parser
//! (the serde_json dev-dependency).

use std::time::Duration;

#[test]
fn span_tree_nests_and_aggregates() {
    {
        let _run = obs::span!("it.run");
        for _ in 0..4 {
            let _stage = obs::span!("it.stage");
            std::thread::sleep(Duration::from_millis(1));
        }
        let _other = obs::span!("it.other");
    }
    let telemetry = obs::RunTelemetry::capture();
    let run = telemetry
        .spans
        .iter()
        .find(|n| n.name == "it.run")
        .expect("root span recorded");
    assert_eq!(run.count, 1);
    let stage = run
        .children
        .iter()
        .find(|n| n.name == "it.stage")
        .expect("nested span is a child");
    assert_eq!(stage.count, 4, "same-path spans aggregate");
    assert!(stage.seconds >= 0.004);
    assert!(run.seconds >= stage.seconds, "parent covers children");
    assert!(run.children.iter().any(|n| n.name == "it.other"));
}

#[test]
fn counters_are_exact_under_concurrent_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let before = obs::counter("it.concurrent").value();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                let c = obs::counter("it.concurrent");
                for _ in 0..PER_THREAD {
                    c.incr();
                }
            });
        }
    });
    let after = obs::counter("it.concurrent").value();
    assert_eq!(after - before, THREADS as u64 * PER_THREAD);
}

#[test]
fn snapshot_diff_isolates_a_run() {
    obs::counter("it.diff").add(10);
    let baseline = obs::snapshot();
    obs::counter("it.diff").add(32);
    obs::histogram("it.diff.hist").record(7);
    let telemetry = obs::RunTelemetry::since(&baseline);
    let c = telemetry
        .counters
        .iter()
        .find(|c| c.name == "it.diff")
        .expect("changed counter present");
    assert_eq!(c.value, 32, "only the delta since the baseline");
    let h = telemetry
        .histograms
        .iter()
        .find(|h| h.name == "it.diff.hist")
        .expect("changed histogram present");
    assert_eq!(h.count, 1);
    assert_eq!(h.sum, 7);
}

#[test]
fn run_telemetry_json_round_trips() {
    {
        let _root = obs::span!("it.json.run");
        let _child = obs::span!("it.json.child");
        obs::counter("it.json.samples").add(12345);
        obs::histogram("it.json.iters").record(3);
        obs::histogram("it.json.iters").record(300);
    }
    let json = obs::RunTelemetry::capture().to_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");

    let root = v.as_map().expect("top-level object");
    assert!(root.iter().any(|(k, _)| k == "wall_seconds"));

    let spans = v.get("spans").as_seq().expect("spans array");
    let run = spans
        .iter()
        .find(|s| s.get("name").as_str() == Some("it.json.run"))
        .expect("span node present");
    let children = run.get("children").as_seq().expect("children array");
    assert!(children
        .iter()
        .any(|c| c.get("name").as_str() == Some("it.json.child")));

    let counters = v.get("counters").as_seq().expect("counters array");
    assert!(counters.iter().any(|c| {
        c.get("name").as_str() == Some("it.json.samples")
            && matches!(c.get("value"), serde_json::Value::UInt(12345))
    }));

    let histograms = v.get("histograms").as_seq().expect("histograms array");
    let h = histograms
        .iter()
        .find(|h| h.get("name").as_str() == Some("it.json.iters"))
        .expect("histogram present");
    for key in ["count", "sum", "mean", "p50", "p95", "p99", "max"] {
        assert!(
            !matches!(h.get(key), serde_json::Value::Null),
            "histogram field {key} missing in {json}"
        );
    }
}

#[test]
fn reporter_writes_parseable_jsonl() {
    let path = std::env::temp_dir().join(format!(
        "actor-obs-test-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    {
        let _reporter =
            obs::Reporter::start(Duration::from_millis(20), Some(path.clone()));
        let _work = obs::span!("it.reporter.work");
        obs::counter("it.reporter.ticks").add(99);
        std::thread::sleep(Duration::from_millis(70));
    } // drop flushes a final snapshot
    let contents = std::fs::read_to_string(&path).expect("jsonl written");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines.len() >= 2, "expected several ticks, got {lines:?}");
    for line in &lines {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        assert_eq!(v.get("type").as_str(), Some("snapshot"));
        assert!(!matches!(v.get("elapsed_s"), serde_json::Value::Null));
        assert!(v.get("counters").as_seq().is_some());
        assert!(v.get("active").as_seq().is_some());
    }
    // The counter we bumped must appear in the final snapshot.
    let last: serde_json::Value = serde_json::from_str(lines.last().unwrap()).unwrap();
    assert!(last
        .get("counters")
        .as_seq()
        .unwrap()
        .iter()
        .any(|c| c.get("name").as_str() == Some("it.reporter.ticks")));
}
